"""Setup script for the GCoDE reproduction package.

A classic setuptools layout (setup.py + setup.cfg) is used instead of a
pyproject.toml build so that ``pip install -e .`` works in fully offline
environments (PEP 517 build isolation would try to download setuptools).
"""

from setuptools import setup

setup()
