"""CLI entry point: ``python -m tools.reprolint`` from the repository root.

Exit-code contract (what CI keys off):

* ``0`` — no findings, or every finding matches a justified baseline entry
* ``1`` — at least one non-baselined finding
* ``2`` — usage/configuration error (unknown checker, malformed baseline)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import BaselineError, load_baseline, split_findings
from .config import REPO_ROOT
from .core import REGISTRY, run_checkers
from .report import human_report, json_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Static-analysis checks for the repository's "
                    "cross-cutting invariants (see docs/invariants.md).")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="report format")
    parser.add_argument("--checker", action="append", default=[],
                        metavar="NAME",
                        help="run only this checker (repeatable; "
                             "default: all)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file "
                             "(default: tools/reprolint/baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: every finding fails")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the report to this file "
                             "(CI artifact)")
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help=argparse.SUPPRESS)
    parser.add_argument("--list-checkers", action="store_true",
                        help="list registered checkers and exit")
    args = parser.parse_args(argv)

    try:
        findings = run_checkers(args.root, args.checker)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    checkers = sorted(args.checker) if args.checker else sorted(REGISTRY)

    if args.list_checkers:
        for name in sorted(REGISTRY):
            print(f"{name}: {REGISTRY[name].description}")
        return 0

    try:
        entries = ([] if args.no_baseline
                   else (load_baseline(args.baseline) if args.baseline
                         else load_baseline()))
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Only entries belonging to the checkers that ran can be judged stale.
    entries = [e for e in entries
               if e.key.split(":", 1)[0] in set(checkers)]
    new, baselined, stale = split_findings(findings, entries)

    if args.format == "json":
        justifications = {e.key: e.justification for e in entries}
        report = json_report(new, baselined, stale, checkers, justifications)
    else:
        report = human_report(new, baselined, stale, checkers)
    print(report)
    if args.output is not None:
        args.output.write_text(report + "\n", encoding="utf-8")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
