"""Human and JSON report rendering for reprolint runs."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .baseline import BaselineEntry
from .core import REGISTRY, Finding


def human_report(new: Sequence[Finding], baselined: Sequence[Finding],
                 stale: Sequence[BaselineEntry], checkers: Sequence[str]
                 ) -> str:
    lines: List[str] = []
    if new:
        lines.append(f"{len(new)} finding(s):")
        for finding in new:
            lines.append(f"  {finding.render()}")
    if baselined:
        lines.append(f"{len(baselined)} baselined finding(s) "
                     "(accepted with justification, not failing):")
        for finding in baselined:
            lines.append(f"  {finding.render()}")
    if stale:
        lines.append(f"{len(stale)} stale baseline entr(y/ies) — no current "
                     "finding matches; remove from baseline.json:")
        for entry in stale:
            lines.append(f"  {entry.key}")
    if not new:
        lines.append(f"reprolint clean ({', '.join(checkers)})")
    return "\n".join(lines)


def json_report(new: Sequence[Finding], baselined: Sequence[Finding],
                stale: Sequence[BaselineEntry], checkers: Sequence[str],
                justifications: Dict[str, str]) -> str:
    def encode(finding: Finding, is_baselined: bool) -> dict:
        entry = {
            "checker": finding.checker,
            "path": finding.path,
            "line": finding.line,
            "key": finding.key,
            "message": finding.message,
            "baselined": is_baselined,
        }
        if is_baselined:
            entry["justification"] = justifications.get(finding.key, "")
        return entry

    report = {
        "version": 1,
        "checkers": [
            {"name": name, "description": REGISTRY[name].description}
            for name in checkers
        ],
        "findings": ([encode(f, False) for f in new]
                     + [encode(f, True) for f in baselined]),
        "stale_baseline_entries": [e.key for e in stale],
        "summary": {
            "new": len(new),
            "baselined": len(baselined),
            "stale_baseline_entries": len(stale),
            "clean": not new,
        },
    }
    return json.dumps(report, indent=2, sort_keys=False)
