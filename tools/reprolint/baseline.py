"""Reviewed baseline of grandfathered findings.

``baseline.json`` holds the findings the team has looked at and accepted,
each with a mandatory human-written justification — the mechanism for
"this is an intentional design, not a bug" (an atomic lock-free reference
swap, a worker process that bootstraps an upper tier by design).  A
baselined finding is still reported (so reports stay honest) but does not
fail the run; anything *not* in the baseline does.

Format::

    {"entries": [{"key": "<checker>:<path>:<ident>",
                  "justification": "<why this is acceptable>"}, ...]}

Keys are the line-number-free stable keys from
:class:`tools.reprolint.core.Finding`, so a baseline entry survives
unrelated edits to the file.  Entries whose key no longer matches any
finding are reported as stale so the baseline shrinks over time instead
of rotting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .core import Finding

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


class BaselineError(ValueError):
    """The baseline file is malformed (missing keys or justifications)."""


@dataclass(frozen=True)
class BaselineEntry:
    key: str
    justification: str


def load_baseline(path: Path = DEFAULT_BASELINE) -> List[BaselineEntry]:
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
    raw_entries = data.get("entries") if isinstance(data, dict) else None
    if not isinstance(raw_entries, list):
        raise BaselineError(f"{path}: expected an object with an "
                            "'entries' list")
    entries: List[BaselineEntry] = []
    seen: set = set()
    for index, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise BaselineError(f"{path}: entries[{index}] is not an object")
        key = raw.get("key")
        justification = raw.get("justification")
        if not isinstance(key, str) or not key.strip():
            raise BaselineError(f"{path}: entries[{index}] has no key")
        if not isinstance(justification, str) or not justification.strip():
            raise BaselineError(
                f"{path}: entries[{index}] ({key}) has no justification — "
                "every baselined finding needs a written reason")
        if key in seen:
            raise BaselineError(f"{path}: duplicate baseline key {key!r}")
        seen.add(key)
        entries.append(BaselineEntry(key=key, justification=justification))
    return entries


def split_findings(findings: Sequence[Finding],
                   entries: Sequence[BaselineEntry]
                   ) -> Tuple[List[Finding], List[Finding],
                              List[BaselineEntry]]:
    """Partition findings into ``(new, baselined, stale_entries)``."""
    by_key: Dict[str, BaselineEntry] = {e.key: e for e in entries}
    matched: set = set()
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        if finding.key in by_key:
            matched.add(finding.key)
            baselined.append(finding)
        else:
            new.append(finding)
    stale = [e for e in entries if e.key not in matched]
    return new, baselined, stale
