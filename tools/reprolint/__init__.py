"""reprolint — the repository's static-analysis framework.

Mechanically enforces the serving stack's cross-cutting invariants
(layering, dtype discipline, lock discipline, message-kind exhaustiveness,
arena aliasing) as AST checkers over the source tree.  Pure standard
library, no repository imports — it lints a tree it never executes.

Run from the repository root::

    python -m tools.reprolint [--format human|json] [--checker NAME ...]

Exit codes: 0 clean (all findings baselined), 1 non-baselined findings,
2 usage or configuration error (unknown checker, malformed baseline).

The enforced invariants are catalogued in ``docs/invariants.md``; the
accepted exceptions live in ``tools/reprolint/baseline.json``, one
justification each.
"""

from .baseline import (BaselineEntry, BaselineError,  # noqa: F401
                       DEFAULT_BASELINE, load_baseline, split_findings)
from .core import (Checker, Finding, REGISTRY,  # noqa: F401
                   parse_file, register, run_checkers)

__all__ = [
    "BaselineEntry", "BaselineError", "Checker", "DEFAULT_BASELINE",
    "Finding", "REGISTRY", "load_baseline", "parse_file", "register",
    "run_checkers", "split_findings",
]
