"""Declarative per-module configuration for the reprolint checkers.

Everything a checker needs to know about *this* repository lives here —
the checkers themselves are generic AST rules.  Paths are repo-relative
posix strings so baseline keys and reports are machine-independent.
"""

from __future__ import annotations

from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

SYSTEM = "src/repro/system"
RUNTIME = "src/repro/runtime"
SERVING = "src/repro/serving"

# ----------------------------------------------------------------------
# layering: module -> in-repo import allowlist.
# ----------------------------------------------------------------------
# The standard library is always allowed; an entry allows the module and
# any of its submodules.  Imports under ``if TYPE_CHECKING:`` are ignored
# (they never execute, so they cannot re-couple layers at runtime).
#
# The tiering this encodes (lowest first):
#   messages (wire format)  ->  transport / scheduler (no engine, no
#   compute)  ->  runtime kernels/arena (pure array code)  ->  plan /
#   backends / quantize (compiled runtime)  ->  engine (system tier)  ->
#   serving (top).  Nothing below the serving tier may import it — the
#   known, justified exception (the shard worker bootstrap in
#   runtime/shard.py rebuilds a serving repository by design) is
#   grandfathered in baseline.json rather than allowed here.
LAYERING_RULES = {
    f"{SYSTEM}/messages.py": {"numpy"},
    f"{SYSTEM}/transport.py": {"repro.system.messages"},
    f"{SYSTEM}/scheduler.py": {"repro.system.messages"},
    f"{SYSTEM}/engine.py": {"numpy", "repro.core", "repro.system"},
    f"{RUNTIME}/arena.py": {"numpy"},
    f"{RUNTIME}/kernels.py": {"numpy", "repro.graph"},
    f"{RUNTIME}/backends.py": {"numpy", "numba", "repro.runtime"},
    f"{RUNTIME}/quantize.py": {"numpy", "repro.graph", "repro.runtime"},
    f"{RUNTIME}/plan.py": {"numpy", "repro.gnn", "repro.graph", "repro.nn",
                           "repro.runtime"},
    f"{RUNTIME}/shard.py": {"numpy", "repro.core", "repro.runtime",
                            "repro.system"},
    f"{RUNTIME}/node.py": {"numpy", "repro.core", "repro.runtime",
                           "repro.system"},
    f"{SERVING}/config.py": {"numpy", "repro.core", "repro.runtime",
                             "repro.system"},
    f"{SERVING}/builders.py": {"repro.core", "repro.serving"},
    f"{SERVING}/repository.py": {"repro.core", "repro.serving"},
    f"{SERVING}/sharding.py": {"repro.core", "repro.runtime", "repro.system",
                               "repro.serving"},
    f"{SERVING}/cluster.py": {"repro.core", "repro.runtime", "repro.system",
                              "repro.serving"},
    f"{SERVING}/app.py": {"repro.core", "repro.system", "repro.serving"},
}

# ----------------------------------------------------------------------
# dtype-discipline: modules whose array arithmetic must not mix in bare
# Python float scalars (the NEP-50 float64-upcast bug class from PR 8).
# ----------------------------------------------------------------------
DTYPE_TARGETS = (
    f"{RUNTIME}/kernels.py",
    f"{RUNTIME}/plan.py",
    f"{RUNTIME}/quantize.py",
    f"{RUNTIME}/backends.py",
)

#: numpy callables where a bare float argument silently sets the result
#: dtype (ufunc-style broadcasting against whatever array rides along).
DTYPE_UFUNCS = frozenset({
    "maximum", "minimum", "clip", "where", "add", "subtract", "multiply",
    "divide", "true_divide", "power", "fmax", "fmin", "hypot", "mod",
    "remainder", "copysign", "nextafter", "full", "full_like",
})

#: Wrappers that make a scalar's dtype explicit — literals inside these
#: calls are the *approved* idiom, never flagged.
DTYPE_CASTS = frozenset({
    "float32", "float64", "float16", "int8", "int16", "int32", "int64",
    "uint8", "uint16", "uint32", "uint64", "type", "dtype",
})

# ----------------------------------------------------------------------
# lock-discipline: threaded modules whose classes guard shared state with
# ``with self._lock:`` blocks.
# ----------------------------------------------------------------------
LOCK_TARGETS = (
    f"{SYSTEM}/engine.py",
    f"{SYSTEM}/scheduler.py",
    f"{SERVING}/sharding.py",
    f"{SERVING}/cluster.py",
    f"{SERVING}/repository.py",
)

# ----------------------------------------------------------------------
# message-kinds: the wire-constant module and every module that speaks
# the wire protocol (produces or dispatches Message kinds).
# ----------------------------------------------------------------------
KIND_CONSTANTS_MODULE = f"{SYSTEM}/messages.py"

KIND_SCOPE = (
    f"{SYSTEM}/engine.py",
    f"{SYSTEM}/transport.py",
    f"{SYSTEM}/scheduler.py",
    f"{RUNTIME}/shard.py",
    f"{RUNTIME}/node.py",
    f"{SERVING}/sharding.py",
    f"{SERVING}/cluster.py",
    f"{SERVING}/app.py",
)

# ----------------------------------------------------------------------
# arena-aliasing: modules whose functions take buffers from a BufferArena
# and must never return them uncopied.
# ----------------------------------------------------------------------
ARENA_TARGETS = (
    f"{RUNTIME}/plan.py",
)

# ----------------------------------------------------------------------
# sleep-discipline: test files must synchronize on conditions
# (``conftest.wait_until``), not on wall-clock naps.
# ----------------------------------------------------------------------
SLEEP_TARGET_DIR = "tests"

#: Files allowed to call ``time.sleep`` directly: the synchronization
#: helpers themselves (wait_until's poll nap) and chaosnet's clock
#: internals (the RealClock fallback and the waiter wake quantum).
SLEEP_EXEMPT_FILES = frozenset({
    "tests/conftest.py",
    "tests/chaosnet.py",
})

#: Directories under the target skipped entirely — known-bad checker
#: fixtures are *supposed* to contain the anti-pattern.
SLEEP_EXEMPT_DIRS = frozenset({
    "tests/reprolint_fixtures",
})
