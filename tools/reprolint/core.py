"""Checker registry and shared plumbing for reprolint.

A *checker* inspects the repository's source ASTs and yields
:class:`Finding` objects.  Checkers never import repository code — every
rule is syntactic, so the lint runs in milliseconds with no dependencies
beyond the standard library and survives a half-broken tree (the exact
state in which a lint is most useful).

Every finding carries a *stable key* (``checker:path:ident``) that
deliberately excludes the line number, so a baseline entry keeps matching
while unrelated edits move code around.  See :mod:`tools.reprolint.baseline`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site.

    ``ident`` is the checker-specific stable identifier used for baseline
    keying (an imported module name, a ``Class.attr`` pair, a message-kind
    literal, ...) — never a line number.
    """

    checker: str
    path: str  # repo-relative posix path
    line: int
    ident: str
    message: str

    @property
    def key(self) -> str:
        return f"{self.checker}:{self.path}:{self.ident}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.checker}] {self.message}"


class Checker:
    """Base class for reprolint checkers.

    Subclasses set ``name``/``description`` and implement :meth:`check`,
    yielding findings for the live repository rooted at ``root``.  The
    per-file scan logic should live in module-level functions so the
    fixture tests can run it against arbitrary snippets.
    """

    name: str = ""
    description: str = ""

    def check(self, root: Path) -> Iterable[Finding]:
        raise NotImplementedError


REGISTRY: Dict[str, Checker] = {}


def register(cls: Callable[[], Checker]) -> Callable[[], Checker]:
    """Class decorator adding a checker (by its ``name``) to the registry."""
    checker = cls()
    if not checker.name:
        raise ValueError(f"checker {cls!r} has no name")
    if checker.name in REGISTRY:
        raise ValueError(f"duplicate checker name {checker.name!r}")
    REGISTRY[checker.name] = checker
    return cls


_TREE_CACHE: Dict[Path, ast.Module] = {}


def parse_file(path: Path) -> ast.Module:
    """Parse ``path`` into an AST (cached — several checkers share files)."""
    tree = _TREE_CACHE.get(path)
    if tree is None:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        _TREE_CACHE[path] = tree
    return tree


def run_checkers(root: Path, names: Iterable[str] = ()) -> List[Finding]:
    """Run the named checkers (all registered ones by default) over ``root``.

    Findings come back sorted by path/line for deterministic reports.
    """
    from . import checkers  # noqa: F401  (importing registers the checkers)

    selected = list(names) or sorted(REGISTRY)
    unknown = [name for name in selected if name not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown checker(s) {unknown!r} "
                       f"(registered: {sorted(REGISTRY)})")
    findings: List[Finding] = []
    for name in selected:
        findings.extend(REGISTRY[name].check(root))
    findings.sort(key=lambda f: (f.path, f.line, f.checker, f.ident))
    return findings
