"""layering — declarative per-module import allowlists.

Generalizes the original ``tools/check_layering.py`` rules (transport and
scheduler import only ``messages`` + stdlib; ``messages`` stays leaf-like)
to the whole runtime and serving stack: each module in
``config.LAYERING_RULES`` may import the standard library plus exactly its
allowlist.  Two refinements over the original script:

* ``from . import x`` resolves to the *imported submodule* (``package.x``),
  not just the package, so intra-package allowlists stay precise.
* Imports inside ``if TYPE_CHECKING:`` blocks are skipped — they never
  execute, so they cannot re-couple layers at runtime (the engine's
  type-only references to runtime stats classes stay legal).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, Iterator, List, Set, Tuple

from ..config import LAYERING_RULES
from ..core import Checker, Finding, parse_file, register

try:
    STDLIB = set(sys.stdlib_module_names)
except AttributeError:  # pragma: no cover - Python < 3.10
    STDLIB = set()


def _is_type_checking_test(test: ast.expr) -> bool:
    return ((isinstance(test, ast.Name) and test.id == "TYPE_CHECKING")
            or (isinstance(test, ast.Attribute)
                and test.attr == "TYPE_CHECKING"))


def resolve_relative(rel_path: str, node: ast.ImportFrom) -> List[str]:
    """Absolute dotted names of a relative import's targets.

    ``rel_path`` is the repo-relative path under ``src/`` (e.g.
    ``src/repro/runtime/backends.py``).  ``from . import kernels`` yields
    ``repro.runtime.kernels`` (one name per alias); ``from .arena import
    BufferArena`` yields ``repro.runtime.arena``.
    """
    parts = Path(rel_path).parts
    package = list(parts[1:-1] if parts[0] == "src" else parts[:-1])
    base = list(package)
    for _ in range(node.level - 1):
        if base:
            base.pop()
    if node.module:
        return [".".join(base + node.module.split("."))]
    return [".".join(base + [alias.name]) for alias in node.names]


def imported_modules(tree: ast.Module, rel_path: str
                     ) -> Iterator[Tuple[str, int]]:
    """Yield ``(absolute_module_name, lineno)`` for every runtime import."""
    for node in _walk_skipping_type_checking(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                for name in resolve_relative(rel_path, node):
                    yield name, node.lineno
            else:
                yield node.module or "", node.lineno


def _walk_skipping_type_checking(tree: ast.Module) -> Iterator[ast.AST]:
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            stack.extend(node.orelse)  # the runtime branch still counts
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def allowed(module: str, allowlist: Iterable[str]) -> bool:
    root = module.split(".")[0]
    if root in STDLIB:
        return True
    return any(module == entry or module.startswith(entry + ".")
               for entry in allowlist)


def scan_module(tree: ast.Module, rel_path: str, allowlist: Set[str]
                ) -> List[Finding]:
    findings = []
    for module, lineno in imported_modules(tree, rel_path):
        if not allowed(module, allowlist):
            shown = sorted(allowlist) if allowlist else "(stdlib only)"
            findings.append(Finding(
                checker="layering", path=rel_path, line=lineno, ident=module,
                message=f"imports {module!r} — outside this layer's "
                        f"allowlist {shown}"))
    return findings


@register
class LayeringChecker(Checker):
    name = "layering"
    description = ("per-module import allowlists keep the "
                   "messages/transport/runtime/engine/serving tiers apart")

    def check(self, root: Path) -> Iterator[Finding]:
        for rel_path, allowlist in sorted(LAYERING_RULES.items()):
            module_file = root / rel_path
            if not module_file.exists():
                yield Finding(
                    checker=self.name, path=rel_path, line=0,
                    ident="missing-file",
                    message="file missing (layering rules reference it — "
                            "update tools/reprolint/config.py if it moved)")
                continue
            yield from scan_module(parse_file(module_file), rel_path,
                                   allowlist)
