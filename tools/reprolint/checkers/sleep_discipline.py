"""sleep-discipline — tests wait on conditions, not on wall-clock naps.

A bare ``time.sleep(0.2)`` in a test encodes a guess about scheduler
timing: too short and the test flakes on a loaded CI box, too long and
every run pays the full nap even when the condition was met in a
millisecond.  The repo's anti-flake idiom is ``conftest.wait_until``
(poll a predicate, fail with a message on timeout) — this checker makes
reaching for ``sleep`` instead a lint finding.

Scope and exemptions (see ``config``):

* Only files under ``tests/`` are scanned; production code has its own
  synchronization disciplines (lock-discipline et al.).
* ``tests/conftest.py`` and ``tests/chaosnet.py`` are exempt wholesale:
  they *implement* the sanctioned waiting primitives, so their internal
  ``sleep`` calls are the one place the nap belongs.
* Sleeps inside **nested** functions and lambdas are exempt: a workload
  closure handed to a thread or a fake server (``def slow_edge(...):
  time.sleep(...)``) simulates slow *work* — it is the thing under test,
  not test synchronization.  Only naps at module level or directly in a
  test/helper body are flagged.

A justified straggler (e.g. deliberately outwaiting a grace period that
has no observable completion signal) belongs in the baseline with its
reason, not silently exempted here.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List

from ..config import SLEEP_EXEMPT_DIRS, SLEEP_EXEMPT_FILES, SLEEP_TARGET_DIR
from ..core import Checker, Finding, parse_file, register


def _is_sleep_call(func: ast.expr) -> bool:
    """``time.sleep(...)`` or a bare ``sleep(...)`` (from-imported)."""
    if isinstance(func, ast.Attribute) and func.attr == "sleep":
        return isinstance(func.value, ast.Name) and func.value.id == "time"
    return isinstance(func, ast.Name) and func.id == "sleep"


class _SleepScanner(ast.NodeVisitor):
    """Find sleep calls at module level or directly in a top-level def."""

    def __init__(self, rel_path: str) -> None:
        self.rel_path = rel_path
        self.findings: List[Finding] = []
        self._stack: List[str] = []  # enclosing function names

    def _enter(self, name: str, node: ast.AST) -> None:
        self._stack.append(name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node.name, node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node.name, node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter("<lambda>", node)

    def visit_Call(self, node: ast.Call) -> None:
        if _is_sleep_call(node.func) and len(self._stack) <= 1:
            scope = self._stack[0] if self._stack else "<module>"
            self.findings.append(Finding(
                checker="sleep-discipline", path=self.rel_path,
                line=node.lineno, ident=scope,
                message=f"{scope} naps on time.sleep at line {node.lineno} "
                        "— poll the condition with conftest.wait_until "
                        "(or baseline a genuinely signal-free grace wait "
                        "with a justification)"))
        self.generic_visit(node)


def scan_module(tree: ast.Module, rel_path: str) -> List[Finding]:
    scanner = _SleepScanner(rel_path)
    scanner.visit(tree)
    return scanner.findings


@register
class SleepDisciplineChecker(Checker):
    name = "sleep-discipline"
    description = ("tests synchronize via conftest.wait_until, not bare "
                   "time.sleep (nested workload callables exempt)")

    def check(self, root: Path) -> Iterator[Finding]:
        target = root / SLEEP_TARGET_DIR
        if not target.is_dir():
            return
        for module_file in sorted(target.rglob("*.py")):
            rel_path = module_file.relative_to(root).as_posix()
            if rel_path in SLEEP_EXEMPT_FILES:
                continue
            if any(rel_path.startswith(exempt + "/")
                   for exempt in SLEEP_EXEMPT_DIRS):
                continue
            yield from scan_module(parse_file(module_file), rel_path)
