"""arena-aliasing — arena buffers never escape a plan uncopied.

``BufferArena.take`` returns a pooled buffer that the *next frame will
overwrite*; the aliasing contract (see ``runtime/arena.py``) is that
anything a plan hands back to its caller is copied out of the arena
first.  ``PlanSegment.execute_out`` honors it dynamically via the
``x_in_arena`` flag; this checker enforces the static half: inside the
plan modules (``config.ARENA_TARGETS``), no function may ``return`` an
expression rooted in a value obtained from ``*.take(...)`` on an arena
without an intervening copy.

Taint rules, per function body (lexical, no dataflow across calls):

* ``x = <arena>.take(...)`` taints ``x``, where ``<arena>`` is any
  name/attribute path ending in ``arena`` (``run.arena``, ``self.arena``,
  a bare ``arena``).
* ``y = x`` and ``y = x[...]`` propagate taint (views alias); any other
  reassignment — ``x = x.copy()``, ``x = np.array(x)``, a fresh
  ``np.empty`` — clears it.
* ``return x``, ``return x[...]``, ``return x.T``-style expressions
  rooted at a tainted name are findings, as is returning a ``take`` call
  directly.  Returning a *container* that merely references the buffer
  (e.g. the ``PlanRun`` state object) is out of scope — that is exactly
  the case the dynamic ``x_in_arena`` contract covers.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Set

from ..config import ARENA_TARGETS
from ..core import Checker, Finding, parse_file, register


def _is_arena_take(node: ast.expr) -> bool:
    """True for ``<something ending in .arena or named arena>.take(...)``."""
    if not (isinstance(node, ast.Call) and isinstance(node.func,
                                                      ast.Attribute)):
        return False
    if node.func.attr != "take":
        return False
    owner = node.func.value
    if isinstance(owner, ast.Name):
        return "arena" in owner.id
    if isinstance(owner, ast.Attribute):
        return "arena" in owner.attr
    return False


def _root_name(node: ast.expr) -> str:
    """The variable at the root of a Name/Subscript/Attribute chain."""
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


class _FunctionScanner(ast.NodeVisitor):
    def __init__(self, func: ast.FunctionDef, rel_path: str) -> None:
        self.func = func
        self.rel_path = rel_path
        self.tainted: Set[str] = set()
        self.findings: List[Finding] = []

    def _taints(self, value: ast.expr) -> bool:
        if _is_arena_take(value):
            return True
        # Propagation: plain name copies and subscripts alias the buffer.
        if isinstance(value, (ast.Name, ast.Subscript)):
            return _root_name(value) in self.tainted
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        taints = self._taints(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if taints:
                    self.tainted.add(target.id)
                else:
                    self.tainted.discard(target.id)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        value = node.value
        if value is None:
            return
        escaping = ""
        if _is_arena_take(value):
            escaping = ast.unparse(value)
        else:
            root = _root_name(value)
            if root and root in self.tainted:
                escaping = root
        if escaping:
            self.findings.append(Finding(
                checker="arena-aliasing", path=self.rel_path,
                line=node.lineno,
                ident=f"{self.func.name}:{escaping}",
                message=f"{self.func.name} returns {ast.unparse(value)!r}, "
                        "which aliases an arena buffer the next frame will "
                        "overwrite — copy it out first "
                        "(.copy() / np.array(..., copy=True))"))
        self.generic_visit(node)

    # Nested functions get their own scan; don't mix their locals in.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.func:
            return
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef


def scan_module(tree: ast.Module, rel_path: str) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scanner = _FunctionScanner(node, rel_path)
            scanner.visit(node)
            findings.extend(scanner.findings)
    return findings


@register
class ArenaAliasingChecker(Checker):
    name = "arena-aliasing"
    description = ("plan functions must not return expressions rooted in "
                   "arena-acquired buffers without a copy")

    def check(self, root: Path) -> Iterator[Finding]:
        for rel_path in ARENA_TARGETS:
            module_file = root / rel_path
            if module_file.exists():
                yield from scan_module(parse_file(module_file), rel_path)
