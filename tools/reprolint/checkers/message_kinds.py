"""message-kinds — wire message kinds are named constants, and all handled.

``src/repro/system/messages.py`` owns every wire kind as a module-level
constant (``KIND_*`` for the base protocol, ``SHARD_KIND_*`` for the
shard control channel, ``NODE_KIND_*`` for cluster nodes).  Two rules over
the wire-speaking modules in ``config.KIND_SCOPE``:

* **No raw literals.**  Outside ``messages.py``, a ``Message(kind=...)``
  construction or a ``.kind`` comparison/membership test must use the
  named constant, never the string literal — a typo'd literal compiles
  fine and then silently never matches on the other end of the socket.
  Literal *values* that are not known kinds are flagged too (an unknown
  kind is either a typo or a constant someone forgot to declare).
  ``x.dtype.kind`` chains are recognized and exempt (numpy dtype kind
  codes are not wire kinds).
* **Exhaustiveness.**  Every declared kind constant must reach at least
  one dispatch site in scope — a comparison or membership test against a
  ``.kind`` attribute, directly or through one of the ``*_KINDS`` tuples
  ``messages.py`` groups them into.  A declared-but-never-dispatched kind
  means a handler went missing (or dead protocol surface is accumulating).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..config import KIND_CONSTANTS_MODULE, KIND_SCOPE
from ..core import Checker, Finding, parse_file, register

_KIND_NAME_RE = re.compile(r"^(KIND|SHARD_KIND|NODE_KIND)_[A-Z0-9_]+$")
_GROUP_NAME_RE = re.compile(r"^[A-Z0-9_]*_KINDS$")


def collect_constants(tree: ast.Module
                      ) -> Tuple[Dict[str, str], Dict[str, Set[str]]]:
    """Kind constants and constant groups declared in ``messages.py``.

    Returns ``(constants, groups)``: ``constants`` maps constant name to
    its string value; ``groups`` maps tuple names like
    ``SHARD_CONTROL_KINDS`` to the member constant names.
    """
    constants: Dict[str, str] = {}
    groups: Dict[str, Set[str]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if (_KIND_NAME_RE.match(target.id)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            constants[target.id] = node.value.value
        elif (_GROUP_NAME_RE.match(target.id)
                and isinstance(node.value, (ast.Tuple, ast.List, ast.Set))):
            members = {elt.id for elt in node.value.elts
                       if isinstance(elt, ast.Name)}
            if members:
                groups[target.id] = members
    return constants, groups


def _is_dtype_kind(node: ast.expr) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == "kind"
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "dtype")


def _is_kind_attr(node: ast.expr) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == "kind"
            and not _is_dtype_kind(node))


class _Scanner(ast.NodeVisitor):
    def __init__(self, rel_path: str, known_values: Set[str]) -> None:
        self.rel_path = rel_path
        self.known_values = known_values
        self.findings: List[Finding] = []
        #: constant names seen in a ``.kind`` dispatch, plus group names
        #: used the same way.
        self.dispatched: Set[str] = set()

    def _flag_literal(self, node: ast.AST, literal: str,
                      context: str) -> None:
        hint = ("use its named constant from repro.system.messages"
                if literal in self.known_values else
                "declare a named constant for it in repro.system.messages")
        self.findings.append(Finding(
            checker="message-kinds", path=self.rel_path, line=node.lineno,
            ident=literal,
            message=f"raw message-kind string {literal!r} {context} — "
                    f"{hint}"))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = (func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else "")
        if name == "Message":
            for keyword in node.keywords:
                if (keyword.arg == "kind"
                        and isinstance(keyword.value, ast.Constant)
                        and isinstance(keyword.value.value, str)):
                    self._flag_literal(keyword.value, keyword.value.value,
                                       "in Message(kind=...)")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        sides = [node.left, *node.comparators]
        if any(_is_kind_attr(side) for side in sides):
            for side in sides:
                if isinstance(side, ast.Constant) and isinstance(side.value,
                                                                 str):
                    self._flag_literal(side, side.value,
                                       "compared against .kind")
                elif isinstance(side, (ast.Tuple, ast.List, ast.Set)):
                    for elt in side.elts:
                        if (isinstance(elt, ast.Constant)
                                and isinstance(elt.value, str)):
                            self._flag_literal(elt, elt.value,
                                               "compared against .kind")
                        elif isinstance(elt, ast.Name):
                            self.dispatched.add(elt.id)
                elif isinstance(side, ast.Name):
                    self.dispatched.add(side.id)
                elif isinstance(side, ast.Attribute) and not _is_kind_attr(
                        side) and not _is_dtype_kind(side):
                    self.dispatched.add(side.attr)
        self.generic_visit(node)


def scan_file(tree: ast.Module, rel_path: str, known_values: Set[str]
              ) -> Tuple[List[Finding], Set[str]]:
    """Scan one module; returns ``(findings, dispatched_constant_names)``."""
    scanner = _Scanner(rel_path, known_values)
    scanner.visit(tree)
    return scanner.findings, scanner.dispatched


def undispatched_constants(constants: Dict[str, str],
                           groups: Dict[str, Set[str]],
                           dispatched: Set[str]) -> Sequence[str]:
    """Constant names with no dispatch site, after expanding group names."""
    covered = set(dispatched)
    for group, members in groups.items():
        if group in dispatched:
            covered |= members
    return sorted(name for name in constants if name not in covered)


@register
class MessageKindsChecker(Checker):
    name = "message-kinds"
    description = ("wire kinds are produced/dispatched via the named "
                   "constants of system/messages.py, and every kind is "
                   "handled somewhere")

    def check(self, root: Path) -> Iterator[Finding]:
        constants_file = root / KIND_CONSTANTS_MODULE
        if not constants_file.exists():
            yield Finding(
                checker=self.name, path=KIND_CONSTANTS_MODULE, line=0,
                ident="missing-file",
                message="wire-constant module missing — update "
                        "tools/reprolint/config.py if it moved")
            return
        constants, groups = collect_constants(parse_file(constants_file))
        known_values = set(constants.values())
        dispatched: Set[str] = set()
        for rel_path in KIND_SCOPE:
            module_file = root / rel_path
            if not module_file.exists():
                continue
            findings, seen = scan_file(parse_file(module_file), rel_path,
                                       known_values)
            yield from findings
            dispatched |= seen
        for name in undispatched_constants(constants, groups, dispatched):
            yield Finding(
                checker=self.name, path=KIND_CONSTANTS_MODULE, line=0,
                ident=f"undispatched:{name}",
                message=f"kind constant {name} ({constants[name]!r}) never "
                        "reaches a .kind dispatch site in the wire-speaking "
                        "modules — dead protocol surface or a missing "
                        "handler")
