"""lock-discipline — a lightweight static race detector for threaded classes.

For every class in the threaded serving modules (``config.LOCK_TARGETS``)
that creates locks in ``__init__`` (``self._lock = threading.Lock()`` /
``RLock()``), the checker infers, per instance attribute, whether writes
happen inside a ``with self._lock:`` block, outside one, or both.  An
attribute written *both* under a lock and bare is almost always a race:
either the bare site forgot the lock or the locked sites are wasted —
both are worth a human look.

Inference rules (all lexical, deliberately simple):

* ``__init__`` writes are construction-time and never counted — objects
  are published to other threads only after construction.
* Any of the class's own locks counts as "locked" (classes with split
  locks — ``_send_lock``, ``_publish_lock`` — guard disjoint state; which
  lock guards which attribute is a finer discipline than this checker
  enforces).
* Methods named ``*_locked`` are called with a lock already held (the
  repo convention, e.g. ``Scheduler._reject_locked``) — their writes
  count as locked.
* Lock attributes themselves, and ``+=``-style augmented writes, count
  the same as plain assignments.

Intentional lock-free designs (atomic reference swaps, monotonic
timestamps read only for observability) belong in the baseline with a
justification, not silently exempted here.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple

from ..config import LOCK_TARGETS
from ..core import Checker, Finding, parse_file, register

_LOCK_FACTORIES = {"Lock", "RLock"}


def _self_attr(node: ast.expr) -> str:
    """``self.x`` -> ``"x"``; anything else -> ``""``."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return ""


def _lock_attrs(class_node: ast.ClassDef) -> Set[str]:
    """Attributes assigned a ``threading.Lock()``/``RLock()`` anywhere."""
    locks: Set[str] = set()
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, (ast.Attribute, ast.Name))):
            continue
        name = (value.func.attr if isinstance(value.func, ast.Attribute)
                else value.func.id)
        if name in _LOCK_FACTORIES:
            for target in node.targets:
                attr = _self_attr(target)
                if attr:
                    locks.add(attr)
    return locks


def _is_own_lock(item: ast.expr, locks: Set[str]) -> bool:
    return _self_attr(item) in locks


class _MethodScanner(ast.NodeVisitor):
    """Collect ``self.x`` writes in one method, split by lock context."""

    def __init__(self, locks: Set[str], initially_locked: bool) -> None:
        self.locks = locks
        self.depth = 1 if initially_locked else 0
        # attr -> list of (lineno, locked?)
        self.writes: List[Tuple[str, int, bool]] = []

    def _record(self, target: ast.expr, lineno: int) -> None:
        attr = _self_attr(target)
        if attr and attr not in self.locks:
            self.writes.append((attr, lineno, self.depth > 0))

    def visit_With(self, node: ast.With) -> None:
        holds = any(_is_own_lock(item.context_expr, self.locks)
                    for item in node.items)
        if holds:
            self.depth += 1
        self.generic_visit(node)
        if holds:
            self.depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record(node.target, node.lineno)
        self.generic_visit(node)


def scan_class(class_node: ast.ClassDef, rel_path: str) -> List[Finding]:
    locks = _lock_attrs(class_node)
    if not locks:
        return []
    # attr -> {"locked": [(line, method)], "bare": [(line, method)]}
    sites: Dict[str, Dict[str, List[Tuple[int, str]]]] = {}
    for method in class_node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name == "__init__":
            continue
        scanner = _MethodScanner(locks, method.name.endswith("_locked"))
        for stmt in method.body:
            scanner.visit(stmt)
        for attr, lineno, locked in scanner.writes:
            entry = sites.setdefault(attr, {"locked": [], "bare": []})
            entry["locked" if locked else "bare"].append(
                (lineno, method.name))
    findings = []
    for attr, entry in sorted(sites.items()):
        if entry["locked"] and entry["bare"]:
            locked_at = ", ".join(f"{m}:{ln}" for ln, m in entry["locked"])
            bare_at = ", ".join(f"{m}:{ln}" for ln, m in entry["bare"])
            findings.append(Finding(
                checker="lock-discipline", path=rel_path,
                line=entry["bare"][0][0],
                ident=f"{class_node.name}.{attr}",
                message=f"{class_node.name}.{attr} is written under a lock "
                        f"({locked_at}) and without one ({bare_at}) — hold "
                        "the lock at every write site or baseline the "
                        "lock-free design with a justification"))
    return findings


def scan_module(tree: ast.Module, rel_path: str) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            findings.extend(scan_class(node, rel_path))
    return findings


@register
class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    description = ("shared instance attributes must be written under their "
                   "class lock at every site (or be baselined lock-free)")

    def check(self, root: Path) -> Iterator[Finding]:
        for rel_path in LOCK_TARGETS:
            module_file = root / rel_path
            if module_file.exists():
                yield from scan_module(parse_file(module_file), rel_path)
