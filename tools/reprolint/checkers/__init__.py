"""Checker modules — importing this package registers all of them."""

from . import (arena_aliasing, dtype_discipline, layering,  # noqa: F401
               lock_discipline, message_kinds, sleep_discipline)
