"""dtype-discipline — no bare Python float scalars in kernel array math.

The runtime's numerical contract is "the compute dtype is the plan dtype":
a float32 plan must never silently widen to float64.  Under NEP-50 the
easy way to lose that is mixing an untyped Python scalar into array
arithmetic — an integer array divided by a bare ``0.5`` promotes to
float64, and a ``float(...)``-typed scale multiplied into an int8 tensor
does the same (the exact bug class PR 8 fixed by hand).  The repo idiom is
to type every scalar at the use site: ``out.dtype.type(0)``,
``np.float32(scale)``, ``x.dtype.type(negative_slope)``.

Two syntactic rules, scoped to the kernel-path modules in
``config.DTYPE_TARGETS``:

* a bare *float* literal may not be an operand of an arithmetic binop
  whose other operand is a name/attribute/subscript/call (array-valued in
  these modules) — ``x * 0.5`` is flagged, ``x * x.dtype.type(0.5)`` is
  not.  Integer literals are exempt: index/shape arithmetic is pervasive
  and integers stay weak under NEP-50.
* a bare float literal may not be passed directly to the dtype-sensitive
  numpy callables in ``config.DTYPE_UFUNCS`` (``np.maximum(x, 0.0)``,
  ``np.full(shape, 1.0)``, ...).

Comparisons are deliberately out of scope (they produce bools; ``q >
127.0`` in the jittable kernels is fine), as are literals already wrapped
in a cast from ``config.DTYPE_CASTS``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List

from ..config import DTYPE_CASTS, DTYPE_TARGETS, DTYPE_UFUNCS
from ..core import Checker, Finding, parse_file, register

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod,
              ast.Pow)

_ARRAYISH = (ast.Name, ast.Attribute, ast.Subscript, ast.Call)


def _is_bare_float(node: ast.expr) -> bool:
    if (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class _Scanner(ast.NodeVisitor):
    def __init__(self, rel_path: str) -> None:
        self.rel_path = rel_path
        self.findings: List[Finding] = []
        self._scope = "<module>"

    def _emit(self, node: ast.AST, literal: float, context: str) -> None:
        self.findings.append(Finding(
            checker="dtype-discipline", path=self.rel_path, line=node.lineno,
            ident=f"{self._scope}:{literal!r}",
            message=f"bare float scalar {literal!r} {context} in "
                    f"{self._scope} — type it at the use site "
                    "(e.g. x.dtype.type(...) / np.float32(...)) so the "
                    "compute dtype cannot widen"))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        outer, self._scope = self._scope, node.name
        self.generic_visit(node)
        self._scope = outer

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, _ARITH_OPS):
            for literal, other in ((node.left, node.right),
                                   (node.right, node.left)):
                if _is_bare_float(literal) and isinstance(other, _ARRAYISH):
                    value = literal.operand.value if isinstance(
                        literal, ast.UnaryOp) else literal.value
                    self._emit(node, value,
                               f"in arithmetic with {ast.unparse(other)!r}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in DTYPE_CASTS:
            # Approved wrapper: do not descend into its literal arguments,
            # but still scan nested calls (np.float32(x * 0.5) must flag
            # the inner binop).
            for arg in node.args:
                if not isinstance(arg, ast.Constant):
                    self.visit(arg)
            return
        if name in DTYPE_UFUNCS:
            for arg in node.args:
                if _is_bare_float(arg):
                    value = arg.operand.value if isinstance(
                        arg, ast.UnaryOp) else arg.value
                    self._emit(arg, value, f"passed to {name}()")
        self.generic_visit(node)


def scan_module(tree: ast.Module, rel_path: str) -> List[Finding]:
    scanner = _Scanner(rel_path)
    scanner.visit(tree)
    return scanner.findings


@register
class DtypeDisciplineChecker(Checker):
    name = "dtype-discipline"
    description = ("kernel-path modules must type every float scalar at the "
                   "use site (NEP-50 float64-upcast bug class)")

    def check(self, root: Path) -> Iterator[Finding]:
        for rel_path in DTYPE_TARGETS:
            module_file = root / rel_path
            if module_file.exists():
                yield from scan_module(parse_file(module_file), rel_path)
