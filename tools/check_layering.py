"""Layering lint for the serving stack — thin shim over ``tools.reprolint``.

The transport/scheduler/messages rules this script historically enforced
(plus the runtime- and serving-tier allowlists that grew out of them) now
live in the ``layering`` checker of :mod:`tools.reprolint`; see
``tools/reprolint/config.py`` for the declarative per-module allowlists
and ``docs/invariants.md`` for the rationale.  This entry point is kept so
existing invocations and docs keep working: same CLI, same exit codes
(0 clean, 1 violations).

Run with:  python tools/check_layering.py
(equivalent to:  python -m tools.reprolint --checker layering)
"""

from __future__ import annotations

import sys
from pathlib import Path

# Script execution puts tools/ (not the repo root) on sys.path; the
# package import needs the root.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tools.reprolint.__main__ import main  # noqa: E402


if __name__ == "__main__":
    raise SystemExit(main(["--checker", "layering"]))
