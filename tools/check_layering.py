"""Layering lint for the serving stack (run by the CI tests job).

The transport/scheduling split of ``repro.system`` only stays a split if
nothing quietly re-couples the layers:

* ``repro/system/transport.py`` (frontends: sockets, framing, event loop)
  may import the standard library and ``repro.system.messages`` — never
  the scheduler, the engine, or anything that executes models.  A
  frontend that peeks at admission control or compute is a layering bug.
* ``repro/system/scheduler.py`` (admission control) is pure policy: the
  standard library plus the wire-constant names of
  ``repro.system.messages`` (the meta keys frames carry deadlines and
  priorities under).  It must not know how frames arrive (transport) or
  how they execute (engine / executor).
* ``repro/system/messages.py`` (wire format) stays leaf-like: standard
  library plus numpy.

This tool walks each module's AST and fails on any import outside its
allowlist, so the boundary is enforced mechanically instead of by review
vigilance.

Run with:  python tools/check_layering.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SYSTEM = REPO / "src" / "repro" / "system"

try:
    STDLIB = set(sys.stdlib_module_names)
except AttributeError:  # pragma: no cover - Python < 3.10
    STDLIB = set()

#: module file -> in-repo import allowlist (absolute module names; the
#: standard library is always allowed).
RULES = {
    SYSTEM / "transport.py": {"repro.system.messages"},
    SYSTEM / "scheduler.py": {"repro.system.messages"},
    SYSTEM / "messages.py": {"numpy"},
}


def resolve_relative(module_file: Path, node: ast.ImportFrom) -> str:
    """Absolute dotted name of a ``from . import ...`` target."""
    package_parts = module_file.relative_to(REPO / "src").parts[:-1]
    base = list(package_parts)
    for _ in range(node.level - 1):
        base.pop()
    if node.module:
        base.append(node.module)
    return ".".join(base)


def imported_modules(module_file: Path):
    tree = ast.parse(module_file.read_text(), filename=str(module_file))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                yield resolve_relative(module_file, node), node.lineno
            else:
                yield node.module or "", node.lineno


def allowed(module: str, allowlist: set) -> bool:
    root = module.split(".")[0]
    if root in STDLIB:
        return True
    return any(module == entry or module.startswith(entry + ".")
               for entry in allowlist)


def main() -> int:
    violations = []
    for module_file, allowlist in sorted(RULES.items()):
        if not module_file.exists():
            violations.append(f"{module_file}: file missing (layering rules "
                              "reference it — update tools/check_layering.py "
                              "if it moved)")
            continue
        for module, lineno in imported_modules(module_file):
            if not allowed(module, allowlist):
                rel = module_file.relative_to(REPO)
                violations.append(
                    f"{rel}:{lineno}: imports {module!r} — outside this "
                    f"layer's allowlist {sorted(allowlist) or '(stdlib only)'}")
    if violations:
        print("layering violations:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print(f"layering clean ({len(RULES)} modules checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
