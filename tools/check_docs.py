"""Docs and examples health check (run by the CI docs job).

Two independent checks, both purely static/import-level so the whole run
takes seconds:

1. **Example import smoke** — every ``examples/*.py`` must import cleanly
   (their ``main()`` is guarded by ``__main__``, so importing exercises the
   module's API surface — stale imports, renamed symbols, syntax errors —
   without running a multi-minute workflow).
2. **Intra-repo link check** — every relative markdown link in ``README.md``
   and ``docs/*.md`` must resolve to an existing file or directory.
   External links (``http``, ``https``, ``mailto``) and pure in-page anchors
   are skipped.

Exit code is non-zero when anything fails, printing one line per problem.

Run with:  PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target); images share the same syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def check_example_imports() -> list:
    """Import every example module; returns a list of error strings."""
    errors = []
    examples_dir = REPO_ROOT / "examples"
    sys.path.insert(0, str(examples_dir))
    try:
        for path in sorted(examples_dir.glob("*.py")):
            module = path.stem
            try:
                importlib.import_module(module)
            except Exception as exc:
                errors.append(f"examples/{path.name}: import failed: "
                              f"{type(exc).__name__}: {exc}")
            else:
                print(f"ok  import examples/{path.name}")
    finally:
        sys.path.remove(str(examples_dir))
    return errors


def iter_markdown_files():
    yield REPO_ROOT / "README.md"
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def check_markdown_links() -> list:
    """Resolve every relative link; returns a list of error strings."""
    errors = []
    for md_file in iter_markdown_files():
        if not md_file.exists():
            errors.append(f"{md_file.relative_to(REPO_ROOT)}: file missing")
            continue
        text = md_file.read_text(encoding="utf-8")
        checked = 0
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            # Strip an in-page anchor from a file link (docs/x.md#section).
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = (md_file.parent / target_path).resolve()
            if not resolved.exists():
                errors.append(f"{md_file.relative_to(REPO_ROOT)}: broken link "
                              f"-> {target}")
            checked += 1
        print(f"ok  {md_file.relative_to(REPO_ROOT)}: {checked} intra-repo "
              "link(s) checked")
    return errors


def main() -> int:
    errors = check_example_imports() + check_markdown_links()
    if errors:
        print(f"\n{len(errors)} problem(s):", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print("\ndocs check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
