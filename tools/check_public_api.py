"""Public-API surface check (run by the CI public-api job).

``repro.serving`` is the stable public entry point of the serving stack, so
its surface must never change by accident: this tool compares the package's
``__all__`` (sorted) against the committed snapshot ``tools/public_api.txt``
and fails on any drift — an added, removed or renamed name.  Intentional
surface changes are made by editing the snapshot in the same commit:

    PYTHONPATH=src python tools/check_public_api.py --update

The check also verifies every exported name actually resolves on the
package, so a stale ``__all__`` entry cannot hide behind the snapshot.

Run with:  PYTHONPATH=src python tools/check_public_api.py
"""

from __future__ import annotations

import sys
from pathlib import Path

SNAPSHOT = Path(__file__).resolve().parent / "public_api.txt"
HEADER = ("# Snapshot of repro.serving.__all__ (sorted).  CI fails when the\n"
          "# live surface drifts from this file; regenerate intentionally\n"
          "# with:  PYTHONPATH=src python tools/check_public_api.py --update\n")


def live_surface() -> list:
    import repro.serving
    names = sorted(repro.serving.__all__)
    missing = [name for name in names
               if getattr(repro.serving, name, None) is None]
    if missing:
        raise SystemExit(f"__all__ names that do not resolve on "
                         f"repro.serving: {missing}")
    return names


def main() -> int:
    names = live_surface()
    if "--update" in sys.argv[1:]:
        SNAPSHOT.write_text(HEADER + "".join(f"{name}\n" for name in names),
                            encoding="utf-8")
        print(f"wrote {SNAPSHOT.relative_to(SNAPSHOT.parent.parent)} "
              f"({len(names)} names)")
        return 0
    if not SNAPSHOT.exists():
        print(f"missing snapshot {SNAPSHOT}; run with --update to create it",
              file=sys.stderr)
        return 1
    recorded = [line.strip() for line in
                SNAPSHOT.read_text(encoding="utf-8").splitlines()
                if line.strip() and not line.startswith("#")]
    if recorded == names:
        print(f"public API unchanged ({len(names)} names)")
        return 0
    added = sorted(set(names) - set(recorded))
    removed = sorted(set(recorded) - set(names))
    print("repro.serving public API drifted from tools/public_api.txt:",
          file=sys.stderr)
    for name in added:
        print(f"  + {name} (new export not in the snapshot)", file=sys.stderr)
    for name in removed:
        print(f"  - {name} (snapshot name no longer exported)", file=sys.stderr)
    print("if intentional, regenerate with: PYTHONPATH=src python "
          "tools/check_public_api.py --update", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
