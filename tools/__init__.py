"""Repository maintenance tools (lints, doc checks, API guards).

The scripts in this directory run standalone (``python tools/check_docs.py``)
except :mod:`tools.reprolint`, a package invoked as ``python -m
tools.reprolint`` from the repository root.
"""
