"""GCoDE reproduction: automated GNN design and deployment for device-edge co-inference.

Reproduction of "Graph Neural Networks Automated Design and Deployment on
Device-Edge Co-Inference Systems" (DAC 2024).  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured comparison.

Subpackages
-----------
``repro.nn``
    Minimal numpy autograd / neural-network framework.
``repro.graph``
    Graph containers, KNN graph construction, synthetic datasets.
``repro.gnn``
    GNN operations (the co-inference design-space vocabulary), layers and
    reference models (DGCNN, GIN).
``repro.runtime``
    Compiled inference plans: autograd-free kernels, buffer arenas,
    edge-list canonicalization (the serving hot path).
``repro.hardware``
    Device latency/energy models, wireless link model, latency LUTs.
``repro.system``
    Co-inference simulator, partitioning baselines, socket engine.
``repro.serving``
    Public serving facade: frozen configs, versioned model repository
    with hot zoo reload, lifecycle-managed server/client, ``serve()``.
``repro.core``
    GCoDE itself: design space, supernet, constraint-based search,
    performance predictors, architecture zoo, runtime dispatcher.
``repro.baselines``
    DGCNN / Li et al. / HGNAS / BRANCHY-GNN / PNAS baselines.
``repro.evaluation``
    Metrics, Pareto extraction and report formatting.
"""

__version__ = "1.0.0"

__all__ = ["nn", "graph", "gnn", "hardware", "system", "core", "baselines",
           "evaluation", "runtime", "__version__"]
