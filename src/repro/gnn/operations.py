"""The GNN operation vocabulary of the GCoDE co-inference design space.

The paper's design space (Fig. 6) builds architectures from six operation
types — ``Sample``, ``Aggregate``, ``Communicate``, ``Combine``, ``Global
Pooling`` and ``Identity`` — each with a small set of *functions* (e.g. the
aggregation reducer, the Combine width, the expected link bandwidth).  This
module defines:

* :class:`OpType` / :class:`OpSpec` — the symbolic description of one
  operation instance, shared by the executor, the hardware cost models and
  the search code;
* :class:`ExecState` — the mutable state threaded through execution
  (node features, edge index, batch vector, pooled flag);
* executable modules (:class:`SampleOp`, :class:`AggregateOp`, ...) that
  apply an :class:`OpSpec` to an :class:`ExecState` using the mini NN
  framework, so that sampled architectures can actually be trained and
  evaluated for accuracy.

``Communicate`` is computationally an identity — its entire purpose is to
mark the device→edge hand-off point so that the mapping is part of the
architecture itself (the paper's key idea).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..graph.knn import knn_graph, random_graph


class OpType:
    """String constants naming the operation types of the design space."""

    INPUT = "input"
    SAMPLE = "sample"
    AGGREGATE = "aggregate"
    COMBINE = "combine"
    GLOBAL_POOL = "global_pool"
    IDENTITY = "identity"
    COMMUNICATE = "communicate"
    CLASSIFIER = "classifier"

    #: Operation types that may appear in searchable layer slots.
    SEARCHABLE = (SAMPLE, AGGREGATE, COMBINE, GLOBAL_POOL, IDENTITY, COMMUNICATE)
    #: All operation types, including the fixed input / classifier book-ends.
    ALL = (INPUT,) + SEARCHABLE + (CLASSIFIER,)


#: Default function choices per operation type (paper Fig. 6).
DEFAULT_FUNCTIONS: Dict[str, Tuple] = {
    OpType.SAMPLE: ("knn", "random"),
    OpType.AGGREGATE: ("add", "mean", "max"),
    OpType.COMBINE: (16, 32, 64, 128),
    OpType.GLOBAL_POOL: ("sum", "mean", "max", "max||mean"),
    OpType.IDENTITY: ("skip",),
    OpType.COMMUNICATE: ("uplink",),
}


@dataclass(frozen=True)
class OpSpec:
    """One concrete operation in an architecture.

    Attributes
    ----------
    op:
        Operation type, one of :class:`OpType`.
    function:
        The operation's function choice — reducer name for Aggregate /
        GlobalPool, ``"knn"``/``"random"`` for Sample, output width (int) for
        Combine, ``"skip"`` for Identity, ``"uplink"`` for Communicate.
    k:
        Neighbourhood size for Sample operations.
    """

    op: str
    function: object = None
    k: int = 9

    def __post_init__(self) -> None:
        if self.op not in OpType.ALL:
            raise ValueError(f"unknown operation type {self.op!r}")

    @property
    def channels(self) -> Optional[int]:
        """Output width for Combine operations, else ``None``."""
        return int(self.function) if self.op == OpType.COMBINE else None

    def short_name(self) -> str:
        """Compact human-readable label, e.g. ``combine(32)`` or ``aggregate(max)``."""
        if self.op in (OpType.INPUT, OpType.CLASSIFIER):
            return self.op
        if self.op == OpType.SAMPLE:
            return f"sample({self.function},k={self.k})"
        if self.op == OpType.IDENTITY:
            return "identity"
        if self.op == OpType.COMMUNICATE:
            return "communicate"
        return f"{self.op}({self.function})"


@dataclass
class ExecState:
    """Mutable state threaded through the execution of an architecture.

    The batch-vector contract
    -------------------------
    ``batch`` assigns every row of ``x`` (every node) to one of the
    ``num_graphs`` graphs of a disjoint union, and **every operation reduces
    strictly within those boundaries**: ``Sample`` never builds an edge
    across graphs, ``Aggregate`` only scatters along the edge index,
    ``GlobalPool``/``Classifier`` reduce per ``batch`` segment, and the
    row-wise ops (``Combine``, ``Identity``, ``Communicate``) ignore it.
    This holds for *resumed* segments too — a state deserialized from the
    wire mid-architecture, including a multi-frame micro-batch collated by
    :func:`repro.core.executor.collate_arrays` — which is what makes batched
    edge execution numerically equivalent to per-frame execution.
    """

    x: nn.Tensor
    batch: np.ndarray
    num_graphs: int
    edge_index: Optional[np.ndarray] = None
    pos: Optional[np.ndarray] = None
    pooled: bool = False

    @property
    def num_nodes(self) -> int:
        return int(self.x.shape[0])

    @property
    def feature_dim(self) -> int:
        return int(self.x.shape[1])


# ----------------------------------------------------------------------
# Executable operation modules
# ----------------------------------------------------------------------
class Operation(nn.Module):
    """Base class: applies one :class:`OpSpec` to an :class:`ExecState`."""

    def __init__(self, spec: OpSpec) -> None:
        super().__init__()
        self.spec = spec

    def forward(self, state: ExecState) -> ExecState:  # pragma: no cover - abstract
        raise NotImplementedError

    def output_dim(self, input_dim: int) -> int:
        """Feature dimensionality produced given ``input_dim`` inputs."""
        return input_dim


class SampleOp(Operation):
    """(Re)build the graph structure from current node features or positions."""

    def __init__(self, spec: OpSpec, seed: int = 0) -> None:
        super().__init__(spec)
        self._rng = np.random.default_rng(seed)

    def forward(self, state: ExecState) -> ExecState:
        if state.pooled:
            raise RuntimeError("cannot sample a graph after global pooling")
        reference = state.pos if state.pos is not None else state.x.data
        if self.spec.function == "knn":
            edge_index = knn_graph(state.x.data if state.pos is None else reference,
                                   self.spec.k, batch=state.batch)
        elif self.spec.function == "random":
            edge_index = random_graph(state.num_nodes, self.spec.k,
                                      rng=self._rng, batch=state.batch)
        else:
            raise ValueError(f"unknown sample function {self.spec.function!r}")
        state.edge_index = edge_index
        return state


class AggregateOp(Operation):
    """Message passing: aggregate neighbour features into each node.

    Uses the "difference + centre" message of DGCNN-style edge convolutions,
    i.e. the message from neighbour ``j`` to centre ``i`` is the concatenation
    ``[x_i, x_j - x_i]`` reduced with the configured reducer.  The feature
    dimension therefore doubles, matching the transfer-size growth after
    Aggregate that the paper's Fig. 2 highlights.
    """

    def forward(self, state: ExecState) -> ExecState:
        if state.edge_index is None or state.edge_index.size == 0:
            raise RuntimeError("aggregate requires an existing graph structure")
        if state.pooled:
            raise RuntimeError("cannot aggregate after global pooling")
        src, dst = state.edge_index[0], state.edge_index[1]
        x = state.x
        neighbours = x.gather_rows(src)
        centres = x.gather_rows(dst)
        messages = nn.concat([centres, neighbours - centres], axis=-1)
        state.x = nn.scatter(messages, dst, state.num_nodes,
                             reduce=str(self.spec.function))
        return state

    def output_dim(self, input_dim: int) -> int:
        return 2 * input_dim


class CombineOp(Operation):
    """Per-node feature transform (linear layer + ReLU) to ``channels`` outputs."""

    def __init__(self, spec: OpSpec, in_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(spec)
        if spec.channels is None or spec.channels <= 0:
            raise ValueError("Combine requires a positive channel count")
        self.linear = nn.Linear(in_dim, spec.channels, rng=rng)

    def forward(self, state: ExecState) -> ExecState:
        state.x = self.linear(state.x).relu()
        return state

    def output_dim(self, input_dim: int) -> int:
        return int(self.spec.channels)


class GlobalPoolOp(Operation):
    """Pool node features into one feature vector per graph."""

    def forward(self, state: ExecState) -> ExecState:
        if state.pooled:
            raise RuntimeError("graph is already pooled")
        state.x = nn.global_pool(state.x, state.batch, state.num_graphs,
                                 mode=str(self.spec.function))
        state.batch = np.arange(state.num_graphs, dtype=np.int64)
        state.edge_index = None
        state.pos = None
        state.pooled = True
        return state

    def output_dim(self, input_dim: int) -> int:
        return 2 * input_dim if self.spec.function == "max||mean" else input_dim


class IdentityOp(Operation):
    """No-op placeholder (the ``skip`` choice of the design space)."""

    def forward(self, state: ExecState) -> ExecState:
        return state


class CommunicateOp(Operation):
    """Device → edge hand-off marker.  Computationally an identity.

    The co-inference engine and the hardware simulator interpret this
    operation as "serialize the current intermediate state, compress it and
    send it across the wireless link"; during accuracy evaluation it does
    nothing to the features.
    """

    def forward(self, state: ExecState) -> ExecState:
        return state


class ClassifierOp(Operation):
    """Final MLP mapping pooled graph features to class logits."""

    def __init__(self, spec: OpSpec, in_dim: int, num_classes: int,
                 hidden_dim: int = 64,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(spec)
        self.mlp = nn.MLP([in_dim, hidden_dim, num_classes], rng=rng)
        self.num_classes = num_classes

    def forward(self, state: ExecState) -> ExecState:
        if not state.pooled:
            # Architectures are required to pool before classification, but a
            # defensive mean-pool keeps execution well-defined if not.
            state.x = nn.global_pool(state.x, state.batch, state.num_graphs,
                                     mode="mean")
            state.batch = np.arange(state.num_graphs, dtype=np.int64)
            state.pooled = True
        state.x = self.mlp(state.x)
        return state

    def output_dim(self, input_dim: int) -> int:
        return self.num_classes


def build_operation(spec: OpSpec, in_dim: int, num_classes: int = 0,
                    rng: Optional[np.random.Generator] = None,
                    seed: int = 0) -> Operation:
    """Instantiate the executable module for ``spec`` given its input width."""
    if spec.op == OpType.SAMPLE:
        return SampleOp(spec, seed=seed)
    if spec.op == OpType.AGGREGATE:
        return AggregateOp(spec)
    if spec.op == OpType.COMBINE:
        return CombineOp(spec, in_dim, rng=rng)
    if spec.op == OpType.GLOBAL_POOL:
        return GlobalPoolOp(spec)
    if spec.op == OpType.IDENTITY:
        return IdentityOp(spec)
    if spec.op == OpType.COMMUNICATE:
        return CommunicateOp(spec)
    if spec.op == OpType.CLASSIFIER:
        return ClassifierOp(spec, in_dim, num_classes, rng=rng)
    raise ValueError(f"cannot build operation for spec {spec!r}")
