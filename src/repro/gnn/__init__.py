"""GNN operations, layers and reference models."""

from .operations import (OpType, OpSpec, ExecState, DEFAULT_FUNCTIONS,
                         Operation, SampleOp, AggregateOp, CombineOp,
                         GlobalPoolOp, IdentityOp, CommunicateOp, ClassifierOp,
                         build_operation)
from .layers import EdgeConv, GCNConv, GINConv, GNNStack
from .models import (DGCNN, GINClassifier, dgcnn_opspecs, li_optimized_opspecs,
                     text_gnn_opspecs, pnas_opspecs)

__all__ = [
    "OpType", "OpSpec", "ExecState", "DEFAULT_FUNCTIONS",
    "Operation", "SampleOp", "AggregateOp", "CombineOp", "GlobalPoolOp",
    "IdentityOp", "CommunicateOp", "ClassifierOp", "build_operation",
    "EdgeConv", "GCNConv", "GINConv", "GNNStack",
    "DGCNN", "GINClassifier", "dgcnn_opspecs", "li_optimized_opspecs",
    "text_gnn_opspecs", "pnas_opspecs",
]
