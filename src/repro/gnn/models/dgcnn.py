"""DGCNN reference model and its operation-level description.

DGCNN (Wang et al., "Dynamic Graph CNN for Learning on Point Clouds") is the
main manually-designed baseline of the paper.  Two artefacts are provided:

* :class:`DGCNN` — a directly executable implementation built from
  :class:`~repro.gnn.layers.EdgeConv`, used as an independent reference for
  accuracy experiments and unit tests;
* :func:`dgcnn_opspecs` — the same network expressed as the operation
  sequence of the GCoDE design space (KNN Sample → Aggregate → Combine per
  block, then Global Pooling and the classifier), which is what the hardware
  cost models and the partitioning baselines consume (paper Fig. 2 profiles
  exactly this sequence).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ... import nn
from ...graph.data import Batch
from ...graph.knn import knn_graph
from ..layers import EdgeConv
from ..operations import OpSpec, OpType

#: EdgeConv widths of the standard DGCNN classification network.
DGCNN_CHANNELS = (64, 64, 128, 256)
#: Width of the aggregation MLP before global pooling ("MLP1" in Fig. 2).
DGCNN_EMB_DIM = 1024
#: Neighbourhood size used by every dynamic KNN graph rebuild.
DGCNN_K = 20


class DGCNN(nn.Module):
    """Executable DGCNN classifier for point clouds or small feature graphs.

    Parameters
    ----------
    in_dim:
        Input feature dimensionality (3 for point clouds).
    num_classes:
        Number of output classes.
    channels:
        EdgeConv output widths; defaults to the paper's (64, 64, 128, 256).
    emb_dim:
        Width of the shared embedding MLP before pooling.
    k:
        KNN neighbourhood size used when rebuilding the graph per layer.
    """

    def __init__(self, in_dim: int, num_classes: int,
                 channels: Sequence[int] = DGCNN_CHANNELS,
                 emb_dim: int = DGCNN_EMB_DIM, k: int = DGCNN_K,
                 dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.k = k
        self.channels = tuple(channels)
        self._convs: List[EdgeConv] = []
        dim = in_dim
        for i, width in enumerate(channels):
            conv = EdgeConv(dim, width, reducer="max", rng=rng)
            self.add_module(f"conv{i}", conv)
            self._convs.append(conv)
            dim = width
        self.embedding = nn.MLP([sum(channels), emb_dim], activate_last=True, rng=rng)
        self.classifier = nn.MLP([2 * emb_dim, 256, num_classes],
                                 dropout=dropout, rng=rng)
        self.num_classes = num_classes

    def forward(self, batch: Batch) -> nn.Tensor:
        x = nn.Tensor(batch.x)
        skips: List[nn.Tensor] = []
        for conv in self._convs:
            edge_index = knn_graph(x.data, self.k, batch=batch.batch)
            x = conv(x, edge_index)
            skips.append(x)
        x = self.embedding(nn.concat(skips, axis=-1))
        pooled = nn.global_pool(x, batch.batch, batch.num_graphs, mode="max||mean")
        return self.classifier(pooled)


def dgcnn_opspecs(channels: Sequence[int] = DGCNN_CHANNELS,
                  emb_dim: int = DGCNN_EMB_DIM, k: int = DGCNN_K) -> List[OpSpec]:
    """DGCNN expressed in the GCoDE operation vocabulary.

    Each EdgeConv block becomes ``Sample(knn) → Aggregate(max) → Combine(c)``;
    the trailing embedding MLP is a wide ``Combine`` followed by
    ``GlobalPool(max||mean)``.
    """
    specs: List[OpSpec] = []
    for width in channels:
        specs.append(OpSpec(OpType.SAMPLE, "knn", k=k))
        specs.append(OpSpec(OpType.AGGREGATE, "max"))
        specs.append(OpSpec(OpType.COMBINE, int(width)))
    specs.append(OpSpec(OpType.COMBINE, int(emb_dim)))
    specs.append(OpSpec(OpType.GLOBAL_POOL, "max||mean"))
    return specs


def li_optimized_opspecs(k: int = DGCNN_K) -> List[OpSpec]:
    """Manually optimized DGCNN variant of Li et al. (ICCV 2021), baseline "[1]".

    The optimization replaces the per-layer dynamic KNN rebuild with a single
    up-front graph construction and trims the channel widths, roughly halving
    the computation of DGCNN while losing little accuracy — mirroring the
    latency gap reported for "[1]" in Table 2.
    """
    specs: List[OpSpec] = [OpSpec(OpType.SAMPLE, "knn", k=k)]
    for width in (64, 64, 128):
        specs.append(OpSpec(OpType.AGGREGATE, "max"))
        specs.append(OpSpec(OpType.COMBINE, int(width)))
    specs.append(OpSpec(OpType.COMBINE, 512))
    specs.append(OpSpec(OpType.GLOBAL_POOL, "max||mean"))
    return specs
