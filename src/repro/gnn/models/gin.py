"""GIN graph classifier — the reference model family used for text graphs.

The paper's MR baseline architectures (PNAS-designed and the fixed text-GNN)
are message-passing networks over the pre-existing word graph.  This module
provides a directly executable GIN classifier used in tests and examples, and
operation-sequence descriptions of the fixed text-GNN and of a typical
PNAS-searched architecture for the cost models and baselines.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ... import nn
from ...graph.data import Batch
from ..layers import GINConv
from ..operations import OpSpec, OpType


class GINClassifier(nn.Module):
    """Stack of GIN layers followed by global pooling and an MLP classifier."""

    def __init__(self, in_dim: int, num_classes: int,
                 hidden_dims: Sequence[int] = (64, 64),
                 pool: str = "sum", dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.pool = pool
        self._layers: List[GINConv] = []
        dim = in_dim
        for i, width in enumerate(hidden_dims):
            layer = GINConv(dim, width, rng=rng)
            self.add_module(f"gin{i}", layer)
            self._layers.append(layer)
            dim = width
        self.classifier = nn.MLP([dim, max(dim // 2, num_classes), num_classes],
                                 dropout=dropout, rng=rng)
        self.num_classes = num_classes

    def forward(self, batch: Batch) -> nn.Tensor:
        x = nn.Tensor(batch.x)
        for layer in self._layers:
            x = layer(x, batch.edge_index)
        pooled = nn.global_pool(x, batch.batch, batch.num_graphs, mode=self.pool)
        return self.classifier(pooled)


def text_gnn_opspecs(hidden: int = 96) -> List[OpSpec]:
    """Fixed text-classification GNN in the GCoDE operation vocabulary.

    Text graphs (MR) arrive with word co-occurrence edges, so no ``Sample``
    is needed: the network aggregates twice over the given structure with a
    Combine after each aggregation, then mean-pools and classifies.
    """
    return [
        OpSpec(OpType.AGGREGATE, "mean"),
        OpSpec(OpType.COMBINE, int(hidden)),
        OpSpec(OpType.AGGREGATE, "mean"),
        OpSpec(OpType.COMBINE, int(hidden)),
        OpSpec(OpType.GLOBAL_POOL, "mean"),
    ]


def pnas_opspecs() -> List[OpSpec]:
    """Representative PNAS-searched architecture for graph classification (MR).

    PNAS (Wei et al., ACM TOIS 2023) searches pooling-augmented
    message-passing architectures for graph classification; the paper uses
    its searched model as the MR NAS baseline.  The representative design
    used here is a lightweight two-block network with max aggregation and a
    sum readout.
    """
    return [
        OpSpec(OpType.COMBINE, 64),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMBINE, 64),
        OpSpec(OpType.AGGREGATE, "add"),
        OpSpec(OpType.COMBINE, 32),
        OpSpec(OpType.GLOBAL_POOL, "sum"),
    ]
