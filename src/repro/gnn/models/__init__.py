"""Reference GNN models and their operation-level descriptions."""

from .dgcnn import DGCNN, dgcnn_opspecs, li_optimized_opspecs, DGCNN_CHANNELS, DGCNN_K
from .gin import GINClassifier, text_gnn_opspecs, pnas_opspecs

__all__ = [
    "DGCNN", "dgcnn_opspecs", "li_optimized_opspecs", "DGCNN_CHANNELS", "DGCNN_K",
    "GINClassifier", "text_gnn_opspecs", "pnas_opspecs",
]
