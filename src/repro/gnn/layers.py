"""Reusable GNN layers: EdgeConv (DGCNN), GCNConv and GINConv.

EdgeConv is the building block of the DGCNN baseline; GINConv and GCNConv
are used by the system-performance predictors (the paper builds its latency
predictor from three GIN layers and compares against a GCN variant in the
Fig. 10(b) ablation).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import nn


class EdgeConv(nn.Module):
    """Dynamic edge convolution (Wang et al., DGCNN).

    For every edge ``j -> i`` the message is ``MLP([x_i, x_j - x_i])`` and
    messages are reduced with ``max`` (the DGCNN default) or another reducer.
    """

    def __init__(self, in_dim: int, out_dim: int, reducer: str = "max",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.reducer = reducer
        self.mlp = nn.MLP([2 * in_dim, out_dim], activate_last=True, rng=rng)

    def forward(self, x: nn.Tensor, edge_index: np.ndarray) -> nn.Tensor:
        if edge_index is None or edge_index.size == 0:
            raise ValueError("EdgeConv requires a non-empty edge index")
        src, dst = edge_index[0], edge_index[1]
        centres = x.gather_rows(dst)
        neighbours = x.gather_rows(src)
        messages = self.mlp(nn.concat([centres, neighbours - centres], axis=-1))
        return nn.scatter(messages, dst, x.shape[0], reduce=self.reducer)


class GCNConv(nn.Module):
    """Graph convolution with symmetric degree normalization (Kipf & Welling)."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.linear = nn.Linear(in_dim, out_dim, rng=rng)

    def forward(self, x: nn.Tensor, edge_index: np.ndarray) -> nn.Tensor:
        num_nodes = x.shape[0]
        # Add self-loops so isolated nodes keep their features.
        loops = np.arange(num_nodes, dtype=np.int64)
        if edge_index is None or edge_index.size == 0:
            src = dst = loops
        else:
            src = np.concatenate([edge_index[0], loops])
            dst = np.concatenate([edge_index[1], loops])
        degree = np.bincount(dst, minlength=num_nodes).astype(np.float64)
        inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1.0))
        norm = inv_sqrt[src] * inv_sqrt[dst]
        transformed = self.linear(x)
        messages = transformed.gather_rows(src) * nn.Tensor(norm[:, None])
        return nn.scatter_add(messages, dst, num_nodes)


class GINConv(nn.Module):
    """Graph isomorphism network layer (Xu et al., ICLR 2019).

    ``h_i' = MLP((1 + eps) * h_i + reduce_j h_j)`` — the paper's predictor
    uses the *mean* reducer variant together with global sum pooling.
    """

    def __init__(self, in_dim: int, out_dim: int, hidden_dim: Optional[int] = None,
                 reducer: str = "mean", eps: float = 0.0, train_eps: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        hidden_dim = hidden_dim or out_dim
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.reducer = reducer
        self.mlp = nn.MLP([in_dim, hidden_dim, out_dim], activate_last=True, rng=rng)
        if train_eps:
            self.eps = nn.Parameter(np.asarray([eps]), name="eps")
        else:
            self.eps = None
            self._fixed_eps = eps

    def forward(self, x: nn.Tensor, edge_index: np.ndarray) -> nn.Tensor:
        num_nodes = x.shape[0]
        if edge_index is None or edge_index.size == 0:
            aggregated = nn.Tensor(np.zeros_like(x.data))
        else:
            src, dst = edge_index[0], edge_index[1]
            aggregated = nn.scatter(x.gather_rows(src), dst, num_nodes,
                                    reduce=self.reducer)
        if self.eps is not None:
            scaled = x * (self.eps + 1.0)
        else:
            scaled = x * (1.0 + self._fixed_eps)
        return self.mlp(scaled + aggregated)


class GNNStack(nn.Module):
    """Stack of homogeneous GNN layers with a configurable layer factory."""

    def __init__(self, layer_type: str, dims: Sequence[int],
                 reducer: str = "mean",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("GNNStack needs at least input and output widths")
        self.layer_type = layer_type
        self._layers = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            if layer_type == "gin":
                layer = GINConv(d_in, d_out, reducer=reducer, rng=rng)
            elif layer_type == "gcn":
                layer = GCNConv(d_in, d_out, rng=rng)
            elif layer_type == "edge":
                layer = EdgeConv(d_in, d_out, reducer=reducer, rng=rng)
            else:
                raise ValueError(f"unknown layer type {layer_type!r}")
            self.add_module(f"layer{i}", layer)
            self._layers.append(layer)

    def forward(self, x: nn.Tensor, edge_index: np.ndarray) -> nn.Tensor:
        for layer in self._layers:
            x = layer(x, edge_index)
        return x
