"""Wireless link model between the device and the edge.

The paper connects all platforms to a wireless router and throttles the
uplink to 10 or 40 Mbps; transmitted intermediate data is compressed with
zlib.  This module models the link as bandwidth + round-trip latency with a
configurable compression ratio, and computes transmission energy with the
affine throughput→power model of Huang et al. (MobiSys 2012), which the
paper cites for its on-device energy estimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class WirelessLink:
    """Point-to-point wireless uplink between device and edge.

    Attributes
    ----------
    bandwidth_mbps:
        Uplink bandwidth cap in megabits per second (10 or 40 in the paper).
    rtt_ms:
        Round-trip time of the link; half of it is charged per transfer.
    compression_ratio:
        Fraction of the raw payload that remains after zlib compression
        (≈0.6 for float feature maps).
    tx_power_base_w / tx_power_per_mbps_w:
        Affine transmit-power model ``P = base + slope · throughput``
        following Huang et al.; defaults approximate a Wi-Fi/LTE radio.
    """

    bandwidth_mbps: float
    rtt_ms: float = 2.0
    compression_ratio: float = 0.6
    tx_power_base_w: float = 1.2
    tx_power_per_mbps_w: float = 0.01

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")

    # ------------------------------------------------------------------
    def compressed_bytes(self, payload_bytes: int) -> float:
        """Size of the payload after compression."""
        return payload_bytes * self.compression_ratio

    def transfer_time_ms(self, payload_bytes: int) -> float:
        """One-way transfer time of ``payload_bytes`` of raw data."""
        if payload_bytes <= 0:
            return 0.0
        bits = self.compressed_bytes(payload_bytes) * 8.0
        return bits / (self.bandwidth_mbps * 1e6) * 1e3 + self.rtt_ms / 2.0

    def transmit_power_w(self) -> float:
        """Radio power draw while transmitting at the configured bandwidth."""
        return self.tx_power_base_w + self.tx_power_per_mbps_w * self.bandwidth_mbps

    def transfer_energy_j(self, payload_bytes: int) -> float:
        """Device-side radio energy to upload ``payload_bytes``."""
        return self.transmit_power_w() * self.transfer_time_ms(payload_bytes) / 1e3

    def describe(self) -> Dict[str, float]:
        """Flat dict of the link parameters (used in reports)."""
        return {
            "bandwidth_mbps": self.bandwidth_mbps,
            "rtt_ms": self.rtt_ms,
            "compression_ratio": self.compression_ratio,
            "transmit_power_w": self.transmit_power_w(),
        }


#: The two network conditions evaluated in the paper.
LINK_40MBPS = WirelessLink(bandwidth_mbps=40.0)
LINK_10MBPS = WirelessLink(bandwidth_mbps=10.0)

PAPER_LINKS = {"40mbps": LINK_40MBPS, "10mbps": LINK_10MBPS}


def get_link(name_or_mbps) -> WirelessLink:
    """Resolve a link either by name (``"10mbps"``) or numeric bandwidth."""
    if isinstance(name_or_mbps, WirelessLink):
        return name_or_mbps
    if isinstance(name_or_mbps, (int, float)):
        return WirelessLink(bandwidth_mbps=float(name_or_mbps))
    key = str(name_or_mbps).lower().strip()
    if key in PAPER_LINKS:
        return PAPER_LINKS[key]
    raise KeyError(f"unknown link {name_or_mbps!r}; known: {sorted(PAPER_LINKS)}")
