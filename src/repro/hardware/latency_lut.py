"""Operation latency look-up tables (LUTs).

GCoDE's system-performance awareness (Sec. 3.5) keeps a per-device LUT of
operation latencies for the target data regime; the LUT feeds both the
training-free *cost estimation* and the enhanced node features of the GIN
latency predictor.  Because the design space has few (operation, function)
combinations, the LUT is cheap to construct — here it is filled from the
analytical :class:`~repro.hardware.device.DeviceSpec` models instead of
on-hardware profiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..gnn.operations import DEFAULT_FUNCTIONS, OpSpec, OpType
from .device import DeviceSpec
from .network import WirelessLink
from .workload import DataProfile, OpWorkload, trace_workloads, transfer_bytes

#: Representative feature widths at which LUT entries are tabulated.  The
#: grid is roughly geometric with extra points at the widths the design space
#: actually produces, keeping the bucketing error of the cost estimator small.
LUT_FEATURE_DIMS = (2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256,
                    384, 512, 768, 1024, 2048)


def _nearest_dim(dim: int) -> int:
    """Snap a feature width to the nearest tabulated LUT width."""
    return min(LUT_FEATURE_DIMS, key=lambda candidate: abs(candidate - dim))


@dataclass
class LatencyLUT:
    """Per-device operation-latency table for one data profile.

    Entries are keyed by ``(op_type, function, feature_dim_bucket)`` and hold
    the modelled latency in milliseconds.  ``Communicate`` entries are keyed
    by the link and payload bucket instead and are computed on demand.
    """

    device: DeviceSpec
    profile: DataProfile
    entries: Dict[Tuple, float]

    def lookup(self, spec: OpSpec, in_dim: int) -> float:
        """Latency of ``spec`` with ``in_dim`` input features on this device."""
        key = self._key(spec, in_dim)
        if key in self.entries:
            return self.entries[key]
        # Fall back to an on-the-fly model evaluation for unseen widths.
        workload = _single_op_workload(spec, self.profile, in_dim)
        value = self.device.op_latency_ms(workload)
        self.entries[key] = value
        return value

    def _key(self, spec: OpSpec, in_dim: int) -> Tuple:
        function = spec.function if spec.op != OpType.SAMPLE else f"{spec.function}-k{spec.k}"
        return (spec.op, function, _nearest_dim(in_dim))

    def values(self) -> List[float]:
        """All tabulated latencies (used for normalization statistics)."""
        return list(self.entries.values())


def _single_op_workload(spec: OpSpec, profile: DataProfile, in_dim: int) -> OpWorkload:
    """Construct the workload of one op applied to profile-shaped data."""
    num_nodes = profile.num_nodes
    num_edges = num_nodes * spec.k if spec.op in (OpType.SAMPLE, OpType.AGGREGATE) \
        else (profile.initial_edges if profile.has_edges else 0)
    if spec.op == OpType.AGGREGATE and profile.has_edges and not num_edges:
        num_edges = profile.initial_edges
    if spec.op == OpType.AGGREGATE:
        out_dim = 2 * in_dim
    elif spec.op == OpType.COMBINE:
        out_dim = int(spec.function)
    elif spec.op == OpType.GLOBAL_POOL:
        out_dim = 2 * in_dim if spec.function == "max||mean" else in_dim
    elif spec.op == OpType.CLASSIFIER:
        out_dim = profile.num_classes
    else:
        out_dim = in_dim
    pooled = spec.op == OpType.CLASSIFIER
    nodes = 1 if pooled else num_nodes
    return OpWorkload(spec=spec, num_nodes=nodes, in_dim=in_dim, out_dim=out_dim,
                      num_edges=num_edges, pooled=pooled,
                      output_bytes=transfer_bytes(nodes, out_dim, num_edges, False))


def build_latency_lut(device: DeviceSpec, profile: DataProfile,
                      k_choices: Iterable[int] = (9, 20)) -> LatencyLUT:
    """Tabulate the latency of every (operation, function, width) combination."""
    entries: Dict[Tuple, float] = {}
    lut = LatencyLUT(device=device, profile=profile, entries=entries)
    for dim in LUT_FEATURE_DIMS:
        for op_type, functions in DEFAULT_FUNCTIONS.items():
            if op_type == OpType.SAMPLE:
                for function in functions:
                    for k in k_choices:
                        spec = OpSpec(op_type, function, k=k)
                        entries[lut._key(spec, dim)] = device.op_latency_ms(
                            _single_op_workload(spec, profile, dim))
                continue
            if op_type == OpType.COMMUNICATE:
                continue  # link-dependent; handled by WirelessLink
            for function in functions:
                spec = OpSpec(op_type, function)
                entries[lut._key(spec, dim)] = device.op_latency_ms(
                    _single_op_workload(spec, profile, dim))
        classifier = OpSpec(OpType.CLASSIFIER, "mlp")
        entries[lut._key(classifier, dim)] = device.op_latency_ms(
            _single_op_workload(classifier, profile, dim))
    return lut


def communicate_latency_ms(link: WirelessLink, payload_bytes: int) -> float:
    """Latency of a Communicate operation for a given payload on ``link``.

    The paper notes the communicate latency is "calculable based on the
    transfer data size and the available network bandwidth" — exactly this.
    """
    return link.transfer_time_ms(payload_bytes)
