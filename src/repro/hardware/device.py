"""Device performance and power models.

A :class:`DeviceSpec` captures the per-operation performance character of one
platform through a small set of effective processing rates (work units per
millisecond) plus a per-operation dispatch overhead, and its power draw
through idle/busy/transmit power levels.  The model is deliberately simple —
latency = overhead + work / rate — but the rates are *per operation type*,
which is exactly the degree of freedom needed to reproduce the paper's core
observation (Fig. 3): GNN operations have very different hardware
sensitivities (KNN starves GPUs, Aggregate's irregular access starves
desktop CPUs once the feature table falls out of cache, everything is slow on
a Raspberry Pi).

Work units:

* Sample/KNN:   ``N² · (D + log2 N)`` distance + sort element operations;
* Aggregate:    ``E · 2D`` gathered/reduced elements, with a cache-aware rate
  (fast when the node-feature table fits in the device's cache, slow when it
  does not — this is what makes Aggregate cheap on MR but dominant on
  ModelNet40 for the i7);
* Combine:      ``N · D_in · D_out`` multiply-accumulates;
* GlobalPool:   ``N · D`` reduced elements;
* Classifier:   ``D_in · hidden + hidden · classes`` MACs.

All work is expressed in millions of units ("Mops") so rates are Mops/ms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..gnn.operations import OpSpec, OpType
from .workload import OpWorkload

MOPS = 1e6


@dataclass(frozen=True)
class DeviceSpec:
    """Performance/power description of one device or edge platform.

    Attributes
    ----------
    name / kind:
        Identifier and coarse category (``"embedded-gpu"``, ``"cpu"``, ...).
    knn_rate, dense_rate, gather_rate_hot, gather_rate_cold, pool_rate:
        Effective processing rates in Mops/ms for the different operation
        classes.  ``gather_rate_hot`` applies when the node-feature table
        fits in ``cache_kb``; ``gather_rate_cold`` when it does not.
    op_overhead_ms:
        Fixed per-operation dispatch overhead (framework/runtime cost).
    cache_kb:
        Effective cache capacity used for the hot/cold gather decision.
    idle_power_w / busy_power_w / transmit_power_w:
        Power draw when idle (runtime loaded, waiting), when executing
        operations, and while transmitting over the wireless link.
    """

    name: str
    kind: str
    knn_rate: float
    dense_rate: float
    gather_rate_hot: float
    gather_rate_cold: float
    pool_rate: float
    op_overhead_ms: float
    cache_kb: float
    idle_power_w: float
    busy_power_w: float
    transmit_power_w: float

    # ------------------------------------------------------------------
    # Latency model
    # ------------------------------------------------------------------
    def _gather_rate(self, num_nodes: int, dim: int) -> float:
        table_kb = num_nodes * dim * 8 / 1024.0
        return self.gather_rate_hot if table_kb <= self.cache_kb else self.gather_rate_cold

    def op_latency_ms(self, workload: OpWorkload,
                      classifier_hidden: int = 64) -> float:
        """Execution latency of one operation instance on this device."""
        spec = workload.spec
        n = max(workload.num_nodes, 1)
        d_in = max(workload.in_dim, 1)
        d_out = max(workload.out_dim, 1)
        edges = max(workload.num_edges, 0)

        if spec.op == OpType.IDENTITY:
            return 0.0
        if spec.op == OpType.COMMUNICATE:
            # The link cost is modelled by WirelessLink; the device-side cost
            # of a communicate is only its (de)serialization dispatch.
            return self.op_overhead_ms

        if spec.op == OpType.SAMPLE:
            if spec.function == "random":
                work = n * spec.k / MOPS
                return self.op_overhead_ms + work / self.pool_rate
            work = (n * n * (d_in + math.log2(max(n, 2)))) / MOPS
            return self.op_overhead_ms + work / self.knn_rate
        if spec.op == OpType.AGGREGATE:
            work = (edges * 2.0 * d_in) / MOPS
            rate = self._gather_rate(n, d_in)
            return self.op_overhead_ms + work / rate
        if spec.op == OpType.COMBINE:
            work = (n * d_in * d_out) / MOPS
            return self.op_overhead_ms + work / self.dense_rate
        if spec.op == OpType.GLOBAL_POOL:
            work = (n * d_in) / MOPS
            return self.op_overhead_ms + work / self.pool_rate
        if spec.op == OpType.CLASSIFIER:
            hidden = classifier_hidden
            work = (n * (d_in * hidden + hidden * d_out)) / MOPS
            return self.op_overhead_ms + work / self.dense_rate
        raise ValueError(f"no latency model for operation {spec.op!r}")

    def sequence_latency_ms(self, workloads, classifier_hidden: int = 64) -> float:
        """Total latency of a list of workloads executed back-to-back."""
        return float(sum(self.op_latency_ms(w, classifier_hidden) for w in workloads))

    # ------------------------------------------------------------------
    # Energy model
    # ------------------------------------------------------------------
    def compute_energy_j(self, busy_ms: float) -> float:
        """Energy consumed while actively executing for ``busy_ms``."""
        return self.busy_power_w * busy_ms / 1000.0

    def idle_energy_j(self, idle_ms: float) -> float:
        """Energy consumed while idle (runtime resident, waiting) for ``idle_ms``."""
        return self.idle_power_w * idle_ms / 1000.0

    def transmit_energy_j(self, transmit_ms: float) -> float:
        """Energy consumed while transmitting for ``transmit_ms``."""
        return self.transmit_power_w * transmit_ms / 1000.0

    def describe(self) -> Dict[str, float]:
        """Flat dict of the model parameters (used in reports)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "knn_rate": self.knn_rate,
            "dense_rate": self.dense_rate,
            "gather_rate_hot": self.gather_rate_hot,
            "gather_rate_cold": self.gather_rate_cold,
            "pool_rate": self.pool_rate,
            "op_overhead_ms": self.op_overhead_ms,
            "cache_kb": self.cache_kb,
            "idle_power_w": self.idle_power_w,
            "busy_power_w": self.busy_power_w,
            "transmit_power_w": self.transmit_power_w,
        }
