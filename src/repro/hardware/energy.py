"""On-device energy estimation.

Implements the paper's energy model (Sec. 3.5):

``E_total = E_idle + E_run + E_comm``

where ``E_run`` is the device's busy power times its execution time,
``E_idle`` its idle power times the time it spends waiting (for the edge to
compute and reply), and ``E_comm`` the radio energy of uploading intermediate
data, computed with the throughput→power model of Huang et al. that the
paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .device import DeviceSpec
from .network import WirelessLink


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-phase device energy of one inference."""

    idle_j: float
    run_j: float
    comm_j: float

    @property
    def total_j(self) -> float:
        return self.idle_j + self.run_j + self.comm_j

    def as_dict(self) -> Dict[str, float]:
        return {"idle_j": self.idle_j, "run_j": self.run_j,
                "comm_j": self.comm_j, "total_j": self.total_j}


def estimate_device_energy(device: DeviceSpec, link: WirelessLink,
                           device_busy_ms: float, device_idle_ms: float,
                           uploaded_bytes: float) -> EnergyBreakdown:
    """Estimate per-inference device energy from timing and traffic totals.

    Parameters
    ----------
    device:
        The device-side platform.
    link:
        The wireless uplink (determines transmit power and time).
    device_busy_ms:
        Time the device spends executing operations.
    device_idle_ms:
        Time the device spends waiting (edge compute + downlink latency).
    uploaded_bytes:
        Total raw bytes the device uploads during the inference.
    """
    if device_busy_ms < 0 or device_idle_ms < 0 or uploaded_bytes < 0:
        raise ValueError("timing and traffic quantities must be non-negative")
    run_j = device.compute_energy_j(device_busy_ms)
    idle_j = device.idle_energy_j(device_idle_ms)
    comm_time_ms = link.transfer_time_ms(int(uploaded_bytes))
    comm_j = link.transmit_power_w() * comm_time_ms / 1e3
    return EnergyBreakdown(idle_j=idle_j, run_j=run_j, comm_j=comm_j)
