"""Hardware substrate: device models, wireless link, latency LUTs, energy."""

from .device import DeviceSpec
from .profiles import (JETSON_TX2, RASPBERRY_PI_4B, INTEL_I7, NVIDIA_1060,
                       DEVICE_REGISTRY, PAPER_SYSTEM_CONFIGS, get_device,
                       all_devices)
from .network import WirelessLink, LINK_10MBPS, LINK_40MBPS, PAPER_LINKS, get_link
from .workload import (DataProfile, OpWorkload, trace_workloads, transfer_bytes,
                       input_bytes, BYTES_PER_FEATURE)
from .latency_lut import LatencyLUT, build_latency_lut, communicate_latency_ms
from .energy import EnergyBreakdown, estimate_device_energy

__all__ = [
    "DeviceSpec",
    "JETSON_TX2", "RASPBERRY_PI_4B", "INTEL_I7", "NVIDIA_1060",
    "DEVICE_REGISTRY", "PAPER_SYSTEM_CONFIGS", "get_device", "all_devices",
    "WirelessLink", "LINK_10MBPS", "LINK_40MBPS", "PAPER_LINKS", "get_link",
    "DataProfile", "OpWorkload", "trace_workloads", "transfer_bytes",
    "input_bytes", "BYTES_PER_FEATURE",
    "LatencyLUT", "build_latency_lut", "communicate_latency_ms",
    "EnergyBreakdown", "estimate_device_energy",
]
