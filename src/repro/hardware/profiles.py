"""Calibrated device profiles for the four platforms used in the paper.

The rate/overhead/power parameters below were calibrated so that the
analytical model reproduces the paper's measured anchors:

* DGCNN (1024-point ModelNet40, k=20) Device-Only latency:
  Jetson TX2 ≈ 242 ms, Raspberry Pi 4B ≈ 1122 ms (Table 2);
* DGCNN Edge-Only compute latency: Nvidia GTX 1060 ≈ 105 ms,
  Intel i7-7700 ≈ 330 ms (Table 2, after subtracting the input upload);
* operation breakdown shape (Fig. 3): KNN dominates on both GPUs,
  Aggregate dominates on the i7 for ModelNet40, Combine dominates on the
  i7 for MR, and the Pi is uniformly slow;
* DGCNN Device-Only energy: ≈ 2.6 J on TX2 and ≈ 5.6 J on the Pi (Table 2).

Absolute numbers are a model, not a measurement — EXPERIMENTS.md reports the
paper-vs-measured comparison for every experiment.
"""

from __future__ import annotations

from typing import Dict, List

from .device import DeviceSpec

JETSON_TX2 = DeviceSpec(
    name="jetson_tx2",
    kind="embedded-gpu",
    knn_rate=2.5,
    dense_rate=5.0,
    gather_rate_hot=1.2,
    gather_rate_cold=0.6,
    pool_rate=0.8,
    op_overhead_ms=1.0,
    cache_kb=2048.0,
    idle_power_w=2.5,
    busy_power_w=10.5,
    transmit_power_w=2.0,
)

RASPBERRY_PI_4B = DeviceSpec(
    name="raspberry_pi_4b",
    kind="embedded-cpu",
    knn_rate=0.6,
    dense_rate=0.8,
    gather_rate_hot=0.25,
    gather_rate_cold=0.1,
    pool_rate=0.3,
    op_overhead_ms=3.0,
    cache_kb=1024.0,
    idle_power_w=2.2,
    busy_power_w=5.0,
    transmit_power_w=1.8,
)

INTEL_I7 = DeviceSpec(
    name="intel_i7",
    kind="desktop-cpu",
    knn_rate=3.0,
    dense_rate=12.0,
    gather_rate_hot=2.0,
    gather_rate_cold=0.06,
    pool_rate=2.5,
    op_overhead_ms=0.3,
    cache_kb=256.0,
    idle_power_w=8.0,
    busy_power_w=65.0,
    transmit_power_w=3.0,
)

NVIDIA_1060 = DeviceSpec(
    name="nvidia_1060",
    kind="desktop-gpu",
    knn_rate=4.0,
    dense_rate=25.0,
    gather_rate_hot=2.5,
    gather_rate_cold=0.9,
    pool_rate=2.0,
    op_overhead_ms=0.6,
    cache_kb=2048.0,
    idle_power_w=10.0,
    busy_power_w=120.0,
    transmit_power_w=3.0,
)

#: Registry mapping short names to device specs.
DEVICE_REGISTRY: Dict[str, DeviceSpec] = {
    "jetson_tx2": JETSON_TX2,
    "tx2": JETSON_TX2,
    "raspberry_pi_4b": RASPBERRY_PI_4B,
    "pi4b": RASPBERRY_PI_4B,
    "pi": RASPBERRY_PI_4B,
    "intel_i7": INTEL_I7,
    "i7": INTEL_I7,
    "nvidia_1060": NVIDIA_1060,
    "gtx1060": NVIDIA_1060,
    "1060": NVIDIA_1060,
}

#: The device-edge pairings evaluated throughout the paper.
PAPER_SYSTEM_CONFIGS: List[tuple] = [
    ("jetson_tx2", "nvidia_1060"),
    ("jetson_tx2", "intel_i7"),
    ("raspberry_pi_4b", "nvidia_1060"),
    ("raspberry_pi_4b", "intel_i7"),
]


def get_device(name: str) -> DeviceSpec:
    """Look up a device profile by (case-insensitive) name or alias."""
    key = name.lower().strip()
    if key not in DEVICE_REGISTRY:
        raise KeyError(f"unknown device {name!r}; known: {sorted(set(DEVICE_REGISTRY))}")
    return DEVICE_REGISTRY[key]


def all_devices() -> List[DeviceSpec]:
    """The four distinct paper devices (no aliases)."""
    return [JETSON_TX2, RASPBERRY_PI_4B, INTEL_I7, NVIDIA_1060]
