"""Workload characterization of GNN operations.

The hardware latency/energy models do not execute tensors — they consume a
*workload descriptor* per operation (how many nodes, edges, input/output
features it touches).  :func:`trace_workloads` walks an operation sequence
and derives those descriptors from a :class:`DataProfile` describing the
input data regime (e.g. ModelNet40: 1024 nodes × 3 features, no initial
edges; MR: ~17 nodes × 300 features with word co-occurrence edges), tracking
how feature dimensions and graph structure evolve through the network exactly
as :class:`~repro.core.architecture.Architecture.feature_dims` does.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from ..gnn.operations import OpSpec, OpType

#: Bytes per transmitted feature value (float32 on the wire).
BYTES_PER_FEATURE = 4
#: Bytes per transmitted edge endpoint (int32 indices on the wire).
BYTES_PER_INDEX = 4


@dataclass(frozen=True)
class DataProfile:
    """Static description of the input data regime of an application.

    Attributes
    ----------
    name:
        Dataset name (``"modelnet40"`` / ``"mr"`` / custom).
    num_nodes:
        Nodes per inference frame (points per cloud, words per document).
    feature_dim:
        Input feature dimensionality.
    has_edges:
        Whether the frame arrives with a graph structure (text graphs do,
        point clouds do not).
    initial_edges:
        Number of edges in the incoming structure when ``has_edges``.
    num_classes:
        Number of output classes (classifier workload).
    """

    name: str
    num_nodes: int
    feature_dim: int
    has_edges: bool = False
    initial_edges: int = 0
    num_classes: int = 40

    @staticmethod
    def modelnet40(num_points: int = 1024, num_classes: int = 40) -> "DataProfile":
        """Profile matching the paper's ModelNet40 setting (1024 × 3 points)."""
        return DataProfile(name="modelnet40", num_nodes=num_points, feature_dim=3,
                           has_edges=False, initial_edges=0, num_classes=num_classes)

    @staticmethod
    def mr(num_words: int = 17, feature_dim: int = 300,
           window: int = 3) -> "DataProfile":
        """Profile matching the paper's MR setting (~17 × 300 word graphs)."""
        edges = num_words * min(2 * window, max(num_words - 1, 1))
        return DataProfile(name="mr", num_nodes=num_words, feature_dim=feature_dim,
                           has_edges=True, initial_edges=edges, num_classes=2)


@dataclass(frozen=True)
class OpWorkload:
    """Resource footprint of one operation instance.

    All quantities refer to a single inference frame (one graph).
    """

    spec: OpSpec
    num_nodes: int
    in_dim: int
    out_dim: int
    num_edges: int
    pooled: bool
    #: Bytes that would need to be transmitted if the *output* of this
    #: operation were handed to the other side (features + graph structure).
    output_bytes: int

    @property
    def op(self) -> str:
        return self.spec.op


def _structure_bytes(num_edges: int) -> int:
    return 2 * num_edges * BYTES_PER_INDEX


def transfer_bytes(num_nodes: int, feature_dim: int, num_edges: int,
                   include_structure: bool) -> int:
    """Serialized payload size of an intermediate state (before compression)."""
    payload = num_nodes * feature_dim * BYTES_PER_FEATURE
    if include_structure:
        payload += _structure_bytes(num_edges)
    return int(payload)


def trace_workloads(ops: Sequence[OpSpec], profile: DataProfile,
                    classifier_hidden: int = 64) -> List[OpWorkload]:
    """Derive per-operation workloads for ``ops`` executed on ``profile`` data.

    The returned list has one entry per operation in ``ops`` plus one final
    entry for the classifier.  Feature-dimension evolution mirrors the
    executable semantics: Aggregate doubles the width (centre ‖ difference
    message), Combine sets it to its channel count, ``max||mean`` pooling
    doubles it, pooling collapses the node count to one.
    """
    workloads: List[OpWorkload] = []
    num_nodes = profile.num_nodes
    dim = profile.feature_dim
    num_edges = profile.initial_edges if profile.has_edges else 0
    has_structure = profile.has_edges
    pooled = False

    for spec in ops:
        in_dim = dim
        if spec.op == OpType.SAMPLE:
            num_edges = num_nodes * spec.k
            has_structure = True
            out_dim = dim
        elif spec.op == OpType.AGGREGATE:
            out_dim = 2 * dim
        elif spec.op == OpType.COMBINE:
            out_dim = int(spec.function)
        elif spec.op == OpType.GLOBAL_POOL:
            out_dim = 2 * dim if spec.function == "max||mean" else dim
        else:  # identity / communicate keep the feature width
            out_dim = dim

        # Compute the post-op state used for the transfer-size bookkeeping.
        post_nodes = 1 if (pooled or spec.op == OpType.GLOBAL_POOL) else num_nodes
        post_edges = 0 if spec.op == OpType.GLOBAL_POOL or pooled else num_edges
        include_structure = has_structure and not pooled and spec.op != OpType.GLOBAL_POOL
        out_bytes = transfer_bytes(post_nodes, out_dim, post_edges, include_structure)

        workloads.append(OpWorkload(
            spec=spec, num_nodes=num_nodes, in_dim=in_dim, out_dim=out_dim,
            num_edges=num_edges, pooled=pooled, output_bytes=out_bytes))

        dim = out_dim
        if spec.op == OpType.GLOBAL_POOL:
            pooled = True
            num_nodes = 1
            num_edges = 0
            has_structure = False

    classifier_spec = OpSpec(OpType.CLASSIFIER, "mlp")
    classifier_nodes = 1 if pooled else num_nodes
    workloads.append(OpWorkload(
        spec=classifier_spec, num_nodes=classifier_nodes, in_dim=dim,
        out_dim=profile.num_classes, num_edges=0, pooled=pooled,
        output_bytes=transfer_bytes(classifier_nodes, profile.num_classes, 0, False)))
    return workloads


def input_bytes(profile: DataProfile) -> int:
    """Serialized size of the raw input frame (what Edge-Only mode uploads)."""
    return transfer_bytes(profile.num_nodes, profile.feature_dim,
                          profile.initial_edges if profile.has_edges else 0,
                          profile.has_edges)
