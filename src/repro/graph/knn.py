"""K-nearest-neighbour graph construction.

DGCNN and the GCoDE design space rebuild the graph dynamically from node
features at every ``Sample`` operation; this module provides the batched KNN
used for that (``knn_graph``) together with a plain pairwise variant.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def pairwise_sq_distances(points: np.ndarray) -> np.ndarray:
    """Dense matrix of squared Euclidean distances between rows of ``points``."""
    points = np.asarray(points, dtype=np.float64)
    sq_norms = (points ** 2).sum(axis=1)
    dists = sq_norms[:, None] + sq_norms[None, :] - 2.0 * points @ points.T
    return np.maximum(dists, 0.0)


def knn_indices(points: np.ndarray, k: int, exclude_self: bool = True) -> np.ndarray:
    """Return the indices of the ``k`` nearest neighbours of each row.

    Output shape is ``(num_points, k)``.  When fewer than ``k`` neighbours
    exist the available ones are repeated to keep a rectangular result, which
    mirrors how fixed-k GNN operators behave on tiny graphs.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n == 0:
        return np.zeros((0, k), dtype=np.int64)
    if k <= 0:
        raise ValueError("k must be positive")
    dists = pairwise_sq_distances(points)
    if exclude_self:
        np.fill_diagonal(dists, np.inf)
    available = n - 1 if exclude_self else n
    effective_k = min(k, max(available, 1))
    if effective_k >= n:
        neighbour_order = np.argsort(dists, axis=1)[:, :effective_k]
    else:
        # Selecting the k nearest is O(n) per row via argpartition; only the
        # selected slice is then sorted by distance (O(k log k)) so the edge
        # list keeps the nearest-first ordering a full argsort would give.
        # This is the device-side hot path: Sample ops rebuild the graph
        # every frame, and a full O(n log n) row sort dominated them.
        nearest = np.argpartition(dists, effective_k - 1, axis=1)[:, :effective_k]
        rows = np.arange(n)[:, None]
        order_within = np.argsort(dists[rows, nearest], axis=1)
        neighbour_order = nearest[rows, order_within]
    if effective_k < k:
        repeats = np.tile(neighbour_order, (1, int(np.ceil(k / effective_k))))
        neighbour_order = repeats[:, :k]
    return neighbour_order.astype(np.int64)


def knn_graph(points: np.ndarray, k: int,
              batch: Optional[np.ndarray] = None) -> np.ndarray:
    """Build a directed KNN edge index (neighbours → centre node).

    Parameters
    ----------
    points:
        ``(N, D)`` coordinates or feature rows.
    k:
        Number of neighbours per node.
    batch:
        Optional node-to-graph assignment; edges never cross graphs.

    Returns
    -------
    np.ndarray
        Edge index of shape ``(2, N * k)`` where row 0 holds neighbour
        (source) indices and row 1 holds centre (destination) indices.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n == 0:
        return np.zeros((2, 0), dtype=np.int64)
    if batch is None:
        neighbours = knn_indices(points, k)
        centres = np.repeat(np.arange(n, dtype=np.int64), neighbours.shape[1])
        return np.stack([neighbours.reshape(-1), centres], axis=0)

    batch = np.asarray(batch, dtype=np.int64)
    vectorized = _knn_graph_equal_sizes(points, k, batch)
    if vectorized is not None:
        return vectorized
    sources = []
    targets = []
    for graph_id in np.unique(batch):
        node_ids = np.nonzero(batch == graph_id)[0]
        local = knn_indices(points[node_ids], k)
        neighbours = node_ids[local]
        centres = np.repeat(node_ids, local.shape[1])
        sources.append(neighbours.reshape(-1))
        targets.append(centres)
    return np.stack([np.concatenate(sources), np.concatenate(targets)], axis=0)


def grouped_knn_distances(grouped: np.ndarray) -> np.ndarray:
    """Self-excluded squared distances for a ``(G, n, D)`` group of graphs.

    Shared by the eager batched builder below and the compiled runtime's
    selection-only kNN (:func:`repro.runtime.kernels.knn_edges_uniform`):
    the two *must* rank distances bit-for-bit identically — the compiled
    runtime's equivalence guarantee is that it selects the same neighbour
    sets as eager execution, and any formula drift would silently flip
    near-tied selections.  Keep this the single definition.
    """
    sq_norms = (grouped ** 2).sum(axis=2)
    dists = (sq_norms[:, :, None] + sq_norms[:, None, :]
             - 2.0 * grouped @ grouped.transpose(0, 2, 1))
    diagonal = np.arange(grouped.shape[1])
    dists[:, diagonal, diagonal] = np.inf  # exclude self-edges
    return dists


def _knn_graph_equal_sizes(points: np.ndarray, k: int,
                           batch: np.ndarray) -> Optional[np.ndarray]:
    """Vectorized batched KNN when every graph has the same node count.

    Point-cloud batches — mini-batches in training and micro-batches
    coalesced by the serving engine — are disjoint unions of equally sized
    clouds with a sorted batch vector.  Instead of looping graphs in Python,
    the points then reshape to ``(G, n, D)`` and one 3-D distance/top-k pass
    covers the whole batch, which is what makes a batched engine call
    genuinely cheaper than per-frame calls.  Returns ``None`` when the batch
    is not sorted-contiguous with equal sizes (the caller falls back to the
    per-graph loop).
    """
    if batch.size == 0 or batch[0] != 0 or np.any(np.diff(batch) < 0):
        return None
    counts = np.bincount(batch)
    per_graph = int(counts[0])
    if per_graph == 0 or np.any(counts != per_graph):
        return None
    num_graphs = counts.shape[0]
    grouped = points.reshape(num_graphs, per_graph, -1)
    dists = grouped_knn_distances(grouped)
    effective_k = min(k, max(per_graph - 1, 1))
    if effective_k >= per_graph:
        local = np.argsort(dists, axis=2)[:, :, :effective_k]
    else:
        local = np.argpartition(dists, effective_k - 1, axis=2)[:, :, :effective_k]
        order = np.argsort(np.take_along_axis(dists, local, axis=2), axis=2)
        local = np.take_along_axis(local, order, axis=2)
    if effective_k < k:
        local = np.tile(local, (1, 1, int(np.ceil(k / effective_k))))[:, :, :k]
    offsets = (np.arange(num_graphs, dtype=np.int64) * per_graph)[:, None, None]
    neighbours = (local + offsets).reshape(-1)
    centres = np.repeat(np.arange(batch.shape[0], dtype=np.int64), k)
    return np.stack([neighbours, centres], axis=0)


def random_graph(num_nodes: int, k: int,
                 rng: Optional[np.random.Generator] = None,
                 batch: Optional[np.ndarray] = None) -> np.ndarray:
    """Random k-regular-ish directed graph used by the ``Sample(random)`` function.

    Each node receives ``k`` incoming edges from uniformly sampled other nodes
    of the same graph (self edges excluded when possible).
    """
    rng = rng or np.random.default_rng()
    if num_nodes == 0:
        return np.zeros((2, 0), dtype=np.int64)
    if batch is None:
        batch = np.zeros(num_nodes, dtype=np.int64)
    batch = np.asarray(batch, dtype=np.int64)
    sources = []
    targets = []
    for graph_id in np.unique(batch):
        node_ids = np.nonzero(batch == graph_id)[0]
        size = node_ids.shape[0]
        for node in node_ids:
            if size > 1:
                candidates = node_ids[node_ids != node]
            else:
                candidates = node_ids
            picks = rng.choice(candidates, size=k, replace=candidates.shape[0] < k)
            sources.append(picks)
            targets.append(np.full(k, node, dtype=np.int64))
    return np.stack([np.concatenate(sources), np.concatenate(targets)], axis=0)
