"""K-nearest-neighbour graph construction.

DGCNN and the GCoDE design space rebuild the graph dynamically from node
features at every ``Sample`` operation; this module provides the batched KNN
used for that (``knn_graph``) together with a plain pairwise variant.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def pairwise_sq_distances(points: np.ndarray) -> np.ndarray:
    """Dense matrix of squared Euclidean distances between rows of ``points``."""
    points = np.asarray(points, dtype=np.float64)
    sq_norms = (points ** 2).sum(axis=1)
    dists = sq_norms[:, None] + sq_norms[None, :] - 2.0 * points @ points.T
    return np.maximum(dists, 0.0)


def knn_indices(points: np.ndarray, k: int, exclude_self: bool = True) -> np.ndarray:
    """Return the indices of the ``k`` nearest neighbours of each row.

    Output shape is ``(num_points, k)``.  When fewer than ``k`` neighbours
    exist the available ones are repeated to keep a rectangular result, which
    mirrors how fixed-k GNN operators behave on tiny graphs.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n == 0:
        return np.zeros((0, k), dtype=np.int64)
    if k <= 0:
        raise ValueError("k must be positive")
    dists = pairwise_sq_distances(points)
    if exclude_self:
        np.fill_diagonal(dists, np.inf)
    available = n - 1 if exclude_self else n
    effective_k = min(k, max(available, 1))
    neighbour_order = np.argsort(dists, axis=1)[:, :effective_k]
    if effective_k < k:
        repeats = np.tile(neighbour_order, (1, int(np.ceil(k / effective_k))))
        neighbour_order = repeats[:, :k]
    return neighbour_order.astype(np.int64)


def knn_graph(points: np.ndarray, k: int,
              batch: Optional[np.ndarray] = None) -> np.ndarray:
    """Build a directed KNN edge index (neighbours → centre node).

    Parameters
    ----------
    points:
        ``(N, D)`` coordinates or feature rows.
    k:
        Number of neighbours per node.
    batch:
        Optional node-to-graph assignment; edges never cross graphs.

    Returns
    -------
    np.ndarray
        Edge index of shape ``(2, N * k)`` where row 0 holds neighbour
        (source) indices and row 1 holds centre (destination) indices.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n == 0:
        return np.zeros((2, 0), dtype=np.int64)
    if batch is None:
        neighbours = knn_indices(points, k)
        centres = np.repeat(np.arange(n, dtype=np.int64), neighbours.shape[1])
        return np.stack([neighbours.reshape(-1), centres], axis=0)

    batch = np.asarray(batch, dtype=np.int64)
    sources = []
    targets = []
    for graph_id in np.unique(batch):
        node_ids = np.nonzero(batch == graph_id)[0]
        local = knn_indices(points[node_ids], k)
        neighbours = node_ids[local]
        centres = np.repeat(node_ids, local.shape[1])
        sources.append(neighbours.reshape(-1))
        targets.append(centres)
    return np.stack([np.concatenate(sources), np.concatenate(targets)], axis=0)


def random_graph(num_nodes: int, k: int,
                 rng: Optional[np.random.Generator] = None,
                 batch: Optional[np.ndarray] = None) -> np.ndarray:
    """Random k-regular-ish directed graph used by the ``Sample(random)`` function.

    Each node receives ``k`` incoming edges from uniformly sampled other nodes
    of the same graph (self edges excluded when possible).
    """
    rng = rng or np.random.default_rng()
    if num_nodes == 0:
        return np.zeros((2, 0), dtype=np.int64)
    if batch is None:
        batch = np.zeros(num_nodes, dtype=np.int64)
    batch = np.asarray(batch, dtype=np.int64)
    sources = []
    targets = []
    for graph_id in np.unique(batch):
        node_ids = np.nonzero(batch == graph_id)[0]
        size = node_ids.shape[0]
        for node in node_ids:
            if size > 1:
                candidates = node_ids[node_ids != node]
            else:
                candidates = node_ids
            picks = rng.choice(candidates, size=k, replace=candidates.shape[0] < k)
            sources.append(picks)
            targets.append(np.full(k, node, dtype=np.int64))
    return np.stack([np.concatenate(sources), np.concatenate(targets)], axis=0)
