"""Synthetic datasets standing in for the paper's ModelNet40 and MR benchmarks."""

from .modelnet import SyntheticModelNet40
from .mr import SyntheticMR
from .splits import DataSplit, stratified_split

__all__ = ["SyntheticModelNet40", "SyntheticMR", "DataSplit", "stratified_split"]
