"""Synthetic stand-in for the MR (Movie Review) text-graph dataset.

The real MR dataset used by the paper (following "Every Document Owns Its
Structure", ACL 2020) turns each movie review into a small word co-occurrence
graph: on average ~17 nodes per document with 300-dimensional word embeddings
and a binary sentiment label.  This module generates synthetic documents that
match that regime — few nodes, wide features — which is what drives the
distinct hardware behaviour the paper reports for MR (Combine dominates on
CPUs, Fig. 3).

Generation model: a shared "vocabulary" of word embeddings is sampled once;
two sentiment classes are associated with different mixtures over latent
topics, and each document samples its words from its class mixture and
connects words that co-occur within a sliding window.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..data import GraphData

NUM_CLASSES = 2
FEATURE_DIM = 300
MEAN_NODES = 17


class SyntheticMR:
    """Synthetic sentiment-classification dataset over small word graphs.

    Parameters
    ----------
    num_documents:
        Total number of document graphs (split evenly between the 2 classes).
    feature_dim:
        Word-embedding dimensionality (300 in the paper's setting).
    mean_nodes:
        Average number of word nodes per document (~17 in MR).
    vocab_size:
        Size of the shared synthetic vocabulary.
    num_topics:
        Number of latent topics; class separation comes from distinct topic
        mixtures, so difficulty can be tuned via ``class_separation``.
    class_separation:
        How far apart the two class topic-mixtures are (larger = easier).
    seed:
        Seed for vocabulary and document generation.
    """

    name = "mr"

    def __init__(self, num_documents: int = 200, feature_dim: int = FEATURE_DIM,
                 mean_nodes: int = MEAN_NODES, vocab_size: int = 400,
                 num_topics: int = 8, class_separation: float = 2.0,
                 window: int = 3, seed: int = 0) -> None:
        if num_documents < 2:
            raise ValueError("need at least one document per class")
        if mean_nodes < 4:
            raise ValueError("mean_nodes must be at least 4")
        self.num_documents = num_documents
        self.feature_dim = feature_dim
        self.mean_nodes = mean_nodes
        self.vocab_size = vocab_size
        self.num_topics = num_topics
        self.class_separation = class_separation
        self.window = window
        self.seed = seed
        self.num_classes = NUM_CLASSES
        self._graphs: Optional[List[GraphData]] = None

    # ------------------------------------------------------------------
    def _build_vocabulary(self, rng: np.random.Generator) -> tuple:
        """Sample word embeddings and per-topic word distributions."""
        topic_centres = rng.standard_normal((self.num_topics, self.feature_dim))
        word_topics = rng.integers(self.num_topics, size=self.vocab_size)
        embeddings = (topic_centres[word_topics]
                      + 0.5 * rng.standard_normal((self.vocab_size, self.feature_dim)))
        return embeddings, word_topics

    def _class_mixtures(self, rng: np.random.Generator) -> np.ndarray:
        """Topic mixture per class; separation controls overlap."""
        base = rng.dirichlet(np.ones(self.num_topics), size=NUM_CLASSES)
        tilt = np.zeros((NUM_CLASSES, self.num_topics))
        half = self.num_topics // 2
        tilt[0, :half] = self.class_separation
        tilt[1, half:] = self.class_separation
        mixtures = base + tilt
        return mixtures / mixtures.sum(axis=1, keepdims=True)

    @staticmethod
    def _window_edges(num_nodes: int, window: int) -> np.ndarray:
        """Co-occurrence edges connecting words within ``window`` positions."""
        sources, targets = [], []
        for i in range(num_nodes):
            for j in range(max(0, i - window), min(num_nodes, i + window + 1)):
                if i != j:
                    sources.append(j)
                    targets.append(i)
        if not sources:
            return np.zeros((2, 0), dtype=np.int64)
        return np.stack([np.asarray(sources, dtype=np.int64),
                         np.asarray(targets, dtype=np.int64)], axis=0)

    # ------------------------------------------------------------------
    def generate(self) -> List[GraphData]:
        """Generate (and cache) the document graphs."""
        if self._graphs is not None:
            return self._graphs
        rng = np.random.default_rng(self.seed)
        embeddings, word_topics = self._build_vocabulary(rng)
        mixtures = self._class_mixtures(rng)
        topic_words = [np.nonzero(word_topics == t)[0] for t in range(self.num_topics)]

        graphs: List[GraphData] = []
        for doc_id in range(self.num_documents):
            label = doc_id % NUM_CLASSES
            num_nodes = max(4, int(rng.poisson(self.mean_nodes)))
            topics = rng.choice(self.num_topics, size=num_nodes, p=mixtures[label])
            words = np.empty(num_nodes, dtype=np.int64)
            for i, topic in enumerate(topics):
                candidates = topic_words[topic]
                if candidates.size == 0:
                    candidates = np.arange(self.vocab_size)
                words[i] = rng.choice(candidates)
            features = embeddings[words] + 0.1 * rng.standard_normal(
                (num_nodes, self.feature_dim))
            edge_index = self._window_edges(num_nodes, self.window)
            graphs.append(GraphData(x=features, edge_index=edge_index, y=label))
        self._graphs = graphs
        return graphs

    def __len__(self) -> int:
        return self.num_documents

    def describe(self) -> dict:
        """Summary metadata used by examples and benchmark reports."""
        return {
            "name": self.name,
            "num_classes": self.num_classes,
            "num_documents": self.num_documents,
            "mean_nodes": self.mean_nodes,
            "feature_dim": self.feature_dim,
        }
