"""Deterministic train/validation/test splitting of graph datasets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..data import GraphData


@dataclass
class DataSplit:
    """Container holding the three partitions of a dataset."""

    train: List[GraphData]
    val: List[GraphData]
    test: List[GraphData]

    def sizes(self) -> Tuple[int, int, int]:
        return len(self.train), len(self.val), len(self.test)


def stratified_split(graphs: Sequence[GraphData], train_fraction: float = 0.7,
                     val_fraction: float = 0.15, seed: int = 0) -> DataSplit:
    """Split graphs into train/val/test preserving per-class proportions.

    The remainder after train and validation fractions becomes the test set.
    Every class is guaranteed at least one training example when it has any
    examples at all.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if not 0.0 <= val_fraction < 1.0 or train_fraction + val_fraction >= 1.0:
        raise ValueError("train_fraction + val_fraction must be < 1")
    rng = np.random.default_rng(seed)
    labels = np.asarray([g.y if g.y is not None else -1 for g in graphs])
    train: List[GraphData] = []
    val: List[GraphData] = []
    test: List[GraphData] = []
    for cls in np.unique(labels):
        indices = np.nonzero(labels == cls)[0]
        rng.shuffle(indices)
        n = indices.shape[0]
        n_train = max(1, int(round(train_fraction * n)))
        n_val = int(round(val_fraction * n))
        n_train = min(n_train, n)
        n_val = min(n_val, n - n_train)
        train.extend(graphs[i] for i in indices[:n_train])
        val.extend(graphs[i] for i in indices[n_train:n_train + n_val])
        test.extend(graphs[i] for i in indices[n_train + n_val:])
    return DataSplit(train=train, val=val, test=test)
