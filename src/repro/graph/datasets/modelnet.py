"""Synthetic stand-in for the ModelNet40 point-cloud benchmark.

The real ModelNet40 dataset (Wu et al., CVPR 2015) consists of CAD meshes of
40 object categories sampled to 1024-point clouds.  It is not available
offline, so this module procedurally generates point clouds from a bank of
parametric 3-D primitives (sphere, box, cylinder, cone, torus, plane, helix,
...) whose shape parameters are drawn from class-specific distributions.
Each of the 40 synthetic classes is a unique (primitive, parameter-range)
combination, so a GNN genuinely has to learn geometric structure to separate
them — which preserves the property the paper relies on: classification
accuracy responds to architecture choices, and the input tensor shapes
(``num_points × 3``) match the real benchmark, keeping the computation /
communication profile of Fig. 2 intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..data import GraphData

NUM_CLASSES = 40
DEFAULT_NUM_POINTS = 1024
FEATURE_DIM = 3

_PRIMITIVES = ("sphere", "ellipsoid", "box", "cylinder", "cone", "torus",
               "plane", "helix")


def _unit_sphere(rng: np.random.Generator, n: int) -> np.ndarray:
    vec = rng.standard_normal((n, 3))
    vec /= np.linalg.norm(vec, axis=1, keepdims=True) + 1e-12
    return vec


def _primitive_cloud(primitive: str, params: np.ndarray,
                     rng: np.random.Generator, n: int) -> np.ndarray:
    """Sample ``n`` surface points from a parametric primitive."""
    a, b, c = params
    if primitive == "sphere":
        return a * _unit_sphere(rng, n)
    if primitive == "ellipsoid":
        return _unit_sphere(rng, n) * np.array([a, b, c])
    if primitive == "box":
        points = rng.uniform(-1.0, 1.0, size=(n, 3)) * np.array([a, b, c])
        # Push each point onto the nearest face so the cloud is a surface.
        face_axis = np.argmax(np.abs(points) / np.array([a, b, c]), axis=1)
        signs = np.sign(points[np.arange(n), face_axis])
        points[np.arange(n), face_axis] = signs * np.array([a, b, c])[face_axis]
        return points
    if primitive == "cylinder":
        theta = rng.uniform(0, 2 * np.pi, n)
        z = rng.uniform(-c, c, n)
        return np.stack([a * np.cos(theta), a * np.sin(theta), z], axis=1)
    if primitive == "cone":
        t = rng.uniform(0, 1, n)
        theta = rng.uniform(0, 2 * np.pi, n)
        radius = a * (1 - t)
        return np.stack([radius * np.cos(theta), radius * np.sin(theta),
                         c * t], axis=1)
    if primitive == "torus":
        theta = rng.uniform(0, 2 * np.pi, n)
        phi = rng.uniform(0, 2 * np.pi, n)
        x = (a + b * np.cos(phi)) * np.cos(theta)
        y = (a + b * np.cos(phi)) * np.sin(theta)
        z = b * np.sin(phi)
        return np.stack([x, y, z], axis=1)
    if primitive == "plane":
        points = rng.uniform(-1.0, 1.0, size=(n, 2)) * np.array([a, b])
        ripple = c * np.sin(2.0 * points[:, 0]) * np.cos(2.0 * points[:, 1])
        return np.stack([points[:, 0], points[:, 1], ripple], axis=1)
    if primitive == "helix":
        t = rng.uniform(0, 4 * np.pi, n)
        jitter = 0.05 * rng.standard_normal((n, 3))
        return np.stack([a * np.cos(t), a * np.sin(t), c * t / (4 * np.pi)],
                        axis=1) + jitter
    raise ValueError(f"unknown primitive {primitive!r}")


@dataclass
class ClassSpec:
    """Shape recipe for one synthetic ModelNet class."""

    primitive: str
    param_low: np.ndarray
    param_high: np.ndarray
    noise: float

    def sample_params(self, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.param_low, self.param_high)


def _build_class_specs(seed: int) -> List[ClassSpec]:
    """Deterministically derive 40 class recipes from ``seed``."""
    rng = np.random.default_rng(seed)
    specs: List[ClassSpec] = []
    for class_id in range(NUM_CLASSES):
        primitive = _PRIMITIVES[class_id % len(_PRIMITIVES)]
        base = 0.4 + 0.15 * (class_id // len(_PRIMITIVES))
        low = base + rng.uniform(0.0, 0.1, size=3)
        high = low + rng.uniform(0.1, 0.3, size=3)
        specs.append(ClassSpec(primitive=primitive, param_low=low,
                               param_high=high,
                               noise=0.01 + 0.002 * (class_id % 5)))
    return specs


def normalize_cloud(points: np.ndarray) -> np.ndarray:
    """Centre the cloud and scale it into the unit sphere (ModelNet convention)."""
    points = points - points.mean(axis=0, keepdims=True)
    scale = np.max(np.linalg.norm(points, axis=1))
    return points / (scale + 1e-12)


class SyntheticModelNet40:
    """Procedural point-cloud classification dataset with 40 classes.

    Parameters
    ----------
    num_points:
        Points per cloud (the paper uses 1024; tests use fewer for speed).
    samples_per_class:
        Clouds generated per class.
    num_classes:
        Number of classes to include (≤ 40); lowering it speeds up tests
        without changing the data distribution of the retained classes.
    seed:
        Seed controlling both the class recipes and the sampled clouds.
    """

    name = "modelnet40"

    def __init__(self, num_points: int = DEFAULT_NUM_POINTS,
                 samples_per_class: int = 20, num_classes: int = NUM_CLASSES,
                 seed: int = 0) -> None:
        if not 2 <= num_classes <= NUM_CLASSES:
            raise ValueError(f"num_classes must be in [2, {NUM_CLASSES}]")
        if num_points < 8:
            raise ValueError("num_points must be at least 8")
        self.num_points = num_points
        self.samples_per_class = samples_per_class
        self.num_classes = num_classes
        self.seed = seed
        self._specs = _build_class_specs(seed)[:num_classes]
        self._graphs: Optional[List[GraphData]] = None

    def generate(self) -> List[GraphData]:
        """Generate (and cache) the full list of graphs."""
        if self._graphs is not None:
            return self._graphs
        rng = np.random.default_rng(self.seed + 1)
        graphs: List[GraphData] = []
        for class_id, spec in enumerate(self._specs):
            for _ in range(self.samples_per_class):
                params = spec.sample_params(rng)
                cloud = _primitive_cloud(spec.primitive, params, rng,
                                         self.num_points)
                cloud = cloud + spec.noise * rng.standard_normal(cloud.shape)
                cloud = normalize_cloud(cloud)
                graphs.append(GraphData(x=cloud, pos=cloud, y=class_id))
        self._graphs = graphs
        return graphs

    def __len__(self) -> int:
        return self.num_classes * self.samples_per_class

    @property
    def feature_dim(self) -> int:
        return FEATURE_DIM

    def describe(self) -> dict:
        """Summary metadata used by examples and benchmark reports."""
        return {
            "name": self.name,
            "num_classes": self.num_classes,
            "num_points": self.num_points,
            "samples_per_class": self.samples_per_class,
            "feature_dim": self.feature_dim,
        }
