"""Graph data containers.

:class:`GraphData` stores a single attributed graph (node features, COO edge
index, optional positions and a graph-level label).  :class:`Batch` merges a
list of graphs into one disjoint-union graph — the standard trick used by
PyTorch Geometric — so that message passing over a mini-batch is a single
vectorized operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np


@dataclass
class GraphData:
    """A single attributed graph.

    Attributes
    ----------
    x:
        Node feature matrix of shape ``(num_nodes, num_features)``.
    edge_index:
        COO edge index of shape ``(2, num_edges)`` with ``edge_index[0]`` the
        source and ``edge_index[1]`` the destination of each edge (messages
        flow source → destination).
    y:
        Optional graph-level integer label.
    pos:
        Optional node positions (used for point clouds; when present, KNN
        graph construction operates on ``pos`` rather than ``x``).
    """

    x: np.ndarray
    edge_index: Optional[np.ndarray] = None
    y: Optional[int] = None
    pos: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        if self.x.ndim != 2:
            raise ValueError(f"node features must be 2-D, got shape {self.x.shape}")
        if self.edge_index is not None:
            self.edge_index = np.asarray(self.edge_index, dtype=np.int64)
            if self.edge_index.ndim != 2 or self.edge_index.shape[0] != 2:
                raise ValueError("edge_index must have shape (2, num_edges)")
            if self.edge_index.size and self.edge_index.max() >= self.num_nodes:
                raise ValueError("edge_index refers to a node that does not exist")
        if self.pos is not None:
            self.pos = np.asarray(self.pos, dtype=np.float64)
            if self.pos.shape[0] != self.x.shape[0]:
                raise ValueError("pos must have one row per node")

    @property
    def num_nodes(self) -> int:
        return int(self.x.shape[0])

    @property
    def num_edges(self) -> int:
        return 0 if self.edge_index is None else int(self.edge_index.shape[1])

    @property
    def num_features(self) -> int:
        return int(self.x.shape[1])

    def copy(self) -> "GraphData":
        """Deep copy of the graph."""
        return GraphData(
            x=self.x.copy(),
            edge_index=None if self.edge_index is None else self.edge_index.copy(),
            y=self.y,
            pos=None if self.pos is None else self.pos.copy(),
        )

    def nbytes(self) -> int:
        """Approximate serialized size in bytes (used by the transfer model)."""
        total = self.x.nbytes
        if self.edge_index is not None:
            total += self.edge_index.nbytes
        if self.pos is not None:
            total += self.pos.nbytes
        return int(total)


class Batch:
    """Disjoint union of several graphs with a node-to-graph assignment vector."""

    def __init__(self, x: np.ndarray, edge_index: Optional[np.ndarray],
                 batch: np.ndarray, y: Optional[np.ndarray] = None,
                 pos: Optional[np.ndarray] = None, num_graphs: int = 1) -> None:
        self.x = np.asarray(x, dtype=np.float64)
        self.edge_index = None if edge_index is None else np.asarray(edge_index, dtype=np.int64)
        self.batch = np.asarray(batch, dtype=np.int64)
        self.y = None if y is None else np.asarray(y, dtype=np.int64)
        self.pos = None if pos is None else np.asarray(pos, dtype=np.float64)
        self.num_graphs = int(num_graphs)
        if self.batch.shape[0] != self.x.shape[0]:
            raise ValueError("batch vector must have one entry per node")

    @classmethod
    def from_graphs(cls, graphs: Sequence[GraphData]) -> "Batch":
        """Merge a list of :class:`GraphData` into one batched graph."""
        if not graphs:
            raise ValueError("cannot batch an empty list of graphs")
        xs: List[np.ndarray] = []
        poss: List[np.ndarray] = []
        edges: List[np.ndarray] = []
        batch_vec: List[np.ndarray] = []
        labels: List[int] = []
        offset = 0
        has_pos = all(g.pos is not None for g in graphs)
        has_edges = all(g.edge_index is not None for g in graphs)
        for graph_id, graph in enumerate(graphs):
            xs.append(graph.x)
            if has_pos:
                poss.append(graph.pos)
            if has_edges:
                edges.append(graph.edge_index + offset)
            batch_vec.append(np.full(graph.num_nodes, graph_id, dtype=np.int64))
            labels.append(-1 if graph.y is None else int(graph.y))
            offset += graph.num_nodes
        return cls(
            x=np.concatenate(xs, axis=0),
            edge_index=np.concatenate(edges, axis=1) if has_edges else None,
            batch=np.concatenate(batch_vec),
            y=np.asarray(labels, dtype=np.int64),
            pos=np.concatenate(poss, axis=0) if has_pos else None,
            num_graphs=len(graphs),
        )

    @property
    def num_nodes(self) -> int:
        return int(self.x.shape[0])

    @property
    def num_edges(self) -> int:
        return 0 if self.edge_index is None else int(self.edge_index.shape[1])

    @property
    def num_features(self) -> int:
        return int(self.x.shape[1])

    def nodes_per_graph(self) -> np.ndarray:
        """Number of nodes in each graph of the batch."""
        return np.bincount(self.batch, minlength=self.num_graphs)


class DataLoader:
    """Mini-batch iterator over a list of :class:`GraphData`.

    Shuffling uses a dedicated generator so epochs are reproducible for a
    fixed seed regardless of global numpy state.
    """

    def __init__(self, graphs: Sequence[GraphData], batch_size: int = 32,
                 shuffle: bool = False, seed: int = 0,
                 drop_last: bool = False) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.graphs = list(graphs)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        full, rem = divmod(len(self.graphs), self.batch_size)
        if self.drop_last or rem == 0:
            return full
        return full + 1

    def __iter__(self) -> Iterable[Batch]:
        order = np.arange(len(self.graphs))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            chunk = order[start:start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                break
            yield Batch.from_graphs([self.graphs[i] for i in chunk])
