"""Graph data substrate: containers, KNN graph construction, sampling, datasets."""

from .data import GraphData, Batch, DataLoader
from .knn import knn_graph, knn_indices, random_graph, pairwise_sq_distances
from .sampling import random_sample, farthest_point_sample, subsample_graph_nodes
from .datasets import SyntheticModelNet40, SyntheticMR, DataSplit, stratified_split

__all__ = [
    "GraphData", "Batch", "DataLoader",
    "knn_graph", "knn_indices", "random_graph", "pairwise_sq_distances",
    "random_sample", "farthest_point_sample", "subsample_graph_nodes",
    "SyntheticModelNet40", "SyntheticMR", "DataSplit", "stratified_split",
]
