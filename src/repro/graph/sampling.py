"""Point / node sampling utilities.

Point-cloud GNN pipelines down-sample the input cloud (farthest point or
random sampling) before building the KNN graph; these helpers provide both
strategies on plain numpy arrays.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def random_sample(num_points: int, num_samples: int,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Pick ``num_samples`` distinct indices uniformly at random.

    When ``num_samples >= num_points`` all indices are returned (in order).
    """
    if num_points <= 0:
        return np.zeros(0, dtype=np.int64)
    rng = rng or np.random.default_rng()
    if num_samples >= num_points:
        return np.arange(num_points, dtype=np.int64)
    return np.sort(rng.choice(num_points, size=num_samples, replace=False)).astype(np.int64)


def farthest_point_sample(points: np.ndarray, num_samples: int,
                          rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Greedy farthest-point sampling of ``num_samples`` rows of ``points``.

    Starts from a random seed point and repeatedly adds the point farthest
    from the already-selected set — the standard FPS used in point-cloud
    networks to preserve coverage of the shape.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if num_samples >= n:
        return np.arange(n, dtype=np.int64)
    rng = rng or np.random.default_rng()
    selected = np.empty(num_samples, dtype=np.int64)
    selected[0] = rng.integers(n)
    min_dist = ((points - points[selected[0]]) ** 2).sum(axis=1)
    for i in range(1, num_samples):
        selected[i] = int(np.argmax(min_dist))
        new_dist = ((points - points[selected[i]]) ** 2).sum(axis=1)
        min_dist = np.minimum(min_dist, new_dist)
    return np.sort(selected)


def subsample_graph_nodes(num_nodes: int, ratio: float,
                          rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Sample ``ceil(ratio * num_nodes)`` node indices uniformly at random."""
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    num_samples = max(1, int(np.ceil(ratio * num_nodes)))
    return random_sample(num_nodes, num_samples, rng=rng)
