"""Post-training quantization support for compiled plans.

Scheme (symmetric, zero-point 0 throughout — the dataclasses still carry a
``zero_point`` field so serialized calibrations are schema-complete):

* **Weights** (Combine / classifier linears): per-output-channel scales,
  ``scale[j] = max|W[:, j]| / 127``, quantized once per parameter version
  (plans resolve weights at call time, so ``load_state_dict`` re-quantizes
  automatically — see ``_QuantParamRef`` in :mod:`repro.runtime.plan`).
* **Activations**: one static per-tensor scale per plan step, derived from
  the amax each step produced while running the *float* plan over sample
  frames (:func:`calibrate`).  Static scales keep serving allocation-free
  and make replicas deterministic; the accuracy delta against the float
  path is gated by tests and the precision benchmark.

Calibration keys are the plan steps' arena slot tuples, which are a pure
function of the architecture — so a calibration taken from the float32 plan
aligns exactly with the quantized plan compiled afterwards, and two
processes compiling the same entry from the same frames get bit-identical
scales.  That determinism is what lets shard workers and cluster nodes
rebuild quantized entries from config alone (see
:func:`synthetic_calibration_frames`) and still match the parent process
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graph.data import Batch, GraphData
from ..graph.knn import knn_graph
from .kernels import QMAX_INT8

#: Precision names accepted by ``RuntimeConfig.precision`` /
#: ``precision_policy``.  The float entries select the compiled compute &
#: wire dtype exactly like the legacy ``dtype`` knob; ``"int8"`` selects the
#: calibrated quantized path (float32 carrier on the wire).
PRECISION_FLOAT64 = "float64"
PRECISION_FLOAT32 = "float32"
PRECISION_INT8 = "int8"
PRECISIONS = (PRECISION_FLOAT64, PRECISION_FLOAT32, PRECISION_INT8)


def amax_to_scale(amax: float) -> float:
    """Symmetric scale for an observed absolute maximum (0 → harmless 1.0)."""
    amax = float(amax)
    if not np.isfinite(amax) or amax <= 0.0:
        return 1.0
    return amax / QMAX_INT8


def quantize_weight(weight: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Per-output-channel symmetric int8 quantization of a weight matrix.

    Returns ``(wq, scales)``: ``wq`` int8 with shape of ``weight``
    (``(in, out)``), ``scales`` float32 with one entry per output column,
    ``weight ≈ wq * scales``.  All-zero columns get scale 1.0 so nothing
    divides by zero.
    """
    scales = np.max(np.abs(weight), axis=0) / QMAX_INT8
    scales[scales == 0.0] = 1.0
    scales = scales.astype(np.float32)
    wq = np.clip(np.rint(weight / scales), -QMAX_INT8, QMAX_INT8)
    return wq.astype(np.int8), scales


@dataclass
class SegmentCalibration:
    """Observed activation ranges of one plan segment.

    ``step_amax`` maps each step's calibration key (its arena slot tuple) to
    the largest ``|x|`` the step emitted across the calibration frames;
    ``input_amax`` covers the segment's input itself (the entry-quantize
    scale).  ``zero_point`` is always 0 (symmetric scheme).
    """

    input_amax: float = 0.0
    step_amax: Dict[object, float] = field(default_factory=dict)
    zero_point: int = 0

    def observe_input(self, x: np.ndarray) -> None:
        if x.size:
            self.input_amax = max(self.input_amax,
                                  float(np.max(np.abs(x))))

    def observe_step(self, key: object, x: np.ndarray) -> None:
        if x.size and np.issubdtype(x.dtype, np.floating):
            amax = float(np.max(np.abs(x)))
            prev = self.step_amax.get(key, 0.0)
            if amax > prev:
                self.step_amax[key] = amax

    def scale_for(self, key: object, default_amax: float) -> float:
        return amax_to_scale(self.step_amax.get(key, default_amax))


@dataclass
class PlanCalibration:
    """Per-segment activation calibration of one model (see :func:`calibrate`)."""

    segments: Dict[str, SegmentCalibration] = field(default_factory=dict)
    num_frames: int = 0

    def segment(self, name: str) -> SegmentCalibration:
        try:
            return self.segments[name]
        except KeyError:
            raise ValueError(
                f"calibration does not cover plan segment {name!r} "
                f"(calibrated: {sorted(self.segments)}); re-run calibrate() "
                "with this segment included") from None


def synthetic_calibration_frames(in_dim: int, *, num_frames: int = 8,
                                 num_points: int = 64,
                                 seed: int = 0) -> List[Batch]:
    """Deterministic stand-in calibration frames for config-only rebuilds.

    Shard workers and cluster nodes rebuild repositories from serialized
    config — no sample data rides along — so quantized entries built there
    calibrate on these seeded synthetic frames, and because generation is
    deterministic every replica derives bit-identical scales (the shard /
    cluster equivalence guarantee for int8 entries).  For accuracy-critical
    deployments pass real sample frames to the builders instead; the
    distribution here (unit-normalized clouds, positions mirroring features
    for 3-D inputs, a kNN edge list for architectures that expect wire
    edges) only approximates real data.
    """
    if in_dim < 1:
        raise ValueError(f"in_dim must be positive, got {in_dim}")
    rng = np.random.default_rng(seed)
    frames: List[Batch] = []
    k = min(9, num_points - 1)
    for _ in range(max(1, int(num_frames))):
        x = rng.standard_normal((num_points, in_dim))
        radius = np.max(np.linalg.norm(x, axis=1))
        if radius > 0:
            x = x / radius
        pos = x if in_dim == 3 else None
        edges = knn_graph(pos if pos is not None else x, k) if k > 0 else None
        frames.append(Batch.from_graphs(
            [GraphData(x=x, edge_index=edges, pos=pos)]))
    return frames


def calibrate(model, frames: Sequence[Batch],
              segments: Sequence[str] = ("full", "device", "edge"),
              ) -> PlanCalibration:
    """Run the float32 plan over ``frames`` and record per-step activation amax.

    Compiles a float32 plan for the requested ``segments`` (raising
    :class:`~repro.runtime.plan.PlanCompileError` exactly where a quantized
    compile would), executes every frame with an observer hooked after each
    step, and returns the :class:`PlanCalibration` a subsequent
    ``compile_plan(..., calibration=...)`` consumes.  The edge segment is
    calibrated on the *device segment's outputs* — the same states it sees
    in serving — so its entry scale reflects wire data, not raw inputs.
    """
    from .plan import compile_plan  # deferred: plan imports this module

    if not frames:
        raise ValueError("calibration requires at least one sample frame")
    wanted = tuple(dict.fromkeys(segments))
    compile_segments = set(wanted)
    if "edge" in compile_segments:
        compile_segments.add("device")  # edge inputs come from device runs
    plan = compile_plan(model, dtype=np.float32,
                        segments=tuple(sorted(compile_segments)))
    calibration = PlanCalibration(num_frames=len(frames))
    recorders: Dict[int, SegmentCalibration] = {}
    for name in ("full", "device", "edge"):
        segment = getattr(plan, name)
        if segment is None:
            continue
        recorder = recorders.get(id(segment))
        if recorder is None:
            recorder = SegmentCalibration()
            recorders[id(segment)] = recorder
        calibration.segments[name] = recorder

    def observer_for(recorder: SegmentCalibration):
        def observer(step, run) -> None:
            key = getattr(step, "calib_key", None)
            if key is not None:
                recorder.observe_step(key, run.x)
        return observer

    full_rec = calibration.segments.get("full")
    device_rec = calibration.segments.get("device")
    edge_rec = calibration.segments.get("edge")
    for frame in frames:
        x32 = np.asarray(frame.x, dtype=np.float32)
        if "full" in calibration.segments and (plan.split is None
                                               or "full" in wanted):
            full_rec.observe_input(x32)
            plan.full.execute(frame.x, frame.batch, frame.num_graphs,
                              edge_index=frame.edge_index, pos=frame.pos,
                              observer=observer_for(full_rec))
        if plan.split is None or device_rec is None:
            continue  # aliased segments / only "full" requested: done
        device_rec.observe_input(x32)
        run = plan.device.execute(frame.x, frame.batch, frame.num_graphs,
                                  edge_index=frame.edge_index, pos=frame.pos,
                                  observer=observer_for(device_rec))
        if edge_rec is None:
            continue
        edge_x = np.array(run.x, copy=True)
        edge_rec.observe_input(edge_x)
        edge_edges = (None if run.edge_index is None
                      else np.array(run.edge_index, copy=True))
        edge_pos = None if run.pos is None else np.array(run.pos, copy=True)
        plan.edge.execute(edge_x, run.batch.copy(), run.num_graphs,
                          edge_index=edge_edges, pos=edge_pos,
                          pooled=run.pooled,
                          observer=observer_for(edge_rec))
    return calibration
