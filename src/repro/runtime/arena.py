"""Shape-keyed buffer arena for steady-state inference serving.

Eager execution allocates a fresh output array for every operation of every
frame.  Under steady-state serving the shapes repeat — fixed point-cloud
sizes, a fixed ``max_batch_size`` — so the compiled runtime instead writes
each step's output into a pre-allocated buffer owned by a
:class:`BufferArena` and reuses it on the next frame via ``out=``.

Aliasing contract
-----------------
Arena buffers are *internal* to one plan execution: anything a plan hands
back to its caller (wire states, logits) is copied out of the arena first,
so a result can never be silently overwritten by the next frame.  The tests
in ``tests/test_runtime_plans.py`` pin this down.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


class BufferArena:
    """Pool of pre-allocated ndarray buffers keyed by slot id.

    Each compiled plan step owns one or more integer *slots*; :meth:`take`
    returns the slot's buffer when its shape and dtype still match (the
    steady-state case) and reallocates otherwise.  The hit/allocation
    counters make buffer reuse observable — benchmarks and tests assert that
    steady-state serving stops allocating after the first frame.
    """

    def __init__(self) -> None:
        self._buffers: Dict[object, np.ndarray] = {}
        #: Buffers (re)allocated because the slot was empty or its shape or
        #: dtype changed.
        self.allocations = 0
        #: Requests served from an existing buffer without allocating.
        self.hits = 0
        #: Reallocations caused by a slot changing *dtype* — in a correctly
        #: slotted mixed-precision plan this stays 0 after warm-up (int8 and
        #: float buffers must live in distinct slots, never thrash one).
        self.retypes = 0

    def take(self, slot: object, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Return a writable ``(shape, dtype)`` buffer for ``slot``.

        The contents are uninitialized (or stale from the previous frame);
        every kernel writing into an arena buffer must fully overwrite it.
        """
        shape = tuple(int(dim) for dim in shape)
        dtype = np.dtype(dtype)
        buffer = self._buffers.get(slot)
        if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
            if buffer is not None and buffer.dtype != dtype:
                self.retypes += 1
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[slot] = buffer
            self.allocations += 1
        else:
            self.hits += 1
        return buffer

    def clear(self) -> None:
        """Drop every pooled buffer (e.g. before serving a new shape regime)."""
        self._buffers.clear()

    def dtype_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-dtype view of the pooled buffers: ``{dtype: {slots, nbytes}}``.

        Makes mixed-precision footprints observable — a quantized plan
        should show its bulk bytes under int8/int16 with only small float32
        entries (scales, logits), and the per-dtype slot counts let tests
        assert that precisions occupy disjoint slots instead of thrashing.
        """
        stats: Dict[str, Dict[str, int]] = {}
        for buffer in self._buffers.values():
            entry = stats.setdefault(buffer.dtype.name,
                                     {"slots": 0, "nbytes": 0})
            entry["slots"] += 1
            entry["nbytes"] += int(buffer.nbytes)
        return stats

    @property
    def num_buffers(self) -> int:
        return len(self._buffers)

    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return int(sum(buffer.nbytes for buffer in self._buffers.values()))
