"""Compiled inference runtime: autograd-free plans with buffer arenas.

The serving hot path of the co-inference engine does not need autograd —
every frame runs under ``no_grad`` — yet eager execution still pays for the
full :class:`~repro.nn.tensor.Tensor` machinery (graph-construction closures,
per-op allocations, per-scatter bookkeeping).  This package compiles an
:class:`~repro.core.executor.ArchitectureModel` once into a flat list of
raw-ndarray kernels (:func:`compile_plan`), reuses pre-allocated output
buffers across frames (:class:`BufferArena`) and canonicalizes edge lists so
scatters always hit the ``reduceat`` fast path.

Two orthogonal knobs extend the compiled path (see ``docs/architecture.md``,
"Precision & kernel backends"): plans can run **quantized** (int8 weights
and activations from post-training calibration — :func:`calibrate`,
:func:`compile_plan` with ``calibration=``) and every plan executes through
a pluggable :class:`KernelBackend` (numpy reference always available, an
optional numba JIT backend auto-detected via ``backend="auto"``).

See ``docs/architecture.md`` ("Runtime & plan compilation") for what fuses,
when the arena engages, and the dtype caveats.
"""

from .arena import BufferArena
from .backends import (KERNEL_BACKENDS, KernelBackend, available_backends,
                       numba_available, resolve_backend)
from .kernels import SegmentInfo, canonical_edge_order
from .plan import (InferencePlan, PlanCompileError, PlanRun, PlanSegment,
                   SEGMENTS, compile_plan)
from .quantize import (PRECISIONS, PlanCalibration, SegmentCalibration,
                       amax_to_scale, calibrate, quantize_weight,
                       synthetic_calibration_frames)

__all__ = [
    "BufferArena",
    "SegmentInfo", "canonical_edge_order",
    "KERNEL_BACKENDS", "KernelBackend", "available_backends",
    "numba_available", "resolve_backend",
    "InferencePlan", "PlanCompileError", "PlanRun", "PlanSegment",
    "SEGMENTS", "compile_plan",
    "PRECISIONS", "PlanCalibration", "SegmentCalibration", "amax_to_scale",
    "calibrate", "quantize_weight", "synthetic_calibration_frames",
]
