"""Compiled inference runtime: autograd-free plans with buffer arenas.

The serving hot path of the co-inference engine does not need autograd —
every frame runs under ``no_grad`` — yet eager execution still pays for the
full :class:`~repro.nn.tensor.Tensor` machinery (graph-construction closures,
per-op allocations, per-scatter bookkeeping).  This package compiles an
:class:`~repro.core.executor.ArchitectureModel` once into a flat list of
raw-ndarray kernels (:func:`compile_plan`), reuses pre-allocated output
buffers across frames (:class:`BufferArena`) and canonicalizes edge lists so
scatters always hit the ``reduceat`` fast path.

See ``docs/architecture.md`` ("Runtime & plan compilation") for what fuses,
when the arena engages, and the dtype caveats.
"""

from .arena import BufferArena
from .kernels import SegmentInfo, canonical_edge_order
from .plan import (InferencePlan, PlanCompileError, PlanRun, PlanSegment,
                   SEGMENTS, compile_plan)

__all__ = [
    "BufferArena",
    "SegmentInfo", "canonical_edge_order",
    "InferencePlan", "PlanCompileError", "PlanRun", "PlanSegment",
    "SEGMENTS", "compile_plan",
]
