"""Compiled inference plans: autograd-free execution of an architecture.

:func:`compile_plan` walks an :class:`~repro.core.executor.ArchitectureModel`
once and emits, per execution segment, a flat list of raw-ndarray kernel
steps that bypass the :class:`~repro.nn.tensor.Tensor` machinery entirely:

* ``Combine`` and every classifier layer become a single fused
  linear+bias+activation kernel writing into an arena buffer;
* ``Aggregate`` becomes gather → message build → segment ``reduceat``,
  specialized per reducer, with the scatter bookkeeping
  (:class:`~repro.runtime.kernels.SegmentInfo`) derived once per topology
  instead of once per scatter;
* ``Sample`` keeps calling the exact same :func:`~repro.graph.knn.knn_graph`
  / ``random_graph`` builders as eager execution, but kNN topologies are
  cached *within a frame*: consecutive kNN samples over unchanged positions
  (or unchanged features) reuse the edge list instead of recomputing it;
* ``Identity`` and ``Communicate`` are dropped at plan time;
* edge lists arriving off the wire are canonicalized — destination-sorted
  once — so every scatter hits the ``reduceat`` fast path.

Plans are for **inference only** (the serving hot path); training, search
and the simulator keep the eager autograd path.  Weights are resolved from
the underlying modules at call time, so a plan stays valid across
``load_state_dict`` — only the architecture is frozen at compile time.

Concurrency: buffer arenas are **per thread** (a segment executed from two
threads uses two independent arena instances), so concurrent executions of
one plan produce correct, un-aliased results — the same contract eager
callables had.  Note the memory consequence: arena footprint scales with
the number of threads that ever executed the segment, not with the number
of plans.  The serving layer additionally wraps each zoo entry's callables
in a per-entry lock (see
:func:`repro.core.executor.zoo_serving_callables`) for the same reason the
eager path did: models are shared and ``Sample(random)`` draws from one
shared generator.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..gnn.operations import (AggregateOp, ClassifierOp, CombineOp,
                              CommunicateOp, GlobalPoolOp, IdentityOp,
                              Operation, SampleOp)
from ..graph.knn import knn_graph, random_graph
from ..nn.modules import (Dropout, Identity, LeakyReLU, Linear, MLP, ReLU,
                          Sequential)
from .arena import BufferArena
from .kernels import (SegmentInfo, canonical_edge_order, edge_messages,
                      edgeconv_uniform, fused_linear, knn_edges_uniform,
                      relu_, segment_max, segment_mean, segment_reduce,
                      segment_sum, uniform_segment_reduce)


class PlanCompileError(NotImplementedError):
    """The model contains a construct the compiled runtime does not support.

    Callers requesting ``runtime="auto"`` fall back to eager execution on
    this error; ``runtime="compiled"`` propagates it.
    """


# ----------------------------------------------------------------------
# Run-time state threaded through a plan execution
# ----------------------------------------------------------------------
class PlanRun:
    """Mutable state of one plan execution (the raw twin of ``ExecState``)."""

    __slots__ = ("x", "batch", "num_graphs", "edge_index", "pos", "pooled",
                 "edge_info", "batch_sorted", "topo_cache", "arena",
                 "x_in_arena")

    def __init__(self, x: np.ndarray, batch: np.ndarray, num_graphs: int,
                 edge_index: Optional[np.ndarray], pos: Optional[np.ndarray],
                 pooled: bool, arena: BufferArena) -> None:
        self.x = x
        self.batch = batch
        self.num_graphs = num_graphs
        self.edge_index = edge_index
        self.pos = pos
        self.pooled = pooled
        #: SegmentInfo of the current edge list's destinations, or None when
        #: not yet derived (wire edges are canonicalized lazily on first use).
        self.edge_info: Optional[SegmentInfo] = None
        self.batch_sorted = bool(batch.shape[0] == 0
                                 or not np.any(np.diff(batch) < 0))
        #: Per-frame kNN topology cache (plan-time keys; see _SampleStep).
        self.topo_cache: dict = {}
        self.arena = arena
        #: True when ``x`` currently aliases an arena buffer — anything
        #: leaving the plan must then be copied out (cross-frame aliasing).
        self.x_in_arena = False

    @property
    def num_nodes(self) -> int:
        return int(self.x.shape[0])


def _ensure_edge_info(run: PlanRun) -> None:
    """Canonicalize the current edge list (destination-sort) once per frame."""
    if run.edge_info is None:
        run.edge_index, run.edge_info = canonical_edge_order(
            run.edge_index, run.num_nodes)


# ----------------------------------------------------------------------
# Plan steps
# ----------------------------------------------------------------------
class _ParamRef:
    """Call-time view of one parameter, cast to the plan dtype.

    The source array is re-read on every call (so ``load_state_dict`` after
    compilation is picked up); the cast is cached and invalidated by
    identity, so the steady state costs one attribute read and one ``is``
    check per call.
    """

    __slots__ = ("_param", "_dtype", "_src", "_cast")

    def __init__(self, param, dtype: np.dtype) -> None:
        self._param = param
        self._dtype = dtype
        self._src: Optional[np.ndarray] = None
        self._cast: Optional[np.ndarray] = None

    def get(self) -> Optional[np.ndarray]:
        if self._param is None:
            return None
        data = self._param.data
        if data.dtype == self._dtype:
            return data
        if data is not self._src:
            cast = data.astype(self._dtype)
            # Publish the cast before the source marker: a concurrent reader
            # that sees the new ``_src`` must also see its matching cast.
            self._cast = cast
            self._src = data
            return cast
        return self._cast


class _LinearStep:
    """Fused ``activation(x @ W + b)`` (Combine ops and classifier layers)."""

    __slots__ = ("weight", "bias", "out_features", "activation", "slope",
                 "slot")

    def __init__(self, linear: Linear, dtype: np.dtype, slot: object,
                 activation: Optional[str] = None,
                 negative_slope: float = 0.2) -> None:
        self.weight = _ParamRef(linear.weight, dtype)
        self.bias = _ParamRef(linear.bias, dtype)
        self.out_features = linear.out_features
        self.activation = activation
        self.slope = negative_slope
        self.slot = slot

    def __call__(self, run: PlanRun) -> None:
        out = run.arena.take(self.slot, (run.x.shape[0], self.out_features),
                             run.x.dtype)
        fused_linear(run.x, self.weight.get(), self.bias.get(), out,
                     activation=self.activation, negative_slope=self.slope)
        run.x = out
        run.x_in_arena = True


class _ReluStep:
    """Standalone in-place ReLU (an activation that had no linear to fuse into)."""

    __slots__ = ("slot",)

    def __init__(self, slot: object) -> None:
        self.slot = slot

    def __call__(self, run: PlanRun) -> None:
        if run.x_in_arena:
            relu_(run.x)
            return
        out = run.arena.take(self.slot, run.x.shape, run.x.dtype)
        np.maximum(run.x, 0.0, out=out)
        run.x = out
        run.x_in_arena = True


class _SampleStep:
    """(Re)build the graph topology, with per-frame kNN caching.

    The cache key is assigned at plan time from the feature *version* — a
    counter bumped by every step that rewrites ``x`` — so two kNN samples
    whose reference data provably did not change between them (positions are
    immutable within a segment; features unchanged when only identity-like
    steps sit in between) share one topology per frame.  Random sampling is
    never cached: eager execution redraws on every call, and the compiled
    step draws from the *same* generator object as the eager op — so every
    plan compiled from one model (per-frame, batched, full) and the eager
    model itself consume one shared stream, exactly like eager serving did.
    """

    __slots__ = ("function", "k", "x_version", "_rng")

    def __init__(self, op: SampleOp, x_version: int) -> None:
        self.function = op.spec.function
        self.k = int(op.spec.k)
        self.x_version = x_version
        self._rng = op._rng if self.function == "random" else None

    def __call__(self, run: PlanRun) -> None:
        if run.pooled:
            raise RuntimeError("cannot sample a graph after global pooling")
        if self.function == "knn":
            key = (("knn", self.k, "pos") if run.pos is not None
                   else ("knn", self.k, "x", self.x_version))
            cached = run.topo_cache.get(key)
            if cached is not None:
                run.edge_index, run.edge_info = cached
                return
            reference = run.pos if run.pos is not None else run.x
            edge_index = self._build_knn(reference, run)
            if edge_index is not None:
                # Fast path: k-regular, destination-sorted by construction.
                run.edge_index = edge_index
                run.edge_info = SegmentInfo.uniform(run.num_nodes, self.k)
                run.topo_cache[key] = (run.edge_index, run.edge_info)
                return
            edge_index = knn_graph(reference, self.k, batch=run.batch)
        elif self.function == "random":
            edge_index = random_graph(run.num_nodes, self.k, rng=self._rng,
                                      batch=run.batch)
        else:
            raise ValueError(f"unknown sample function {self.function!r}")
        run.edge_index = edge_index
        if run.batch_sorted:
            # Generated topologies are k-regular and, over a sorted batch
            # vector, destination-sorted by construction: the bookkeeping is
            # known statically, no scan needed.
            run.edge_info = SegmentInfo.uniform(run.num_nodes, self.k)
        else:
            run.edge_info = None
            _ensure_edge_info(run)
        if self.function == "knn":
            run.topo_cache[key] = (run.edge_index, run.edge_info)

    def _build_knn(self, reference: np.ndarray,
                   run: PlanRun) -> Optional[np.ndarray]:
        """Selection-only kNN when the batch is sorted with equal graph sizes.

        Returns ``None`` when the precondition does not hold (unsorted batch,
        ragged graph sizes, or graphs too small for a strict top-``k``); the
        caller then delegates to the eager :func:`~repro.graph.knn.knn_graph`
        builder, which covers every case.
        """
        if not run.batch_sorted:
            return None
        num_nodes, num_graphs = run.num_nodes, run.num_graphs
        if num_graphs <= 0 or num_nodes % num_graphs:
            return None
        per_graph = num_nodes // num_graphs
        if num_graphs > 1:
            counts = np.bincount(run.batch, minlength=num_graphs)
            if counts.min() != per_graph or counts.max() != per_graph:
                return None
        return knn_edges_uniform(reference, self.k, num_graphs, per_graph)


class _AggregateStep:
    """Edge convolution: gather → ``[x_i, x_j - x_i]`` → segment reduce."""

    __slots__ = ("reduce", "msg_slot", "out_slot")

    def __init__(self, reduce: str, msg_slot: object, out_slot: object) -> None:
        if reduce not in ("add", "sum", "mean", "max"):
            raise PlanCompileError(f"unsupported aggregate reducer {reduce!r}")
        self.reduce = reduce
        self.msg_slot = msg_slot
        self.out_slot = out_slot

    def __call__(self, run: PlanRun) -> None:
        if run.edge_index is None or run.edge_index.size == 0:
            raise RuntimeError("aggregate requires an existing graph structure")
        if run.pooled:
            raise RuntimeError("cannot aggregate after global pooling")
        _ensure_edge_info(run)
        src, dst = run.edge_index[0], run.edge_index[1]
        num_edges, features = src.shape[0], run.x.shape[1]
        out = run.arena.take(self.out_slot, (run.num_nodes, 2 * features),
                             run.x.dtype)
        k = run.edge_info.uniform_k
        if k is not None:
            scratch = run.arena.take(self.msg_slot,
                                     (run.num_nodes, k, features),
                                     run.x.dtype)
            edgeconv_uniform(run.x, src, k, self.reduce, scratch, out)
        else:
            messages = run.arena.take(self.msg_slot,
                                      (num_edges, 2 * features), run.x.dtype)
            edge_messages(run.x, src, dst, messages)
            segment_reduce(messages, dst, run.edge_info, self.reduce, out)
        run.x = out
        run.x_in_arena = True


class _GlobalPoolStep:
    """Pool node features per graph (sum / mean / max / max||mean)."""

    __slots__ = ("mode", "slot", "scratch_slot")

    def __init__(self, mode: str, slot: object, scratch_slot: object) -> None:
        if mode not in ("sum", "add", "mean", "max", "max||mean", "maxmean"):
            raise PlanCompileError(f"unsupported global pooling mode {mode!r}")
        self.mode = mode
        self.slot = slot
        self.scratch_slot = scratch_slot

    def __call__(self, run: PlanRun) -> None:
        if run.pooled:
            raise RuntimeError("graph is already pooled")
        _pool_into(run, self.mode, self.slot, self.scratch_slot)


def _pool_into(run: PlanRun, mode: str, slot: object,
               scratch_slot: object) -> None:
    """Shared pooling kernel (GlobalPool step and classifier defensive pool)."""
    num_graphs, features = run.num_graphs, run.x.shape[1]
    if (num_graphs == 1 and run.batch_sorted and run.batch.shape[0]
            and run.batch[0] == 0 and run.batch[-1] == 0):
        info = SegmentInfo.single_segment(run.num_nodes)
    elif run.batch_sorted:
        info = SegmentInfo.from_sorted_index(run.batch, num_graphs)
    else:
        info = SegmentInfo.from_index(run.batch, num_graphs)
    per_graph = info.uniform_k
    grouped = (run.x.reshape(num_graphs, per_graph, features)
               if per_graph is not None else None)
    if mode in ("max||mean", "maxmean"):
        out = run.arena.take(slot, (num_graphs, 2 * features), run.x.dtype)
        if grouped is not None:
            uniform_segment_reduce(grouped, "max", out[:, :features])
            uniform_segment_reduce(grouped, "mean", out[:, features:])
        else:
            scratch = run.arena.take(scratch_slot, (num_graphs, features),
                                     run.x.dtype)
            segment_max(run.x, run.batch, info, scratch)
            out[:, :features] = scratch
            segment_mean(run.x, run.batch, info, scratch)
            out[:, features:] = scratch
    else:
        out = run.arena.take(slot, (num_graphs, features), run.x.dtype)
        if grouped is not None:
            uniform_segment_reduce(grouped, "sum" if mode == "add" else mode,
                                   out)
        elif mode in ("sum", "add"):
            segment_sum(run.x, run.batch, info, out)
        elif mode == "mean":
            segment_mean(run.x, run.batch, info, out)
        else:
            segment_max(run.x, run.batch, info, out)
    run.x = out
    run.x_in_arena = True
    run.batch = np.arange(num_graphs, dtype=np.int64)
    run.batch_sorted = True
    run.edge_index = None
    run.edge_info = None
    run.pos = None
    run.pooled = True


class _EnsurePooledStep:
    """Defensive mean-pool before the classifier, mirroring eager semantics."""

    __slots__ = ("slot", "scratch_slot")

    def __init__(self, slot: object, scratch_slot: object) -> None:
        self.slot = slot
        self.scratch_slot = scratch_slot

    def __call__(self, run: PlanRun) -> None:
        if not run.pooled:
            _pool_into(run, "mean", self.slot, self.scratch_slot)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
class PlanSegment:
    """A compiled, contiguous run of operations with per-thread buffer arenas."""

    def __init__(self, steps: List[Callable[[PlanRun], None]],
                 dtype: np.dtype) -> None:
        self.steps = steps
        self.dtype = dtype
        self._arenas = threading.local()
        # Weak registry of every arena ever handed out, so the segment can
        # enumerate and release them without keeping dead threads' arenas
        # alive: the thread-local slot holds the only strong reference, and
        # a thread exiting drops it — the registry must not resurrect it.
        self._arena_registry: List["weakref.ref[BufferArena]"] = []
        self._registry_lock = threading.Lock()

    @property
    def arena(self) -> BufferArena:
        """The calling thread's buffer arena (created lazily per thread).

        Thread-local arenas make concurrent executions of the same segment
        safe without a lock: two server handler threads each reuse their own
        buffers instead of corrupting each other's in-flight frames.
        """
        arena = getattr(self._arenas, "arena", None)
        if arena is None:
            arena = BufferArena()
            self._arenas.arena = arena
            with self._registry_lock:
                self._arena_registry = [ref for ref in self._arena_registry
                                        if ref() is not None]
                self._arena_registry.append(weakref.ref(arena))
        return arena

    def arenas(self) -> List[BufferArena]:
        """Every live arena of this segment (one per thread that executed it).

        Arenas of threads that already exited are garbage-collected with the
        thread (the registry holds only weak references) and do not appear.
        """
        with self._registry_lock:
            live = [ref() for ref in self._arena_registry]
            self._arena_registry = [
                ref for ref, arena in zip(self._arena_registry, live)
                if arena is not None]
        return [arena for arena in live if arena is not None]

    def release_buffers(self) -> int:
        """Drop every pooled buffer of every live arena; returns bytes freed.

        The explicit teardown hook for long-lived plans: without it, the
        buffers of every thread that ever executed this segment stay pooled
        for as long as the plan (and the thread) lives — e.g. a retired
        serving snapshot would keep batch-shaped buffers of every batcher
        thread alive.  Releasing is safe while a frame is still executing:
        the frame's in-flight buffers stay alive through its own references,
        and the next ``take`` simply reallocates.
        """
        freed = 0
        for arena in self.arenas():
            freed += arena.nbytes()
            arena.clear()
        return freed

    def execute(self, x: np.ndarray, batch: np.ndarray, num_graphs: int,
                edge_index: Optional[np.ndarray] = None,
                pos: Optional[np.ndarray] = None,
                pooled: bool = False) -> PlanRun:
        """Run every step over the given state; returns the final run state.

        The returned state's ``x`` may alias an arena buffer (checked via
        ``x_in_arena``); use :meth:`execute_out` when the result must survive
        the next call.
        """
        x = np.asarray(x)
        if x.dtype != self.dtype:
            x = x.astype(self.dtype)
        batch = np.asarray(batch, dtype=np.int64)
        if pos is not None:
            pos = np.asarray(pos)
            if pos.dtype != self.dtype:
                pos = pos.astype(self.dtype)
        if edge_index is not None:
            edge_index = np.asarray(edge_index, dtype=np.int64)
        run = PlanRun(x, batch, int(num_graphs), edge_index, pos, bool(pooled),
                      self.arena)
        for step in self.steps:
            step(run)
        return run

    def execute_out(self, x: np.ndarray, batch: np.ndarray, num_graphs: int,
                    edge_index: Optional[np.ndarray] = None,
                    pos: Optional[np.ndarray] = None,
                    pooled: bool = False) -> PlanRun:
        """:meth:`execute`, with the output detached from the arena.

        The final ``x`` is copied out when (and only when) it aliases an
        arena buffer, so results handed to callers can never be overwritten
        by the next frame — the no-cross-frame-aliasing guarantee the serving
        engine relies on.
        """
        run = self.execute(x, batch, num_graphs, edge_index=edge_index,
                           pos=pos, pooled=pooled)
        if run.x_in_arena:
            run.x = run.x.copy()
            run.x_in_arena = False
        return run


def _compile_mlp(mlp: MLP, dtype: np.dtype, slot_prefix: str
                 ) -> List[Callable[[PlanRun], None]]:
    """Compile an eval-mode MLP into fused linear steps.

    Supports the layer vocabulary that appears in architecture models
    (Linear / ReLU / LeakyReLU / Identity / Dropout in eval mode or with
    ``p=0``).  Anything that would make eager execution non-deterministic or
    stateful — an *active* Dropout (``p>0`` and ``training=True``),
    BatchNorm, LayerNorm — is not compiled; callers fall back to eager
    execution, which keeps the two runtimes observably equivalent.
    """
    steps: List[Callable[[PlanRun], None]] = []
    pending: Optional[Linear] = None
    index = 0

    def flush(activation: Optional[str] = None, slope: float = 0.2) -> None:
        nonlocal pending, index
        if pending is not None:
            steps.append(_LinearStep(pending, dtype,
                                     (slot_prefix, index, "linear"),
                                     activation=activation,
                                     negative_slope=slope))
            pending = None
        elif activation == "relu":
            steps.append(_ReluStep((slot_prefix, index, "relu")))
        elif activation is not None:
            raise PlanCompileError(
                "cannot compile a standalone non-ReLU activation")
        index += 1

    for layer in mlp.net:
        if isinstance(layer, Linear):
            flush()
            pending = layer
        elif isinstance(layer, ReLU):
            flush(activation="relu")
        elif isinstance(layer, LeakyReLU):
            if pending is None:
                raise PlanCompileError(
                    "cannot compile a standalone LeakyReLU activation")
            flush(activation="leaky_relu", slope=layer.negative_slope)
        elif isinstance(layer, Dropout):
            if layer.p > 0 and layer.training:
                # Eager execution would apply random masks per frame here;
                # compiling it away would silently diverge from eager.
                raise PlanCompileError(
                    "cannot compile an active Dropout layer (p>0 in "
                    "training mode) — call model.eval() first")
            continue
        elif isinstance(layer, Identity):
            continue  # no-op
        else:
            raise PlanCompileError(
                f"cannot compile classifier layer {type(layer).__name__}")
    flush()
    return steps


def _compile_operation(operation: Operation, index: int, x_version: int,
                       dtype: np.dtype
                       ) -> "tuple[List[Callable[[PlanRun], None]], int]":
    """Compile one architecture operation; returns (steps, new x_version)."""
    if isinstance(operation, (IdentityOp, CommunicateOp)):
        return [], x_version  # canonicalized away: no runtime cost at all
    if isinstance(operation, SampleOp):
        return [_SampleStep(operation, x_version)], x_version
    if isinstance(operation, AggregateOp):
        reduce = str(operation.spec.function)
        return [_AggregateStep(reduce, (index, "msgs"), (index, "out"))], \
            x_version + 1
    if isinstance(operation, CombineOp):
        return [_LinearStep(operation.linear, dtype, (index, "linear"),
                            activation="relu")], x_version + 1
    if isinstance(operation, GlobalPoolOp):
        mode = str(operation.spec.function)
        return [_GlobalPoolStep(mode, (index, "pool"), (index, "scratch"))], \
            x_version + 1
    if isinstance(operation, ClassifierOp):
        steps: List[Callable[[PlanRun], None]] = [
            _EnsurePooledStep((index, "defensive-pool"),
                              (index, "defensive-scratch"))]
        steps.extend(_compile_mlp(operation.mlp, dtype, f"classifier{index}"))
        return steps, x_version + 1
    raise PlanCompileError(
        f"cannot compile operation {type(operation).__name__}")


def _compile_segment(model, start: int, end: Optional[int],
                     include_classifier: bool, dtype: np.dtype) -> PlanSegment:
    operations = model._operations
    end = len(operations) if end is None else end
    steps: List[Callable[[PlanRun], None]] = []
    x_version = 0
    for index in range(start, end):
        op_steps, x_version = _compile_operation(operations[index], index,
                                                 x_version, dtype)
        steps.extend(op_steps)
    if include_classifier:
        op_steps, x_version = _compile_operation(model.classifier,
                                                 len(operations), x_version,
                                                 dtype)
        steps.extend(op_steps)
    return PlanSegment(steps, dtype)


#: All compilable plan segments (the default for :func:`compile_plan`).
SEGMENTS = ("full", "device", "edge")


class InferencePlan:
    """Compiled form of one :class:`~repro.core.executor.ArchitectureModel`.

    Up to three independently-compiled segments (each with per-thread buffer
    arenas); ``segments`` selects which are built, so serving callables that
    only ever resume the edge side don't carry dead device/full step lists:

    ``full``
        Every operation plus the classifier — direct inference.
    ``device``
        Operations before the first ``Communicate`` (``None`` split: the
        whole architecture including the classifier, matching eager
        ``split_callables`` semantics for Device-Only deployments).
    ``edge``
        Operations after the first ``Communicate`` plus the classifier — the
        serving hot path the edge server executes per frame or per
        micro-batch.  (``None`` split: aliases ``full``, mirroring the eager
        edge callable which re-runs the whole architecture for unfinished
        frames.)
    """

    def __init__(self, model, dtype=np.float64,
                 segments: Sequence[str] = SEGMENTS) -> None:
        if not segments:
            raise ValueError(
                f"segments must name at least one of {SEGMENTS}")
        unknown = set(segments) - set(SEGMENTS)
        if unknown:
            raise ValueError(f"unknown plan segments {sorted(unknown)} "
                             f"(expected a subset of {SEGMENTS})")
        self.model = model
        self.dtype = np.dtype(dtype)
        if not np.issubdtype(self.dtype, np.floating):
            raise ValueError(f"plan dtype must be floating, got {self.dtype}")
        self.split = model.first_communicate_index()
        self.full = self.device = self.edge = None
        if self.split is None:
            # Everything aliases the full architecture: device runs it all,
            # and an (unfinished) frame on the edge re-runs it all too.
            self.full = self.device = self.edge = _compile_segment(
                model, 0, None, True, self.dtype)
            return
        if "full" in segments:
            self.full = _compile_segment(model, 0, None, True, self.dtype)
        if "device" in segments:
            self.device = _compile_segment(model, 0, self.split, False,
                                           self.dtype)
        if "edge" in segments:
            self.edge = _compile_segment(model, self.split + 1, None, True,
                                         self.dtype)

    # ------------------------------------------------------------------
    def segments(self) -> List[PlanSegment]:
        """The distinct compiled segments of this plan (aliases deduplicated)."""
        unique: List[PlanSegment] = []
        for segment in (self.full, self.device, self.edge):
            if segment is not None and all(segment is not seen
                                           for seen in unique):
                unique.append(segment)
        return unique

    def release_buffers(self) -> int:
        """Release every segment's pooled arena buffers; returns bytes freed.

        Wired into serving-snapshot teardown: a plan retired from the
        serving table frees its steady-state buffers immediately instead of
        holding them until the last executing thread dies.  The plan stays
        usable — the next execution just reallocates its buffers.
        """
        return sum(segment.release_buffers() for segment in self.segments())

    def arena_nbytes(self) -> int:
        """Total bytes currently pooled across all segments and threads."""
        return sum(arena.nbytes() for segment in self.segments()
                   for arena in segment.arenas())

    # ------------------------------------------------------------------
    def forward(self, batch) -> np.ndarray:
        """Full autograd-free forward pass; returns per-graph logits."""
        if self.full is None:
            raise RuntimeError(
                "this plan was compiled without its 'full' segment")
        run = self.full.execute_out(batch.x, batch.batch, batch.num_graphs,
                                    edge_index=batch.edge_index,
                                    pos=batch.pos)
        return run.x

    __call__ = forward


def compile_plan(model, dtype=np.float64,
                 segments: Sequence[str] = SEGMENTS) -> InferencePlan:
    """Compile ``model`` into an :class:`InferencePlan`.

    ``segments`` restricts compilation to the execution segments the caller
    will actually run (compile errors are only raised for operations inside
    the requested segments).  Raises :class:`PlanCompileError` when a
    requested segment contains a construct the compiled runtime does not
    support (callers requesting ``runtime="auto"`` then fall back to eager
    execution).
    """
    return InferencePlan(model, dtype=dtype, segments=segments)
