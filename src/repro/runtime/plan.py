"""Compiled inference plans: autograd-free execution of an architecture.

:func:`compile_plan` walks an :class:`~repro.core.executor.ArchitectureModel`
once and emits, per execution segment, a flat list of raw-ndarray kernel
steps that bypass the :class:`~repro.nn.tensor.Tensor` machinery entirely:

* ``Combine`` and every classifier layer become a single fused
  linear+bias+activation kernel writing into an arena buffer;
* ``Aggregate`` becomes gather → message build → segment ``reduceat``,
  specialized per reducer, with the scatter bookkeeping
  (:class:`~repro.runtime.kernels.SegmentInfo`) derived once per topology
  instead of once per scatter;
* ``Sample`` keeps calling the exact same :func:`~repro.graph.knn.knn_graph`
  / ``random_graph`` builders as eager execution, but kNN topologies are
  cached *within a frame*: consecutive kNN samples over unchanged positions
  (or unchanged features) reuse the edge list instead of recomputing it;
* ``Identity`` and ``Communicate`` are dropped at plan time;
* edge lists arriving off the wire are canonicalized — destination-sorted
  once — so every scatter hits the ``reduceat`` fast path.

Plans are for **inference only** (the serving hot path); training, search
and the simulator keep the eager autograd path.  Weights are resolved from
the underlying modules at call time, so a plan stays valid across
``load_state_dict`` — only the architecture is frozen at compile time.

Concurrency: buffer arenas are **per thread** (a segment executed from two
threads uses two independent arena instances), so concurrent executions of
one plan produce correct, un-aliased results — the same contract eager
callables had.  Note the memory consequence: arena footprint scales with
the number of threads that ever executed the segment, not with the number
of plans.  The serving layer additionally wraps each zoo entry's callables
in a per-entry lock (see
:func:`repro.core.executor.zoo_serving_callables`) for the same reason the
eager path did: models are shared and ``Sample(random)`` draws from one
shared generator.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..gnn.operations import (AggregateOp, ClassifierOp, CombineOp,
                              CommunicateOp, GlobalPoolOp, IdentityOp,
                              Operation, SampleOp)
from ..graph.knn import knn_graph, random_graph
from ..nn.modules import (Dropout, Identity, LeakyReLU, Linear, MLP, ReLU,
                          Sequential)
from .arena import BufferArena
from .backends import KernelBackend, resolve_backend
from .kernels import (QMAX_INT8, SegmentInfo, _F32_EXACT,
                      canonical_edge_order)
from .quantize import (PRECISION_INT8, PlanCalibration, SegmentCalibration,
                       amax_to_scale, quantize_weight)


class PlanCompileError(NotImplementedError):
    """The model contains a construct the compiled runtime does not support.

    Callers requesting ``runtime="auto"`` fall back to eager execution on
    this error; ``runtime="compiled"`` propagates it.
    """


# ----------------------------------------------------------------------
# Run-time state threaded through a plan execution
# ----------------------------------------------------------------------
class PlanRun:
    """Mutable state of one plan execution (the raw twin of ``ExecState``)."""

    __slots__ = ("x", "batch", "num_graphs", "edge_index", "pos", "pooled",
                 "edge_info", "batch_sorted", "topo_cache", "arena",
                 "x_in_arena", "backend", "x_scale", "x_qmax")

    def __init__(self, x: np.ndarray, batch: np.ndarray, num_graphs: int,
                 edge_index: Optional[np.ndarray], pos: Optional[np.ndarray],
                 pooled: bool, arena: BufferArena,
                 backend: KernelBackend) -> None:
        self.x = x
        self.batch = batch
        self.num_graphs = num_graphs
        self.edge_index = edge_index
        self.pos = pos
        self.pooled = pooled
        self.backend = backend
        #: When ``x`` holds quantized integers: its per-tensor scale and the
        #: largest magnitude any element can reach (tracked exactly through
        #: the integer kernels; drives the f32-vs-f64 matmul exactness
        #: bound).  ``None`` whenever ``x`` is float.
        self.x_scale: Optional[float] = None
        self.x_qmax: Optional[int] = None
        #: SegmentInfo of the current edge list's destinations, or None when
        #: not yet derived (wire edges are canonicalized lazily on first use).
        self.edge_info: Optional[SegmentInfo] = None
        self.batch_sorted = bool(batch.shape[0] == 0
                                 or not np.any(np.diff(batch) < 0))
        #: Per-frame kNN topology cache (plan-time keys; see _SampleStep).
        self.topo_cache: dict = {}
        self.arena = arena
        #: True when ``x`` currently aliases an arena buffer — anything
        #: leaving the plan must then be copied out (cross-frame aliasing).
        self.x_in_arena = False

    @property
    def num_nodes(self) -> int:
        return int(self.x.shape[0])


def _ensure_edge_info(run: PlanRun) -> None:
    """Canonicalize the current edge list (destination-sort) once per frame."""
    if run.edge_info is None:
        run.edge_index, run.edge_info = canonical_edge_order(
            run.edge_index, run.num_nodes)


# ----------------------------------------------------------------------
# Plan steps
# ----------------------------------------------------------------------
class _ParamRef:
    """Call-time view of one parameter, cast to the plan dtype.

    The source array is re-read on every call (so ``load_state_dict`` after
    compilation is picked up); the cast is cached and invalidated by
    identity, so the steady state costs one attribute read and one ``is``
    check per call.
    """

    __slots__ = ("_param", "_dtype", "_src", "_cast")

    def __init__(self, param, dtype: np.dtype) -> None:
        self._param = param
        self._dtype = dtype
        self._src: Optional[np.ndarray] = None
        self._cast: Optional[np.ndarray] = None

    def get(self) -> Optional[np.ndarray]:
        if self._param is None:
            return None
        data = self._param.data
        if data.dtype == self._dtype:
            return data
        if data is not self._src:
            cast = data.astype(self._dtype)
            # Publish the cast before the source marker: a concurrent reader
            # that sees the new ``_src`` must also see its matching cast.
            self._cast = cast
            self._src = data
            return cast
        return self._cast


class _LinearStep:
    """Fused ``activation(x @ W + b)`` (Combine ops and classifier layers)."""

    __slots__ = ("weight", "bias", "out_features", "activation", "slope",
                 "slot")

    def __init__(self, linear: Linear, dtype: np.dtype, slot: object,
                 activation: Optional[str] = None,
                 negative_slope: float = 0.2) -> None:
        self.weight = _ParamRef(linear.weight, dtype)
        self.bias = _ParamRef(linear.bias, dtype)
        self.out_features = linear.out_features
        self.activation = activation
        self.slope = negative_slope
        self.slot = slot

    @property
    def calib_key(self) -> object:
        return self.slot

    def __call__(self, run: PlanRun) -> None:
        out = run.arena.take(self.slot, (run.x.shape[0], self.out_features),
                             run.x.dtype)
        run.backend.fused_linear(run.x, self.weight.get(), self.bias.get(),
                                 out, activation=self.activation,
                                 negative_slope=self.slope)
        run.x = out
        run.x_in_arena = True


class _ReluStep:
    """Standalone in-place ReLU (an activation that had no linear to fuse into)."""

    __slots__ = ("slot",)

    def __init__(self, slot: object) -> None:
        self.slot = slot

    @property
    def calib_key(self) -> object:
        return self.slot

    def __call__(self, run: PlanRun) -> None:
        if run.x_in_arena:
            run.backend.relu_(run.x)
            return
        out = run.arena.take(self.slot, run.x.shape, run.x.dtype)
        np.maximum(run.x, run.x.dtype.type(0), out=out)
        run.x = out
        run.x_in_arena = True


class _SampleStep:
    """(Re)build the graph topology, with per-frame kNN caching.

    The cache key is assigned at plan time from the feature *version* — a
    counter bumped by every step that rewrites ``x`` — so two kNN samples
    whose reference data provably did not change between them (positions are
    immutable within a segment; features unchanged when only identity-like
    steps sit in between) share one topology per frame.  Random sampling is
    never cached: eager execution redraws on every call, and the compiled
    step draws from the *same* generator object as the eager op — so every
    plan compiled from one model (per-frame, batched, full) and the eager
    model itself consume one shared stream, exactly like eager serving did.
    """

    __slots__ = ("function", "k", "x_version", "_rng")

    def __init__(self, op: SampleOp, x_version: int) -> None:
        self.function = op.spec.function
        self.k = int(op.spec.k)
        self.x_version = x_version
        self._rng = op._rng if self.function == "random" else None

    def __call__(self, run: PlanRun) -> None:
        if run.pooled:
            raise RuntimeError("cannot sample a graph after global pooling")
        if self.function == "knn":
            key = (("knn", self.k, "pos") if run.pos is not None
                   else ("knn", self.k, "x", self.x_version))
            cached = run.topo_cache.get(key)
            if cached is not None:
                run.edge_index, run.edge_info = cached
                return
            reference = run.pos if run.pos is not None else run.x
            edge_index = self._build_knn(reference, run)
            if edge_index is not None:
                # Fast path: k-regular, destination-sorted by construction.
                run.edge_index = edge_index
                run.edge_info = SegmentInfo.uniform(run.num_nodes, self.k)
                run.topo_cache[key] = (run.edge_index, run.edge_info)
                return
            edge_index = knn_graph(reference, self.k, batch=run.batch)
        elif self.function == "random":
            edge_index = random_graph(run.num_nodes, self.k, rng=self._rng,
                                      batch=run.batch)
        else:
            raise ValueError(f"unknown sample function {self.function!r}")
        run.edge_index = edge_index
        if run.batch_sorted:
            # Generated topologies are k-regular and, over a sorted batch
            # vector, destination-sorted by construction: the bookkeeping is
            # known statically, no scan needed.
            run.edge_info = SegmentInfo.uniform(run.num_nodes, self.k)
        else:
            run.edge_info = None
            _ensure_edge_info(run)
        if self.function == "knn":
            run.topo_cache[key] = (run.edge_index, run.edge_info)

    def _build_knn(self, reference: np.ndarray,
                   run: PlanRun) -> Optional[np.ndarray]:
        """Selection-only kNN when the batch is sorted with equal graph sizes.

        Returns ``None`` when the precondition does not hold (unsorted batch,
        ragged graph sizes, or graphs too small for a strict top-``k``); the
        caller then delegates to the eager :func:`~repro.graph.knn.knn_graph`
        builder, which covers every case.
        """
        if not run.batch_sorted:
            return None
        num_nodes, num_graphs = run.num_nodes, run.num_graphs
        if num_graphs <= 0 or num_nodes % num_graphs:
            return None
        per_graph = num_nodes // num_graphs
        if num_graphs > 1:
            counts = np.bincount(run.batch, minlength=num_graphs)
            if counts.min() != per_graph or counts.max() != per_graph:
                return None
        return run.backend.knn_edges_uniform(reference, self.k, num_graphs,
                                             per_graph)


class _AggregateStep:
    """Edge convolution: gather → ``[x_i, x_j - x_i]`` → segment reduce."""

    __slots__ = ("reduce", "msg_slot", "out_slot")

    def __init__(self, reduce: str, msg_slot: object, out_slot: object) -> None:
        if reduce not in ("add", "sum", "mean", "max"):
            raise PlanCompileError(f"unsupported aggregate reducer {reduce!r}")
        self.reduce = reduce
        self.msg_slot = msg_slot
        self.out_slot = out_slot

    @property
    def calib_key(self) -> object:
        return self.out_slot

    def __call__(self, run: PlanRun) -> None:
        if run.edge_index is None or run.edge_index.size == 0:
            raise RuntimeError("aggregate requires an existing graph structure")
        if run.pooled:
            raise RuntimeError("cannot aggregate after global pooling")
        _ensure_edge_info(run)
        src, dst = run.edge_index[0], run.edge_index[1]
        num_edges, features = src.shape[0], run.x.shape[1]
        out = run.arena.take(self.out_slot, (run.num_nodes, 2 * features),
                             run.x.dtype)
        k = run.edge_info.uniform_k
        if k is not None:
            scratch = run.arena.take(self.msg_slot,
                                     (run.num_nodes, k, features),
                                     run.x.dtype)
            run.backend.edgeconv_uniform(run.x, src, k, self.reduce, scratch,
                                         out)
        else:
            messages = run.arena.take(self.msg_slot,
                                      (num_edges, 2 * features), run.x.dtype)
            run.backend.edge_messages(run.x, src, dst, messages)
            run.backend.segment_reduce(messages, dst, run.edge_info,
                                       self.reduce, out)
        run.x = out
        run.x_in_arena = True


class _GlobalPoolStep:
    """Pool node features per graph (sum / mean / max / max||mean)."""

    __slots__ = ("mode", "slot", "scratch_slot")

    def __init__(self, mode: str, slot: object, scratch_slot: object) -> None:
        if mode not in ("sum", "add", "mean", "max", "max||mean", "maxmean"):
            raise PlanCompileError(f"unsupported global pooling mode {mode!r}")
        self.mode = mode
        self.slot = slot
        self.scratch_slot = scratch_slot

    @property
    def calib_key(self) -> object:
        return self.slot

    def __call__(self, run: PlanRun) -> None:
        if run.pooled:
            raise RuntimeError("graph is already pooled")
        _pool_into(run, self.mode, self.slot, self.scratch_slot)


def _batch_segment_info(run: PlanRun) -> SegmentInfo:
    """SegmentInfo of the batch vector (for pooling), cheapest derivation first."""
    num_graphs = run.num_graphs
    if (num_graphs == 1 and run.batch_sorted and run.batch.shape[0]
            and run.batch[0] == 0 and run.batch[-1] == 0):
        return SegmentInfo.single_segment(run.num_nodes)
    if run.batch_sorted:
        return SegmentInfo.from_sorted_index(run.batch, num_graphs)
    return SegmentInfo.from_index(run.batch, num_graphs)


def _finish_pool(run: PlanRun, out: np.ndarray, num_graphs: int) -> None:
    """Install pooled features and reset per-node state (shared pool epilogue)."""
    run.x = out
    run.x_in_arena = True
    run.x_scale = None
    run.x_qmax = None
    run.batch = np.arange(num_graphs, dtype=np.int64)
    run.batch_sorted = True
    run.edge_index = None
    run.edge_info = None
    run.pos = None
    run.pooled = True


def _pool_into(run: PlanRun, mode: str, slot: object,
               scratch_slot: object) -> None:
    """Shared pooling kernel (GlobalPool step and classifier defensive pool)."""
    num_graphs, features = run.num_graphs, run.x.shape[1]
    backend = run.backend
    info = _batch_segment_info(run)
    per_graph = info.uniform_k
    grouped = (run.x.reshape(num_graphs, per_graph, features)
               if per_graph is not None else None)
    if mode in ("max||mean", "maxmean"):
        out = run.arena.take(slot, (num_graphs, 2 * features), run.x.dtype)
        if grouped is not None:
            backend.uniform_segment_reduce(grouped, "max", out[:, :features])
            backend.uniform_segment_reduce(grouped, "mean", out[:, features:])
        else:
            scratch = run.arena.take(scratch_slot, (num_graphs, features),
                                     run.x.dtype)
            backend.segment_reduce(run.x, run.batch, info, "max", scratch)
            out[:, :features] = scratch
            backend.segment_reduce(run.x, run.batch, info, "mean", scratch)
            out[:, features:] = scratch
    else:
        out = run.arena.take(slot, (num_graphs, features), run.x.dtype)
        if grouped is not None:
            backend.uniform_segment_reduce(
                grouped, "sum" if mode == "add" else mode, out)
        else:
            backend.segment_reduce(run.x, run.batch, info, mode, out)
    _finish_pool(run, out, num_graphs)


class _EnsurePooledStep:
    """Defensive mean-pool before the classifier, mirroring eager semantics."""

    __slots__ = ("slot", "scratch_slot")

    def __init__(self, slot: object, scratch_slot: object) -> None:
        self.slot = slot
        self.scratch_slot = scratch_slot

    @property
    def calib_key(self) -> object:
        return self.slot

    def __call__(self, run: PlanRun) -> None:
        if not run.pooled:
            _pool_into(run, "mean", self.slot, self.scratch_slot)


# ----------------------------------------------------------------------
# Quantized (int8) plan steps
# ----------------------------------------------------------------------
# The quantized compile path mirrors the float steps one for one, with two
# extra pieces of threaded state: ``run.x_scale`` (the per-tensor scale of
# the current integer ``x``) and ``run.x_qmax`` (the largest magnitude any
# element can hold, tracked *exactly* through the integer kernels — it
# decides when the BLAS widening trick needs float64 to stay exact).
# Activation scales are static, fixed at compile time from a
# ``SegmentCalibration``; weight scales are per output channel, derived
# lazily per parameter version.  See ``docs/architecture.md`` for the
# scheme.

class _QuantParamRef:
    """Call-time quantized view of a weight matrix (per-channel scales).

    Mirrors :class:`_ParamRef`: re-quantizes only when the parameter's array
    identity changes, so ``load_state_dict`` after compilation re-quantizes
    automatically and the steady state is one ``is`` check per call.
    Returns ``(wq, w32, w64, scales)`` — the int8 weights, their float32 and
    float64 widenings (whichever the backend's matmul wants), and the
    float32 per-output-channel scales.
    """

    __slots__ = ("_param", "_src", "_packed")

    def __init__(self, param) -> None:
        self._param = param
        self._src: Optional[np.ndarray] = None
        self._packed = None

    def get(self):
        data = self._param.data
        if data is not self._src:
            wq, scales = quantize_weight(data)
            packed = (wq, wq.astype(np.float32), wq.astype(np.float64),
                      scales)
            # Publish the pack before the source marker (same memory-order
            # reasoning as _ParamRef).
            self._packed = packed
            self._src = data
            return packed
        return self._packed


class _QuantizeStep:
    """Quantize the segment's float input once, at entry (static scale)."""

    __slots__ = ("scale", "slot")

    def __init__(self, scale: float, slot: object) -> None:
        self.scale = scale
        self.slot = slot

    def __call__(self, run: PlanRun) -> None:
        x = run.x
        if x.dtype.kind in "iu":
            return  # already quantized upstream
        outq = run.arena.take(self.slot, x.shape, np.int8)
        scratch = run.arena.take((self.slot, "scratch"), x.shape, np.float32)
        run.backend.quantize(x, self.scale, scratch, outq)
        run.x = outq
        run.x_in_arena = True
        run.x_scale = self.scale
        run.x_qmax = QMAX_INT8


class _QuantLinearStep:
    """Fused quantized linear: (quantize →) int matmul → dequant(+bias, act).

    Float inputs (segment entry states that skipped the entry quantize,
    pooled features) are first quantized with the calibrated ``in_scale``;
    integer inputs use the scale they arrived with.  The output is
    requantized to the calibrated ``out_scale`` — except for a segment's
    final linear (``requantize=False``), which emits float32 logits.
    """

    __slots__ = ("qweight", "bias", "zero_bias", "out_features", "activation",
                 "slope", "in_scale", "out_scale", "requantize", "slot")

    def __init__(self, linear: Linear, slot: object,
                 activation: Optional[str], negative_slope: float,
                 in_amax: float, out_amax: float) -> None:
        self.qweight = _QuantParamRef(linear.weight)
        self.bias = _ParamRef(linear.bias, np.float32)
        self.zero_bias = np.zeros(linear.out_features, dtype=np.float32)
        self.out_features = linear.out_features
        self.activation = activation
        self.slope = negative_slope
        self.in_scale = amax_to_scale(in_amax)
        self.out_scale = amax_to_scale(out_amax)
        self.requantize = True
        self.slot = slot

    @property
    def calib_key(self) -> object:
        return self.slot

    def __call__(self, run: PlanRun) -> None:
        backend = run.backend
        x = run.x
        if x.dtype.kind in "iu":
            xq, x_scale = x, run.x_scale
            qmax = run.x_qmax if run.x_qmax is not None else QMAX_INT8
        else:
            xq = run.arena.take((self.slot, "inq"), x.shape, np.int8)
            scratch = run.arena.take((self.slot, "inq-scratch"), x.shape,
                                     np.float32)
            backend.quantize(x, self.in_scale, scratch, xq)
            x_scale, qmax = self.in_scale, QMAX_INT8
        wq, w32, w64, w_scale = self.qweight.get()
        bias = self.bias.get()
        if bias is None:
            bias = self.zero_bias
        rows, in_features = xq.shape
        # Exactness bound of the BLAS widening trick: every partial sum is
        # an integer below qmax·127·K; float32 holds those exactly to 2^24,
        # beyond that the accumulation must widen to float64 (exact to 2^53).
        use_f64 = qmax * QMAX_INT8 * in_features >= _F32_EXACT
        fdtype = np.float64 if use_f64 else np.float32
        xcast = run.arena.take((self.slot, "xcast"), xq.shape, fdtype)
        acc = run.arena.take((self.slot, "acc"), (rows, self.out_features),
                             fdtype)
        out32 = (run.arena.take((self.slot, "out32"),
                                (rows, self.out_features), np.float32)
                 if use_f64 else acc)
        outq = (run.arena.take((self.slot, "outq"),
                               (rows, self.out_features), np.int8)
                if self.requantize else None)
        run.x = backend.quant_fused_linear(
            xq, wq, w64 if use_f64 else w32, w_scale, x_scale, bias, xcast,
            acc, self.activation, self.slope,
            self.out_scale if self.requantize else None, outq, out32)
        run.x_in_arena = True
        if self.requantize:
            run.x_scale = self.out_scale
            run.x_qmax = QMAX_INT8
        else:
            run.x_scale = None
            run.x_qmax = None


class _QuantAggregateStep:
    """EdgeConv over quantized features, integer-exact on uniform topologies.

    The k-regular fast path reduces gathered int8 rows directly (see
    :func:`~repro.runtime.kernels.quant_edgeconv_uniform`) — no rounding at
    all; the output scale/qmax transform in closed form (``max``: scale
    unchanged, qmax doubles; ``add``: scale unchanged, qmax → 2k·qmax;
    ``mean``: 1/k folds into the scale).  Ragged topologies (and float
    inputs) fall back to the float kernels and requantize to the calibrated
    ``out_amax``.
    """

    __slots__ = ("reduce", "msg_slot", "out_slot", "out_amax")

    def __init__(self, reduce: str, msg_slot: object, out_slot: object,
                 out_amax: float) -> None:
        if reduce not in ("add", "sum", "mean", "max"):
            raise PlanCompileError(f"unsupported aggregate reducer {reduce!r}")
        self.reduce = reduce
        self.msg_slot = msg_slot
        self.out_slot = out_slot
        self.out_amax = out_amax

    @property
    def calib_key(self) -> object:
        return self.out_slot

    def __call__(self, run: PlanRun) -> None:
        if run.edge_index is None or run.edge_index.size == 0:
            raise RuntimeError("aggregate requires an existing graph structure")
        if run.pooled:
            raise RuntimeError("cannot aggregate after global pooling")
        _ensure_edge_info(run)
        x = run.x
        k = run.edge_info.uniform_k
        if k is None or x.dtype.kind not in "iu":
            self._float_fallback(run)
            return
        features = x.shape[1]
        qmax = run.x_qmax if run.x_qmax is not None else QMAX_INT8
        if self.reduce == "max":
            bound = 2 * qmax
            new_scale = run.x_scale
        else:
            bound = 2 * k * qmax
            new_scale = (run.x_scale if self.reduce in ("add", "sum")
                         else run.x_scale / k)
        if bound > np.iinfo(np.int32).max:
            self._float_fallback(run)
            return
        out_dtype = (np.int16 if bound <= np.iinfo(np.int16).max
                     else np.int32)
        out = run.arena.take(self.out_slot, (run.num_nodes, 2 * features),
                             out_dtype)
        gather = run.arena.take(self.msg_slot, (run.num_nodes, k, features),
                                x.dtype)
        run.backend.quant_edgeconv_uniform(x, run.edge_index[0], k,
                                           self.reduce, gather, out)
        run.x = out
        run.x_in_arena = True
        run.x_scale = new_scale
        run.x_qmax = bound

    def _float_fallback(self, run: PlanRun) -> None:
        """Ragged topology / float input: float arithmetic, then requantize."""
        backend = run.backend
        x = run.x
        if x.dtype.kind in "iu":
            deq = run.arena.take((self.out_slot, "deq"), x.shape, np.float32)
            backend.dequantize(x, run.x_scale, deq)
            x = deq
        src, dst = run.edge_index[0], run.edge_index[1]
        num_edges, features = src.shape[0], x.shape[1]
        out = run.arena.take((self.out_slot, "f"),
                             (run.num_nodes, 2 * features), np.float32)
        k = run.edge_info.uniform_k
        if k is not None:
            scratch = run.arena.take((self.msg_slot, "f"),
                                     (run.num_nodes, k, features), np.float32)
            backend.edgeconv_uniform(x, src, k, self.reduce, scratch, out)
        else:
            messages = run.arena.take((self.msg_slot, "f"),
                                      (num_edges, 2 * features), np.float32)
            backend.edge_messages(x, src, dst, messages)
            backend.segment_reduce(messages, dst, run.edge_info, self.reduce,
                                   out)
        scale = amax_to_scale(self.out_amax)
        outq = run.arena.take((self.out_slot, "q"), out.shape, np.int8)
        backend.quantize(out, scale, out, outq)
        run.x = outq
        run.x_in_arena = True
        run.x_scale = scale
        run.x_qmax = QMAX_INT8


def _quant_pool_into(run: PlanRun, mode: str, slot: object,
                     scratch_slot: object) -> None:
    """Pool quantized features; this is where values re-enter float.

    Uniform batch grids reduce in integer arithmetic (int64 scratch, so
    sums can never overflow) and dequantize the tiny per-graph result;
    ragged batches dequantize first and reuse the float pooling path.
    Float inputs delegate straight to :func:`_pool_into`.
    """
    x = run.x
    if x.dtype.kind not in "iu":
        _pool_into(run, mode, slot, scratch_slot)
        return
    info = _batch_segment_info(run)
    per_graph = info.uniform_k
    if per_graph is None:
        deq = run.arena.take((slot, "deq"), x.shape, np.float32)
        run.backend.dequantize(x, run.x_scale, deq)
        run.x = deq
        run.x_in_arena = True
        run.x_scale = None
        run.x_qmax = None
        _pool_into(run, mode, slot, scratch_slot)
        return
    num_graphs, features = run.num_graphs, x.shape[1]
    cols = 2 * features if mode in ("max||mean", "maxmean") else features
    out = run.arena.take(slot, (num_graphs, cols), np.float32)
    scratch = run.arena.take(scratch_slot, (num_graphs, features), np.int64)
    run.backend.quant_pool_uniform(x, num_graphs, per_graph, mode,
                                   run.x_scale, scratch, out)
    _finish_pool(run, out, num_graphs)


class _QuantPoolStep:
    """Quantized global pooling (same modes as :class:`_GlobalPoolStep`)."""

    __slots__ = ("mode", "slot", "scratch_slot")

    def __init__(self, mode: str, slot: object, scratch_slot: object) -> None:
        if mode not in ("sum", "add", "mean", "max", "max||mean", "maxmean"):
            raise PlanCompileError(f"unsupported global pooling mode {mode!r}")
        self.mode = mode
        self.slot = slot
        self.scratch_slot = scratch_slot

    @property
    def calib_key(self) -> object:
        return self.slot

    def __call__(self, run: PlanRun) -> None:
        if run.pooled:
            raise RuntimeError("graph is already pooled")
        _quant_pool_into(run, self.mode, self.slot, self.scratch_slot)


class _QuantEnsurePooledStep:
    """Defensive mean-pool before the classifier (quantized variant)."""

    __slots__ = ("slot", "scratch_slot")

    def __init__(self, slot: object, scratch_slot: object) -> None:
        self.slot = slot
        self.scratch_slot = scratch_slot

    @property
    def calib_key(self) -> object:
        return self.slot

    def __call__(self, run: PlanRun) -> None:
        if not run.pooled:
            _quant_pool_into(run, "mean", self.slot, self.scratch_slot)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
class PlanSegment:
    """A compiled, contiguous run of operations with per-thread buffer arenas."""

    def __init__(self, steps: List[Callable[[PlanRun], None]],
                 dtype: np.dtype, backend: KernelBackend) -> None:
        self.steps = steps
        self.dtype = dtype
        self.backend = backend
        self._arenas = threading.local()
        # Weak registry of every arena ever handed out, so the segment can
        # enumerate and release them without keeping dead threads' arenas
        # alive: the thread-local slot holds the only strong reference, and
        # a thread exiting drops it — the registry must not resurrect it.
        self._arena_registry: List["weakref.ref[BufferArena]"] = []
        self._registry_lock = threading.Lock()

    @property
    def arena(self) -> BufferArena:
        """The calling thread's buffer arena (created lazily per thread).

        Thread-local arenas make concurrent executions of the same segment
        safe without a lock: two server handler threads each reuse their own
        buffers instead of corrupting each other's in-flight frames.
        """
        arena = getattr(self._arenas, "arena", None)
        if arena is None:
            arena = BufferArena()
            self._arenas.arena = arena
            with self._registry_lock:
                self._arena_registry = [ref for ref in self._arena_registry
                                        if ref() is not None]
                self._arena_registry.append(weakref.ref(arena))
        return arena

    def arenas(self) -> List[BufferArena]:
        """Every live arena of this segment (one per thread that executed it).

        Arenas of threads that already exited are garbage-collected with the
        thread (the registry holds only weak references) and do not appear.
        """
        with self._registry_lock:
            live = [ref() for ref in self._arena_registry]
            self._arena_registry = [
                ref for ref, arena in zip(self._arena_registry, live)
                if arena is not None]
        return [arena for arena in live if arena is not None]

    def release_buffers(self) -> int:
        """Drop every pooled buffer of every live arena; returns bytes freed.

        The explicit teardown hook for long-lived plans: without it, the
        buffers of every thread that ever executed this segment stay pooled
        for as long as the plan (and the thread) lives — e.g. a retired
        serving snapshot would keep batch-shaped buffers of every batcher
        thread alive.  Releasing is safe while a frame is still executing:
        the frame's in-flight buffers stay alive through its own references,
        and the next ``take`` simply reallocates.
        """
        freed = 0
        for arena in self.arenas():
            freed += arena.nbytes()
            arena.clear()
        return freed

    def execute(self, x: np.ndarray, batch: np.ndarray, num_graphs: int,
                edge_index: Optional[np.ndarray] = None,
                pos: Optional[np.ndarray] = None,
                pooled: bool = False,
                observer: Optional[Callable] = None) -> PlanRun:
        """Run every step over the given state; returns the final run state.

        The returned state's ``x`` may alias an arena buffer (checked via
        ``x_in_arena``); use :meth:`execute_out` when the result must survive
        the next call.  ``observer(step, run)`` is invoked after every step —
        the calibration hook (see :func:`repro.runtime.quantize.calibrate`);
        leave it ``None`` on the serving hot path.
        """
        x = np.asarray(x)
        if x.dtype != self.dtype:
            x = x.astype(self.dtype)
        batch = np.asarray(batch, dtype=np.int64)
        if pos is not None:
            pos = np.asarray(pos)
            if pos.dtype != self.dtype:
                pos = pos.astype(self.dtype)
        if edge_index is not None:
            edge_index = np.asarray(edge_index, dtype=np.int64)
        run = PlanRun(x, batch, int(num_graphs), edge_index, pos, bool(pooled),
                      self.arena, self.backend)
        if observer is None:
            for step in self.steps:
                step(run)
        else:
            for step in self.steps:
                step(run)
                observer(step, run)
        return run

    def execute_out(self, x: np.ndarray, batch: np.ndarray, num_graphs: int,
                    edge_index: Optional[np.ndarray] = None,
                    pos: Optional[np.ndarray] = None,
                    pooled: bool = False) -> PlanRun:
        """:meth:`execute`, with the output detached from the arena.

        The final ``x`` is copied out when (and only when) it aliases an
        arena buffer, so results handed to callers can never be overwritten
        by the next frame — the no-cross-frame-aliasing guarantee the serving
        engine relies on.  Quantized state never leaves a plan: a segment
        ending on integer features dequantizes them to float32 here, so the
        wire/collate/snapshot contracts are precision-agnostic.
        """
        run = self.execute(x, batch, num_graphs, edge_index=edge_index,
                           pos=pos, pooled=pooled)
        if run.x.dtype.kind in "iu" and run.x_scale is not None:
            out = np.empty(run.x.shape, dtype=np.float32)
            self.backend.dequantize(run.x, run.x_scale, out)
            run.x = out
            run.x_in_arena = False
            run.x_scale = None
            run.x_qmax = None
        elif run.x_in_arena:
            run.x = run.x.copy()
            run.x_in_arena = False
        return run


def _compile_mlp(mlp: MLP, dtype: np.dtype, slot_prefix: str
                 ) -> List[Callable[[PlanRun], None]]:
    """Compile an eval-mode MLP into fused linear steps.

    Supports the layer vocabulary that appears in architecture models
    (Linear / ReLU / LeakyReLU / Identity / Dropout in eval mode or with
    ``p=0``).  Anything that would make eager execution non-deterministic or
    stateful — an *active* Dropout (``p>0`` and ``training=True``),
    BatchNorm, LayerNorm — is not compiled; callers fall back to eager
    execution, which keeps the two runtimes observably equivalent.
    """
    steps: List[Callable[[PlanRun], None]] = []
    pending: Optional[Linear] = None
    index = 0

    def flush(activation: Optional[str] = None, slope: float = 0.2) -> None:
        nonlocal pending, index
        if pending is not None:
            steps.append(_LinearStep(pending, dtype,
                                     (slot_prefix, index, "linear"),
                                     activation=activation,
                                     negative_slope=slope))
            pending = None
        elif activation == "relu":
            steps.append(_ReluStep((slot_prefix, index, "relu")))
        elif activation is not None:
            raise PlanCompileError(
                "cannot compile a standalone non-ReLU activation")
        index += 1

    for layer in mlp.net:
        if isinstance(layer, Linear):
            flush()
            pending = layer
        elif isinstance(layer, ReLU):
            flush(activation="relu")
        elif isinstance(layer, LeakyReLU):
            if pending is None:
                raise PlanCompileError(
                    "cannot compile a standalone LeakyReLU activation")
            flush(activation="leaky_relu", slope=layer.negative_slope)
        elif isinstance(layer, Dropout):
            if layer.p > 0 and layer.training:
                # Eager execution would apply random masks per frame here;
                # compiling it away would silently diverge from eager.
                raise PlanCompileError(
                    "cannot compile an active Dropout layer (p>0 in "
                    "training mode) — call model.eval() first")
            continue
        elif isinstance(layer, Identity):
            continue  # no-op
        else:
            raise PlanCompileError(
                f"cannot compile classifier layer {type(layer).__name__}")
    flush()
    return steps


def _compile_operation(operation: Operation, index: int, x_version: int,
                       dtype: np.dtype
                       ) -> "tuple[List[Callable[[PlanRun], None]], int]":
    """Compile one architecture operation; returns (steps, new x_version)."""
    if isinstance(operation, (IdentityOp, CommunicateOp)):
        return [], x_version  # canonicalized away: no runtime cost at all
    if isinstance(operation, SampleOp):
        return [_SampleStep(operation, x_version)], x_version
    if isinstance(operation, AggregateOp):
        reduce = str(operation.spec.function)
        return [_AggregateStep(reduce, (index, "msgs"), (index, "out"))], \
            x_version + 1
    if isinstance(operation, CombineOp):
        return [_LinearStep(operation.linear, dtype, (index, "linear"),
                            activation="relu")], x_version + 1
    if isinstance(operation, GlobalPoolOp):
        mode = str(operation.spec.function)
        return [_GlobalPoolStep(mode, (index, "pool"), (index, "scratch"))], \
            x_version + 1
    if isinstance(operation, ClassifierOp):
        steps: List[Callable[[PlanRun], None]] = [
            _EnsurePooledStep((index, "defensive-pool"),
                              (index, "defensive-scratch"))]
        steps.extend(_compile_mlp(operation.mlp, dtype, f"classifier{index}"))
        return steps, x_version + 1
    raise PlanCompileError(
        f"cannot compile operation {type(operation).__name__}")


def _compile_quant_mlp(mlp: MLP, slot_prefix: str, calib: SegmentCalibration,
                       in_amax: float):
    """Quantized twin of :func:`_compile_mlp`; returns (steps, final amax).

    The running ``amax`` threads each step's calibrated output range into
    the next step's input scale; slots are identical to the float compile,
    which is what aligns calibration keys between the float plan that
    observed and the quantized plan that consumes.
    """
    steps: List[Callable[[PlanRun], None]] = []
    pending: Optional[Linear] = None
    index = 0
    amax = in_amax

    def flush(activation: Optional[str] = None, slope: float = 0.2) -> None:
        nonlocal pending, index, amax
        if pending is not None:
            key = (slot_prefix, index, "linear")
            out_amax = calib.step_amax.get(key, amax)
            steps.append(_QuantLinearStep(pending, key, activation, slope,
                                          amax, out_amax))
            amax = out_amax
            pending = None
        elif activation == "relu":
            key = (slot_prefix, index, "relu")
            steps.append(_ReluStep(key))
            amax = calib.step_amax.get(key, amax)
        elif activation is not None:
            raise PlanCompileError(
                "cannot compile a standalone non-ReLU activation")
        index += 1

    for layer in mlp.net:
        if isinstance(layer, Linear):
            flush()
            pending = layer
        elif isinstance(layer, ReLU):
            flush(activation="relu")
        elif isinstance(layer, LeakyReLU):
            if pending is None:
                raise PlanCompileError(
                    "cannot compile a standalone LeakyReLU activation")
            flush(activation="leaky_relu", slope=layer.negative_slope)
        elif isinstance(layer, Dropout):
            if layer.p > 0 and layer.training:
                raise PlanCompileError(
                    "cannot compile an active Dropout layer (p>0 in "
                    "training mode) — call model.eval() first")
            continue
        elif isinstance(layer, Identity):
            continue
        else:
            raise PlanCompileError(
                f"cannot compile classifier layer {type(layer).__name__}")
    flush()
    return steps, amax


def _compile_quant_operation(operation: Operation, index: int, x_version: int,
                             calib: SegmentCalibration, amax: float):
    """Quantized twin of :func:`_compile_operation`.

    Returns ``(steps, new x_version, running activation amax)``.  Missing
    calibration keys (a step the float plan never materialized) inherit the
    running amax — a safe upper-bound guess that keeps compilation total.
    """
    if isinstance(operation, (IdentityOp, CommunicateOp)):
        return [], x_version, amax
    if isinstance(operation, SampleOp):
        return [_SampleStep(operation, x_version)], x_version, amax
    if isinstance(operation, AggregateOp):
        reduce = str(operation.spec.function)
        key = (index, "out")
        out_amax = calib.step_amax.get(key, 2.0 * amax)
        return [_QuantAggregateStep(reduce, (index, "msgs"), key,
                                    out_amax)], x_version + 1, out_amax
    if isinstance(operation, CombineOp):
        key = (index, "linear")
        out_amax = calib.step_amax.get(key, amax)
        return [_QuantLinearStep(operation.linear, key, "relu", 0.2, amax,
                                 out_amax)], x_version + 1, out_amax
    if isinstance(operation, GlobalPoolOp):
        mode = str(operation.spec.function)
        key = (index, "pool")
        steps = [_QuantPoolStep(mode, key, (index, "scratch"))]
        return steps, x_version + 1, calib.step_amax.get(key, amax)
    if isinstance(operation, ClassifierOp):
        key = (index, "defensive-pool")
        steps = [_QuantEnsurePooledStep(key, (index, "defensive-scratch"))]
        amax = calib.step_amax.get(key, amax)
        mlp_steps, amax = _compile_quant_mlp(operation.mlp,
                                             f"classifier{index}", calib,
                                             amax)
        steps.extend(mlp_steps)
        return steps, x_version + 1, amax
    raise PlanCompileError(
        f"cannot compile operation {type(operation).__name__}")


def _compile_segment(model, start: int, end: Optional[int],
                     include_classifier: bool, dtype: np.dtype,
                     backend: KernelBackend,
                     calib: Optional[SegmentCalibration] = None
                     ) -> PlanSegment:
    operations = model._operations
    end = len(operations) if end is None else end
    steps: List[Callable[[PlanRun], None]] = []
    x_version = 0
    if calib is None:
        for index in range(start, end):
            op_steps, x_version = _compile_operation(operations[index], index,
                                                     x_version, dtype)
            steps.extend(op_steps)
        if include_classifier:
            op_steps, x_version = _compile_operation(model.classifier,
                                                     len(operations),
                                                     x_version, dtype)
            steps.extend(op_steps)
        return PlanSegment(steps, dtype, backend)
    amax = calib.input_amax
    steps.append(_QuantizeStep(amax_to_scale(amax), ("entry", "quantize")))
    for index in range(start, end):
        op_steps, x_version, amax = _compile_quant_operation(
            operations[index], index, x_version, calib, amax)
        steps.extend(op_steps)
    if include_classifier:
        op_steps, x_version, amax = _compile_quant_operation(
            model.classifier, len(operations), x_version, calib, amax)
        steps.extend(op_steps)
    # The segment's final linear emits float32 (logits for classifier
    # segments, wire states for device segments) instead of requantizing —
    # exits are float either way, so skip the lossy extra round trip.
    if steps and isinstance(steps[-1], _QuantLinearStep):
        steps[-1].requantize = False
    return PlanSegment(steps, dtype, backend)


#: All compilable plan segments (the default for :func:`compile_plan`).
SEGMENTS = ("full", "device", "edge")


class InferencePlan:
    """Compiled form of one :class:`~repro.core.executor.ArchitectureModel`.

    Up to three independently-compiled segments (each with per-thread buffer
    arenas); ``segments`` selects which are built, so serving callables that
    only ever resume the edge side don't carry dead device/full step lists:

    ``full``
        Every operation plus the classifier — direct inference.
    ``device``
        Operations before the first ``Communicate`` (``None`` split: the
        whole architecture including the classifier, matching eager
        ``split_callables`` semantics for Device-Only deployments).
    ``edge``
        Operations after the first ``Communicate`` plus the classifier — the
        serving hot path the edge server executes per frame or per
        micro-batch.  (``None`` split: aliases ``full``, mirroring the eager
        edge callable which re-runs the whole architecture for unfinished
        frames.)
    """

    def __init__(self, model, dtype=np.float64,
                 segments: Sequence[str] = SEGMENTS,
                 backend=None,
                 calibration: Optional[PlanCalibration] = None) -> None:
        if not segments:
            raise ValueError(
                f"segments must name at least one of {SEGMENTS}")
        unknown = set(segments) - set(SEGMENTS)
        if unknown:
            raise ValueError(f"unknown plan segments {sorted(unknown)} "
                             f"(expected a subset of {SEGMENTS})")
        self.model = model
        self.dtype = np.dtype(dtype)
        if not np.issubdtype(self.dtype, np.floating):
            raise ValueError(f"plan dtype must be floating, got {self.dtype}")
        self.backend = resolve_backend(backend)
        self.calibration = calibration
        #: ``"int8"`` for calibrated quantized plans, else the dtype name —
        #: the carrier ``dtype`` stays float either way (quantized segments
        #: take and emit float32 states).
        self.precision = (PRECISION_INT8 if calibration is not None
                          else self.dtype.name)
        self.split = model.first_communicate_index()
        self.full = self.device = self.edge = None

        def calib_for(name: str) -> Optional[SegmentCalibration]:
            return None if calibration is None else calibration.segment(name)

        if self.split is None:
            # Everything aliases the full architecture: device runs it all,
            # and an (unfinished) frame on the edge re-runs it all too.
            self.full = self.device = self.edge = _compile_segment(
                model, 0, None, True, self.dtype, self.backend,
                calib_for("full"))
            return
        if "full" in segments:
            self.full = _compile_segment(model, 0, None, True, self.dtype,
                                         self.backend, calib_for("full"))
        if "device" in segments:
            self.device = _compile_segment(model, 0, self.split, False,
                                           self.dtype, self.backend,
                                           calib_for("device"))
        if "edge" in segments:
            self.edge = _compile_segment(model, self.split + 1, None, True,
                                         self.dtype, self.backend,
                                         calib_for("edge"))

    # ------------------------------------------------------------------
    def segments(self) -> List[PlanSegment]:
        """The distinct compiled segments of this plan (aliases deduplicated)."""
        unique: List[PlanSegment] = []
        for segment in (self.full, self.device, self.edge):
            if segment is not None and all(segment is not seen
                                           for seen in unique):
                unique.append(segment)
        return unique

    def release_buffers(self) -> int:
        """Release every segment's pooled arena buffers; returns bytes freed.

        Wired into serving-snapshot teardown: a plan retired from the
        serving table frees its steady-state buffers immediately instead of
        holding them until the last executing thread dies.  The plan stays
        usable — the next execution just reallocates its buffers.
        """
        return sum(segment.release_buffers() for segment in self.segments())

    def arena_nbytes(self) -> int:
        """Total bytes currently pooled across all segments and threads."""
        return sum(arena.nbytes() for segment in self.segments()
                   for arena in segment.arenas())

    # ------------------------------------------------------------------
    def forward(self, batch) -> np.ndarray:
        """Full autograd-free forward pass; returns per-graph logits."""
        if self.full is None:
            raise RuntimeError(
                "this plan was compiled without its 'full' segment")
        run = self.full.execute_out(batch.x, batch.batch, batch.num_graphs,
                                    edge_index=batch.edge_index,
                                    pos=batch.pos)
        return run.x

    __call__ = forward


def compile_plan(model, dtype=np.float64,
                 segments: Sequence[str] = SEGMENTS,
                 backend=None,
                 calibration: Optional[PlanCalibration] = None
                 ) -> InferencePlan:
    """Compile ``model`` into an :class:`InferencePlan`.

    ``segments`` restricts compilation to the execution segments the caller
    will actually run (compile errors are only raised for operations inside
    the requested segments).  Raises :class:`PlanCompileError` when a
    requested segment contains a construct the compiled runtime does not
    support (callers requesting ``runtime="auto"`` then fall back to eager
    execution).

    ``backend`` selects the kernel backend (a name from
    :data:`~repro.runtime.backends.KERNEL_BACKENDS`, a live
    :class:`~repro.runtime.backends.KernelBackend`, or ``None`` for
    ``"auto"``).  Passing a :class:`~repro.runtime.quantize.PlanCalibration`
    switches the requested segments to the int8 quantized path; ``dtype``
    then only sets the float carrier (use float32) — quantized segments
    still take and emit float32 states, so every serving contract above the
    plan is unchanged.
    """
    return InferencePlan(model, dtype=dtype, segments=segments,
                         backend=backend, calibration=calibration)
