"""Shard worker runtime: shared-memory frame transport + worker process main.

This module is the process-side half of the process-parallel serving tier
(see :mod:`repro.serving.sharding` for the in-server pool that drives it).
A *shard* is a worker process holding its own
:class:`~repro.serving.repository.ModelRepository` — its own models,
compiled plans and buffer arenas — so N shards execute N frames truly in
parallel on N cores, instead of time-slicing one GIL.

Transport
---------
Frames cross the process boundary as whole :class:`~repro.system.messages.
Message` envelopes in the versioned **raw** wire framing (the same layout the
socket wire speaks): a JSON header plus each array's C-contiguous bytes.
Nothing is pickled and nothing is re-encoded — moving a frame into a shard
costs the raw-framing header plus straight memcpys of the array payloads.

Two transports carry the framed bytes:

``"shm"`` (default)
    A pair of preallocated single-producer/single-consumer ring buffers in
    ``multiprocessing.shared_memory`` per shard (request ring + response
    ring).  Each message is written as ``[u32 length][raw frame]``; the ring
    head is published once per *complete* message, so the consumer always
    observes whole envelopes.  Layout::

        [ head u32 | pad | tail u32 | pad | ... data (capacity bytes) ... ]
           (head/tail are modulo-2^32 byte counters; the data region is
            addressed modulo the capacity, messages may wrap)

    The ring is deliberately lock-free: only the producer stores ``head``
    and only the consumer stores ``tail`` (each a single aligned 4-byte
    write), and waiting sides poll with a short spin-then-sleep loop.  No
    cross-process lock or condition means a worker killed at *any* point —
    even mid-wait — can never deadlock the parent; ``multiprocessing``'s
    ``Condition.notify`` by contrast blocks until woken waiters acknowledge
    and wedges forever when a waiter was SIGKILLed.

    Ordering caveat: publishing the head after the payload memcpy relies on
    store ordering the producer's CPU provides — guaranteed on x86/x86-64
    (TSO) but not architecturally on weakly-ordered ISAs (pure Python has
    no release fence to offer).  In CPython practice the interpreter's own
    synchronization between the stores makes reordering unobserved, and a
    torn read would surface loudly as an undecodable envelope (the shard is
    then treated as crashed, never as silently wrong data).  Deployments on
    weakly-ordered hardware that want an architectural guarantee should use
    ``transport="pipe"``, which inherits the kernel's pipe semantics.

``"pipe"``
    The same length-framed envelopes over ``multiprocessing.Pipe`` — the
    portability fallback for platforms without POSIX shared memory, and a
    useful A/B for the ring transport.

Crash behavior: the parent-side pool detects a dead worker (reader timeout +
liveness poll) and fails that shard's in-flight requests with
:class:`ShardCrashedError` — a :class:`ConnectionError` — so a crashed shard
produces clean per-frame errors instead of hung clients.  A worker likewise
exits when its parent disappears.
"""

from __future__ import annotations

import os
import struct
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

try:  # Not every platform ships POSIX shared memory (notably some BSDs
    # and restricted containers); the serving layer then falls back to
    # in-process serving (or the pipe transport when asked for explicitly).
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform-dependent
    _shared_memory = None

#: 4-byte big-endian length prefix in front of every ring/pipe message.
_FRAME_PREFIX = ">I"
_FRAME_PREFIX_BYTES = struct.calcsize(_FRAME_PREFIX)
#: Ring header: head (offset 0) and tail (offset 8) u32 byte counters,
#: each padded to 8 bytes so the two writers never share a cache line word.
_RING_HEADER = 16
#: Counters wrap modulo 2^32; capacities stay far below that.
_COUNTER_MASK = 0xFFFFFFFF
#: How long a waiting side spins before it starts sleeping (seconds).
_SPIN_S = 100e-6
#: Sleep quantum once spinning gave up — bounds idle CPU burn while keeping
#: worst-case added latency well under typical frame service times.
_POLL_S = 500e-6

#: Transport identifiers accepted by ``ShardingConfig.transport``.
SHARD_TRANSPORT_SHM = "shm"
SHARD_TRANSPORT_PIPE = "pipe"
SHARD_TRANSPORTS = (SHARD_TRANSPORT_SHM, SHARD_TRANSPORT_PIPE)


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` exists on this platform."""
    return _shared_memory is not None


def transport_available(transport: str) -> bool:
    """Whether ``transport`` can be used on this platform."""
    if transport == SHARD_TRANSPORT_SHM:
        return shm_available()
    return transport == SHARD_TRANSPORT_PIPE


class ShardCrashedError(ConnectionError):
    """A shard worker process died (or became unreachable) mid-request."""


@dataclass
class ShardStats:
    """Parent-side view of one shard's serving counters.

    Folded into :class:`~repro.system.engine.EdgeServerStats` by a sharded
    server so operators see per-core utilization and crashed shards in the
    same snapshot as the socket-level statistics.
    """

    shard_id: int
    pid: Optional[int]
    alive: bool
    frames: int
    batches: int
    errors: int
    #: Engine time the shard reported for its executed frames (excludes
    #: transport; the server's ``mean_service_time_s`` includes it).
    service_time_s: float
    bytes_to_shard: int
    bytes_from_shard: int
    #: Snapshot version the shard last acknowledged.
    snapshot_version: int
    #: Times this slot was respawned by the supervisor (0 = original worker).
    restarts: int = 0
    #: True once the supervisor stopped respawning this slot (crash loop).
    quarantined: bool = False
    #: Why the worker behind this slot most recently died, if it ever did.
    last_death_reason: Optional[str] = None


# ----------------------------------------------------------------------
# Shared-memory ring transport
# ----------------------------------------------------------------------
class _RingHandle:
    """Picklable attachment info for one ring (crosses via Process args)."""

    __slots__ = ("name", "capacity")

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = capacity


class ShmRing:
    """Single-producer/single-consumer byte ring over shared memory.

    Exactly one process writes (``send_bytes``) and exactly one reads
    (``recv_bytes``); multi-threaded producers must serialize externally
    (the pool holds a per-shard send lock).  Head and tail are modulo-2^32
    byte counters in the block header; only the producer ever stores the
    head and only the consumer the tail — each a single aligned 4-byte
    write — and the head is published once per *complete* message, so a
    reader never observes a partial envelope.  Waiting is spin-then-sleep
    polling: with no cross-process lock anywhere, a peer killed at any
    point can never wedge this side (see the module docstring).
    """

    def __init__(self, shm, capacity: int, owner: bool) -> None:
        self._shm = shm
        self._buf = shm.buf
        self.capacity = capacity
        self._owner = owner
        self._closed = False

    # -- construction --------------------------------------------------
    @classmethod
    def create(cls, capacity: int) -> "ShmRing":
        if _shared_memory is None:  # pragma: no cover - platform-dependent
            raise RuntimeError("multiprocessing.shared_memory is not "
                               "available on this platform")
        # Power-of-two capacity keeps ``position % capacity`` continuous
        # across the u32 counter wraparound (2^32 is a multiple of the
        # capacity, so the mapping never jumps).
        capacity = 1 << max(int(capacity) - 1, 1).bit_length()
        shm = _shared_memory.SharedMemory(create=True,
                                          size=_RING_HEADER + capacity)
        shm.buf[:_RING_HEADER] = b"\x00" * _RING_HEADER
        return cls(shm, capacity, owner=True)

    def handle(self) -> _RingHandle:
        return _RingHandle(self._shm.name, self.capacity)

    @classmethod
    def attach(cls, handle: _RingHandle) -> "ShmRing":
        # Attaching re-registers the segment with the resource tracker the
        # worker inherits from the parent; that tracker is shared and its
        # cache is a set, so the parent's single unlink() still retires the
        # segment exactly once — no extra bookkeeping needed here.
        shm = _shared_memory.SharedMemory(name=handle.name)
        return cls(shm, handle.capacity, owner=False)

    # -- counters ------------------------------------------------------
    def _head(self) -> int:
        return struct.unpack_from("<I", self._buf, 0)[0]

    def _tail(self) -> int:
        return struct.unpack_from("<I", self._buf, 8)[0]

    def _set_head(self, value: int) -> None:
        struct.pack_into("<I", self._buf, 0, value & _COUNTER_MASK)

    def _set_tail(self, value: int) -> None:
        struct.pack_into("<I", self._buf, 8, value & _COUNTER_MASK)

    def _used(self) -> int:
        return (self._head() - self._tail()) & _COUNTER_MASK

    # -- data region ---------------------------------------------------
    def _copy_in(self, data, position: int) -> None:
        offset = position % self.capacity
        first = min(len(data), self.capacity - offset)
        start = _RING_HEADER + offset
        self._buf[start:start + first] = data[:first]
        if first < len(data):
            rest = len(data) - first
            self._buf[_RING_HEADER:_RING_HEADER + rest] = data[first:]

    def _copy_out(self, position: int, size: int) -> bytes:
        offset = position % self.capacity
        first = min(size, self.capacity - offset)
        start = _RING_HEADER + offset
        chunk = bytes(self._buf[start:start + first])
        if first < size:
            rest = size - first
            chunk += bytes(self._buf[_RING_HEADER:_RING_HEADER + rest])
        return chunk

    # -- blocking send / recv ------------------------------------------
    @staticmethod
    def _wait(predicate, deadline: float) -> bool:
        """Spin briefly, then sleep-poll ``predicate`` until the deadline."""
        spin_until = time.monotonic() + _SPIN_S
        while True:
            if predicate():
                return True
            now = time.monotonic()
            if now >= deadline:
                return False
            if now >= spin_until:
                time.sleep(min(_POLL_S, max(deadline - now, 0.0)))

    def send_bytes(self, blob: bytes, timeout: float = 30.0) -> int:
        """Append one length-prefixed message; returns bytes written.

        Raises :class:`ValueError` when the message can never fit (larger
        than the whole ring) and :class:`TimeoutError` when the consumer
        did not free enough space within ``timeout`` — the caller maps
        that onto shard-crash handling.
        """
        needed = _FRAME_PREFIX_BYTES + len(blob)
        if needed > self.capacity:
            raise ValueError(
                f"message of {len(blob)} bytes cannot fit the "
                f"{self.capacity}-byte shard ring — raise "
                "ShardingConfig.ring_bytes for frames this large")
        deadline = time.monotonic() + timeout
        if not self._wait(lambda: self.capacity - self._used() >= needed,
                          deadline):
            raise TimeoutError(
                f"shard ring full for {timeout:.1f}s (consumer stalled "
                "or dead)")
        head = self._head()
        self._copy_in(struct.pack(_FRAME_PREFIX, len(blob)), head)
        self._copy_in(blob, head + _FRAME_PREFIX_BYTES)
        # Publishing the head is the commit point: a single aligned 4-byte
        # store, issued only after the payload is fully in place.
        self._set_head(head + needed)
        return needed

    def recv_bytes(self, timeout: float = 0.2) -> Optional[bytes]:
        """Pop one message, or ``None`` when nothing arrived in ``timeout``.

        Returning ``None`` (instead of raising) lets the caller interleave
        liveness checks of the peer process with the wait.
        """
        deadline = time.monotonic() + timeout
        if not self._wait(lambda: self._used() >= _FRAME_PREFIX_BYTES,
                          deadline):
            return None
        tail = self._tail()
        (length,) = struct.unpack(
            _FRAME_PREFIX, self._copy_out(tail, _FRAME_PREFIX_BYTES))
        # The producer publishes the head once per whole message, so the
        # payload is guaranteed present the moment the prefix is.
        blob = self._copy_out(tail + _FRAME_PREFIX_BYTES, length)
        self._set_tail(tail + _FRAME_PREFIX_BYTES + length)
        return blob

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._buf = None
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - teardown race
            # BufferError: a reader thread still holds a view for a few
            # more microseconds; the mapping is reclaimed at process exit.
            pass

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass


# ----------------------------------------------------------------------
# Channel: one shard's bidirectional transport endpoint
# ----------------------------------------------------------------------
class ShardChannel:
    """One side of a shard's request/response transport.

    The parent sends requests and receives responses; the worker side is
    constructed with the directions swapped (see :func:`attach_channel`),
    so both ends expose the same ``send_bytes``/``recv_bytes`` surface.
    """

    def __init__(self, send_ring, recv_ring, *, owner: bool) -> None:
        self._send = send_ring
        self._recv = recv_ring
        self._owner = owner

    @property
    def max_message_bytes(self) -> Optional[int]:
        """Largest message this channel can carry (``None`` = unbounded).

        Callers shipping multi-envelope sequences (batches) must check
        every envelope against this *before* sending the first one — a
        mid-sequence size failure would leave the peer waiting for
        envelopes that never come.
        """
        capacity = getattr(self._send, "capacity", None)
        return None if capacity is None else capacity - _FRAME_PREFIX_BYTES

    def send_bytes(self, blob: bytes, timeout: float = 30.0) -> int:
        return self._send.send_bytes(blob, timeout=timeout)

    def recv_bytes(self, timeout: float = 0.2) -> Optional[bytes]:
        return self._recv.recv_bytes(timeout=timeout)

    def close(self) -> None:
        self._send.close()
        self._recv.close()

    def unlink(self) -> None:
        self._send.unlink()
        self._recv.unlink()


class _PipeEndpoint:
    """Length-delimited messages over one half of a ``multiprocessing.Pipe``.

    Limitation vs the ring transport: ``Connection.send_bytes`` offers no
    write timeout, so when the OS pipe buffer is full (a live worker that
    stopped draining) a send blocks until the kernel frees space — the
    ``timeout`` parameter only bounds failures the OS reports (a closed
    peer raises immediately).  The shm ring transport honors the timeout
    exactly; the pipe transport is the portability fallback.
    """

    def __init__(self, conn) -> None:
        self._conn = conn

    def send_bytes(self, blob: bytes, timeout: float = 30.0) -> int:
        try:
            self._conn.send_bytes(blob)
        except (BrokenPipeError, OSError) as exc:
            raise TimeoutError(f"shard pipe closed: {exc}") from exc
        return len(blob) + _FRAME_PREFIX_BYTES

    def recv_bytes(self, timeout: float = 0.2) -> Optional[bytes]:
        try:
            if not self._conn.poll(timeout):
                return None
            return self._conn.recv_bytes()
        except (EOFError, BrokenPipeError, OSError):
            # Treated exactly like a silent ring: the caller's liveness
            # poll turns a dead peer into ShardCrashedError.
            return None

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - teardown race
            pass

    def unlink(self) -> None:  # pipes have no backing object to unlink
        pass


def create_channel(ctx, transport: str, capacity: int
                   ) -> Tuple[ShardChannel, Tuple]:
    """Build a parent-side channel plus the picklable worker-side spec.

    The spec travels to the worker through ``Process`` args (the only
    context in which multiprocessing synchronization primitives pickle)
    and is turned back into a channel by :func:`attach_channel`.
    """
    if transport == SHARD_TRANSPORT_SHM:
        request = ShmRing.create(capacity)
        response = ShmRing.create(capacity)
        parent = ShardChannel(request, response, owner=True)
        spec = (SHARD_TRANSPORT_SHM, request.handle(), response.handle())
        return parent, spec
    if transport == SHARD_TRANSPORT_PIPE:
        request_rx, request_tx = ctx.Pipe(duplex=False)
        response_rx, response_tx = ctx.Pipe(duplex=False)
        parent = ShardChannel(_PipeEndpoint(request_tx),
                              _PipeEndpoint(response_rx), owner=True)
        spec = (SHARD_TRANSPORT_PIPE, request_rx, response_tx)
        return parent, spec
    raise ValueError(f"unknown shard transport {transport!r} "
                     f"(expected one of {SHARD_TRANSPORTS})")


def attach_channel(spec: Tuple) -> ShardChannel:
    """Worker-side channel from a :func:`create_channel` spec."""
    kind = spec[0]
    if kind == SHARD_TRANSPORT_SHM:
        _, request_handle, response_handle = spec
        return ShardChannel(ShmRing.attach(response_handle),
                            ShmRing.attach(request_handle), owner=False)
    if kind == SHARD_TRANSPORT_PIPE:
        _, request_rx, response_tx = spec
        return ShardChannel(_PipeEndpoint(response_tx),
                            _PipeEndpoint(request_rx), owner=False)
    raise ValueError(f"unknown shard channel spec {kind!r}")


# ----------------------------------------------------------------------
# Zoo payloads (JSON across the process boundary — no pickled live objects)
# ----------------------------------------------------------------------
def zoo_to_payload(zoo) -> Dict:
    """JSON form of an :class:`~repro.core.zoo.ArchitectureZoo`."""
    return {"entries": [entry.to_dict() for entry in zoo]}


def zoo_from_payload(payload: Dict):
    from ..core.zoo import ArchitectureZoo, ZooEntry
    return ArchitectureZoo([ZooEntry.from_dict(entry)
                            for entry in payload["entries"]])


# ----------------------------------------------------------------------
# Worker process main
# ----------------------------------------------------------------------
def _parent_alive() -> bool:
    import multiprocessing
    parent = multiprocessing.parent_process()
    return parent is None or parent.is_alive()


class PeerClosed(Exception):
    """Raised by a transport's ``read_envelope`` on a clean peer close.

    Distinguishes an orderly shutdown (loop just exits) from undecodable
    bytes or a mid-frame cut (loop sends one error envelope, then exits).
    """


class ReplicaCore:
    """Transport-agnostic replica worker: bootstrap + message loop.

    Everything a shard worker does *between* transport reads and writes
    lives here — building the repository from a JSON bootstrap, executing
    frames/batches, installing replicated snapshots, answering heartbeats —
    parameterized over ``read_envelope``/``reply`` callables.  The
    shared-memory shard worker (:func:`_shard_main`) and the TCP cluster
    node (:mod:`repro.runtime.node`) are the same core behind different
    transports, so their guarantees (same seed → bit-identical weights,
    idempotent publish, pin checks) are one implementation, not two.
    """

    def __init__(self, bootstrap: Dict) -> None:
        # Deferred imports: this module must stay importable without
        # dragging the serving facade in (repro.serving imports
        # repro.runtime).
        from ..serving.config import RuntimeConfig
        from ..serving.repository import ModelRepository
        self.repository = ModelRepository(
            in_dim=int(bootstrap["in_dim"]),
            num_classes=int(bootstrap["num_classes"]),
            runtime=RuntimeConfig.from_dict(bootstrap["runtime"]),
            seed=int(bootstrap["seed"]),
            retain=int(bootstrap["retain"]))
        self.repository.publish(zoo_from_payload(bootstrap["zoo"]),
                                version=int(bootstrap["version"]))
        #: Frames served over this core's lifetime (reported in pongs).
        self.frames_served = 0

    def ready_meta(self, ident: int) -> Dict:
        """Metadata of the READY envelope announcing this core serves."""
        return {"pid": os.getpid(), "shard_id": ident,
                "version": self.repository.version}

    def serve(self, read_envelope, reply, peer_alive=_parent_alive) -> None:
        """Run the message loop until ``stop``, a dead peer, or bad bytes.

        ``read_envelope(timeout)`` returns a decoded ``Message`` or ``None``
        on timeout (raising on transport/protocol failure); ``reply(msg)``
        ships one envelope back; ``peer_alive()`` is polled on idle so an
        orphaned worker exits instead of spinning forever.
        """
        from ..serving.repository import SNAPSHOT_META_KEY
        from ..system.messages import (KIND_ERROR, KIND_FRAME,
                                       KIND_RESULT, KIND_STOP, Message,
                                       NODE_KIND_PING, NODE_KIND_PONG,
                                       SHARD_KIND_BATCH,
                                       SHARD_KIND_PUBLISH,
                                       SHARD_KIND_PUBLISHED)
        repository = self.repository

        def reply_error(corr: int, exc: BaseException,
                        batch_index: Optional[int] = None) -> None:
            import traceback
            try:
                reply(Message(kind=KIND_ERROR, frame_id=corr,
                              meta={"error": f"{type(exc).__name__}: {exc}",
                                    "traceback": traceback.format_exc()},
                              batch_index=batch_index))
            except Exception:  # peer gone: nothing left to tell
                pass

        def check_pin(frame_meta) -> None:
            """Fail loudly on a pin this replica cannot honor yet.

            A frame pinned to a version *newer* than anything this replica
            holds means snapshot replication lagged behind the parent swap
            (a startup race the app guards against); the repository's
            normal fallback would silently answer it from an older
            snapshot — numerically wrong.  An error envelope is the honest
            outcome.
            """
            pinned = (frame_meta.get(SNAPSHOT_META_KEY)
                      if isinstance(frame_meta, dict) else None)
            if pinned is not None and int(pinned) > repository.version:
                raise RuntimeError(
                    f"frame pinned to snapshot v{pinned} but this replica "
                    f"only holds up to v{repository.version} — snapshot "
                    "replication lagged behind the parent swap")

        def handle_frame(message: Message) -> None:
            corr = message.frame_id
            try:
                entry = message.meta["entry"]
                frame_meta = message.meta["frame"]
                check_pin(frame_meta)
                started = time.perf_counter()
                arrays, out_meta = repository.edge_router(entry)(
                    dict(message.arrays), frame_meta)
                elapsed = time.perf_counter() - started
            except Exception as exc:
                reply_error(corr, exc)
                return
            self.frames_served += 1
            try:
                reply(Message(kind=KIND_RESULT, frame_id=corr, arrays=arrays,
                              meta={"frame": out_meta,
                                    "service_time_s": elapsed}))
            except Exception as exc:
                # A result that cannot be shipped (larger than the response
                # ring, parent stalled) must degrade to one per-frame
                # error, not kill the whole worker.
                reply_error(corr, exc)

        def handle_batch(header: Message) -> Optional[Message]:
            """Collect and execute one batch; returns a stray envelope.

            The pool writes the header and its frames back-to-back under
            one send lock, so they are contiguous on the transport.
            Defensively, an envelope that is not one of this batch's frames
            (a desynced parent after a mid-sequence transport failure)
            aborts the batch — the parent already failed it on its side —
            and is handed back to the main loop for normal processing
            instead of being swallowed.
            """
            corr = header.frame_id
            count = int(header.meta["count"])
            entry = header.meta["entry"]
            requests = []
            deadline = time.monotonic() + 30.0
            while len(requests) < count:
                message = read_envelope(0.2)
                if message is not None:
                    if message.kind != KIND_FRAME or message.frame_id != corr:
                        reply_error(corr, RuntimeError(
                            f"batch {corr} truncated: expected frame "
                            f"{len(requests)}/{count}, got a "
                            f"{message.kind!r} envelope"))
                        return message
                    requests.append((dict(message.arrays),
                                     message.meta["frame"]))
                elif time.monotonic() > deadline or not peer_alive():
                    return None  # truncated batch from a dead peer: drop it
            try:
                for _, frame_meta in requests:
                    check_pin(frame_meta)
                started = time.perf_counter()
                results = repository.batch_router(entry)(requests)
                elapsed = time.perf_counter() - started
            except Exception as exc:
                # One error for the whole batch: the parent's batched
                # router raises, and the engine re-runs the frames per
                # frame so the failure isolates to the offending request
                # (the same fallback contract in-process batched serving
                # has).
                reply_error(corr, exc)
                return None
            self.frames_served += len(results)
            share = elapsed / max(len(results), 1)
            for index, (arrays, out_meta) in enumerate(results):
                try:
                    reply(Message(kind=KIND_RESULT, frame_id=corr,
                                  arrays=arrays,
                                  meta={"frame": out_meta,
                                        "service_time_s": share},
                                  batch_index=index))
                except Exception as exc:
                    # Per-index degradation, same rationale as handle_frame.
                    reply_error(corr, exc, batch_index=index)
            return None

        def handle_publish(message: Message) -> None:
            corr = message.frame_id
            version = int(message.meta["version"])
            try:
                if version > repository.version:
                    repository.publish(
                        zoo_from_payload(message.meta["zoo"]),
                        version=version)
                # A re-broadcast of an installed (or older) version is an
                # idempotent no-op: startup re-syncs can never regress
                # state.
                reply(Message(kind=SHARD_KIND_PUBLISHED, frame_id=corr,
                              meta={"version": repository.version}))
            except Exception as exc:
                reply_error(corr, exc)

        def handle_ping(message: Message) -> None:
            try:
                reply(Message(kind=NODE_KIND_PONG,
                              frame_id=message.frame_id,
                              meta={"version": repository.version,
                                    "frames": self.frames_served,
                                    "pid": os.getpid()}))
            except Exception:  # peer gone mid-heartbeat: the probe's
                pass           # timeout handles it

        stray: Optional[Message] = None
        while True:
            if stray is not None:
                message, stray = stray, None
            else:
                try:
                    message = read_envelope(0.5)
                except PeerClosed:  # orderly shutdown: nothing to report
                    break
                except Exception as exc:  # bad bytes: broken protocol
                    reply_error(0, exc)
                    break
                if message is None:
                    if not peer_alive():
                        break  # orphaned worker: exit instead of spinning
                    continue
            if message.kind == KIND_STOP:
                break
            if message.kind == KIND_FRAME:
                handle_frame(message)
            elif message.kind == SHARD_KIND_BATCH:
                stray = handle_batch(message)
            elif message.kind == SHARD_KIND_PUBLISH:
                handle_publish(message)
            elif message.kind == NODE_KIND_PING:
                handle_ping(message)
            # Unknown kinds are ignored: forward compatibility.


def _shard_main(shard_id: int, spec: Tuple, bootstrap: Dict) -> None:
    """Entry point of one shard worker process (spawn-safe, module-level).

    ``bootstrap`` carries everything needed to rebuild the serving state
    from scratch — zoo payload, snapshot version, model dimensions, runtime
    config and seed — so the worker's models are bit-identical twins of the
    parent's (same seed, same builder) and shard execution is numerically
    equivalent to in-process serving.
    """
    from ..system.messages import (KIND_ERROR, Message, SHARD_KIND_READY,
                                   WIRE_FORMAT_RAW, deserialize_message,
                                   serialize_message)

    channel = attach_channel(spec)

    def reply(message: Message) -> None:
        channel.send_bytes(serialize_message(message,
                                             wire_format=WIRE_FORMAT_RAW))

    def read_envelope(timeout: float) -> Optional[Message]:
        blob = channel.recv_bytes(timeout=timeout)
        return None if blob is None else deserialize_message(blob)

    try:
        core = ReplicaCore(bootstrap)
    except Exception as exc:
        import traceback
        try:
            reply(Message(kind=KIND_ERROR, frame_id=0,
                          meta={"error": f"{type(exc).__name__}: {exc}",
                                "traceback": traceback.format_exc()}))
        except Exception:  # parent gone: nothing left to tell
            pass
        channel.close()
        return
    try:
        reply(Message(kind=SHARD_KIND_READY, meta=core.ready_meta(shard_id)))
    except Exception:  # parent died during our bootstrap: nothing to serve
        channel.close()
        return
    core.serve(read_envelope, reply, peer_alive=_parent_alive)
    channel.close()
