"""Raw-ndarray kernels of the compiled inference runtime.

These functions implement exactly the arithmetic of the eager operations in
:mod:`repro.nn.ops` / :mod:`repro.gnn.operations`, but on plain numpy arrays
with caller-provided ``out=`` buffers — no :class:`~repro.nn.tensor.Tensor`
wrappers, no backward closures, no per-op allocations.  Where the eager path
re-derives bookkeeping on every call (is the scatter index sorted? where do
its segments start? which segments are empty?), the compiled plan derives it
once per edge list as a :class:`SegmentInfo` and reuses it for every scatter
over that topology.

Numerical contract: for ``float64`` inputs the kernels reproduce the eager
results exactly whenever the eager path takes its ``reduceat`` fast path
(destination-sorted indices), and within summation-reordering tolerance
(~1e-15 relative) otherwise — the plan canonicalizes unsorted edge lists to
destination order, which the eager fallback (`np.add.at`) does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graph.knn import grouped_knn_distances


# ----------------------------------------------------------------------
# Segment bookkeeping
# ----------------------------------------------------------------------
@dataclass
class SegmentInfo:
    """Pre-derived scatter bookkeeping for one index vector.

    ``is_sorted`` means the index is non-decreasing and in
    ``[0, num_segments)`` — the ``reduceat`` fast-path precondition.  For a
    sorted index, ``starts`` holds the first source row of every segment,
    ``num_valid`` the number of segments starting before the end of the
    source (the sorted suffix of out-of-data segments is empty by
    construction), and ``counts`` the per-segment element counts.  For an
    unsorted index only ``is_sorted=False`` is meaningful and the reduction
    kernels fall back to element-wise ``ufunc.at``, mirroring eager.
    """

    is_sorted: bool
    num_segments: int
    starts: Optional[np.ndarray] = None
    num_valid: int = 0
    counts: Optional[np.ndarray] = None
    has_empty: bool = False
    #: Set when the index is sorted and every segment holds exactly this many
    #: rows: the segments then form a perfect ``(num_segments, k)`` grid and
    #: reductions can reshape instead of ``reduceat`` (which is markedly
    #: slower for min/max and prevents the fused EdgeConv shortcut).
    uniform_k: Optional[int] = None

    @classmethod
    def from_index(cls, index: np.ndarray, num_segments: int) -> "SegmentInfo":
        """Derive the bookkeeping for ``index`` (one scan, reused thereafter)."""
        index = np.asarray(index, dtype=np.int64)
        if index.shape[0] == 0 or num_segments == 0:
            return cls(is_sorted=False, num_segments=num_segments)
        if (np.any(np.diff(index) < 0) or index[0] < 0
                or index[-1] >= num_segments):
            return cls(is_sorted=False, num_segments=num_segments)
        return cls._sorted_info(index, num_segments)

    @classmethod
    def _sorted_info(cls, index: np.ndarray, num_segments: int) -> "SegmentInfo":
        starts = np.searchsorted(index, np.arange(num_segments))
        num_valid = int(np.count_nonzero(starts < index.shape[0]))
        counts = np.bincount(index, minlength=num_segments)
        low, high = int(counts.min()), int(counts.max())
        return cls(is_sorted=True, num_segments=num_segments, starts=starts,
                   num_valid=num_valid, counts=counts, has_empty=low == 0,
                   uniform_k=low if (low == high and low > 0) else None)

    @classmethod
    def single_segment(cls, num_rows: int) -> "SegmentInfo":
        """Bookkeeping for pooling a single graph (every row in segment 0)."""
        return cls(is_sorted=True, num_segments=1,
                   starts=np.zeros(1, dtype=np.int64), num_valid=1,
                   counts=np.array([num_rows], dtype=np.int64),
                   has_empty=num_rows == 0,
                   uniform_k=num_rows if num_rows else None)

    @classmethod
    def from_sorted_index(cls, index: np.ndarray,
                          num_segments: int) -> "SegmentInfo":
        """Like :meth:`from_index` for an index the caller knows is sorted.

        Skips the O(E) sortedness scan; range violations still demote to the
        unsorted fallback so a corrupt index keeps eager error semantics.
        """
        if index.shape[0] == 0 or num_segments == 0:
            return cls(is_sorted=False, num_segments=num_segments)
        if index[0] < 0 or index[-1] >= num_segments:
            return cls(is_sorted=False, num_segments=num_segments)
        return cls._sorted_info(index, num_segments)

    @classmethod
    def uniform(cls, num_segments: int, k: int) -> "SegmentInfo":
        """Bookkeeping for a k-regular index: exactly ``k`` rows per segment.

        This is the static shape of every generated topology
        (:func:`~repro.graph.knn.knn_graph` / ``random_graph`` emit exactly
        ``k`` incoming edges per node, destination-sorted when the batch
        vector is sorted), so the plan can skip the sortedness scan, the
        ``searchsorted`` and the ``bincount`` entirely.
        """
        starts = np.arange(num_segments, dtype=np.int64) * k
        counts = np.full(num_segments, k, dtype=np.int64)
        return cls(is_sorted=True, num_segments=num_segments, starts=starts,
                   num_valid=num_segments, counts=counts, has_empty=False,
                   uniform_k=k)


def canonical_edge_order(edge_index: np.ndarray,
                         num_nodes: int) -> "tuple[np.ndarray, SegmentInfo]":
    """Destination-sort an edge list so scatters always hit the fast path.

    Returns the (possibly re-ordered) edge index together with its
    :class:`SegmentInfo`.  Already-sorted edge lists — everything produced by
    :func:`~repro.graph.knn.knn_graph` on a sorted batch vector, and wire
    states collated from such frames — pass through untouched; anything else
    is stably sorted by destination once, after which every scatter over the
    topology reduces via ``reduceat`` instead of element-wise ``ufunc.at``.
    """
    info = SegmentInfo.from_index(edge_index[1], num_nodes)
    if info.is_sorted:
        return edge_index, info
    order = np.argsort(edge_index[1], kind="stable")
    edge_index = np.ascontiguousarray(edge_index[:, order])
    return edge_index, SegmentInfo.from_index(edge_index[1], num_nodes)


# ----------------------------------------------------------------------
# Segment reductions
# ----------------------------------------------------------------------
def segment_sum(src: np.ndarray, index: np.ndarray, info: SegmentInfo,
                out: np.ndarray) -> np.ndarray:
    """Per-segment sum of rows of ``src`` into ``out`` (fully overwritten)."""
    if info.is_sorted:
        if info.num_valid:
            np.add.reduceat(src, info.starts[:info.num_valid], axis=0,
                            out=out[:info.num_valid])
        if info.num_valid < info.num_segments:
            out[info.num_valid:] = 0.0
        if info.has_empty:
            # reduceat yields src[starts[i]] for an empty segment squeezed
            # between populated ones; zero them like the eager fallback.
            out[info.counts == 0] = 0.0
        return out
    out[:] = 0.0
    if src.shape[0]:
        np.add.at(out, index, src)
    return out


def segment_mean(src: np.ndarray, index: np.ndarray, info: SegmentInfo,
                 out: np.ndarray) -> np.ndarray:
    """Per-segment mean; empty segments produce zeros (eager semantics)."""
    segment_sum(src, index, info, out)
    if info.counts is not None:
        counts = info.counts
    else:
        counts = np.bincount(np.asarray(index, dtype=np.int64),
                             minlength=info.num_segments)
    divisor = np.maximum(counts, 1).astype(out.dtype)
    out /= divisor.reshape((-1,) + (1,) * (out.ndim - 1))
    return out


def segment_max(src: np.ndarray, index: np.ndarray, info: SegmentInfo,
                out: np.ndarray) -> np.ndarray:
    """Per-segment maximum; empty segments produce zeros (eager semantics)."""
    if info.is_sorted:
        if info.num_valid:
            np.maximum.reduceat(src, info.starts[:info.num_valid], axis=0,
                                out=out[:info.num_valid])
        if info.num_valid < info.num_segments:
            out[info.num_valid:] = 0.0
        if info.has_empty:
            out[info.counts == 0] = 0.0
        return out
    out[:] = -np.inf
    if src.shape[0]:
        np.maximum.at(out, index, src)
    np.copyto(out, 0.0, where=~np.isfinite(out))
    return out


def segment_reduce(src: np.ndarray, index: np.ndarray, info: SegmentInfo,
                   reduce: str, out: np.ndarray) -> np.ndarray:
    """Dispatch to the sum/mean/max segment kernels (eager ``scatter`` names)."""
    if reduce in ("add", "sum"):
        return segment_sum(src, index, info, out)
    if reduce == "mean":
        return segment_mean(src, index, info, out)
    if reduce == "max":
        return segment_max(src, index, info, out)
    raise ValueError(f"unknown scatter reduction: {reduce!r}")


def uniform_segment_reduce(grouped: np.ndarray, reduce: str,
                           out: np.ndarray) -> np.ndarray:
    """Reduce a ``(num_segments, k, F)`` grid along ``k`` into ``out``.

    The reshape form of a sorted k-regular segment reduction: numpy's axis
    reductions are substantially faster than ``reduceat`` (especially for
    max) and produce the same values — exactly for ``max``, within summation
    reordering (~1e-15 relative) for ``add``/``mean``.
    """
    if reduce in ("add", "sum"):
        grouped.sum(axis=1, out=out)
    elif reduce == "mean":
        grouped.mean(axis=1, out=out)
    elif reduce == "max":
        grouped.max(axis=1, out=out)
    else:
        raise ValueError(f"unknown scatter reduction: {reduce!r}")
    return out


def edgeconv_uniform(x: np.ndarray, src: np.ndarray, k: int, reduce: str,
                     scratch: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Fused EdgeConv over a k-regular destination-sorted topology.

    The aggregated message is ``reduce_j [x_i, x_j - x_i]`` over each node's
    ``k`` neighbours.  When every node has exactly ``k`` incoming edges in
    destination order, the centre half reduces in closed form — ``max``/
    ``mean`` of ``k`` copies of ``x_i`` is ``x_i`` and ``add`` is ``k·x_i``
    — so only the neighbour-difference half needs a gather (into ``scratch``,
    shape ``(N, k, F)``) and a grid reduction.  This removes the destination
    gather and the ``(E, 2F)`` message materialization of the generic path
    entirely; it is the steady-state serving kernel for every sampled
    topology.
    """
    num_nodes, features = x.shape
    np.take(x, src, axis=0, out=scratch.reshape(num_nodes * k, features))
    scratch -= x[:, None, :]
    centres = out[:, :features]
    if reduce in ("add", "sum"):
        np.multiply(x, x.dtype.type(k), out=centres)
    else:  # max / mean of k copies of x_i is x_i itself
        np.copyto(centres, x)
    uniform_segment_reduce(scratch, reduce, out[:, features:])
    return out


# ----------------------------------------------------------------------
# Fused per-node kernels
# ----------------------------------------------------------------------
def edge_messages(x: np.ndarray, src: np.ndarray, dst: np.ndarray,
                  out: np.ndarray) -> np.ndarray:
    """DGCNN edge-conv messages ``[x_dst, x_src - x_dst]`` into ``out``.

    ``out`` has shape ``(E, 2F)``; both halves are written in place — the
    gathers land directly in their target columns and the difference is
    computed in the right half without any temporary.
    """
    features = x.shape[1]
    centres = out[:, :features]
    neighbours = out[:, features:]
    np.take(x, dst, axis=0, out=centres)
    np.take(x, src, axis=0, out=neighbours)
    neighbours -= centres
    return out


def fused_linear(x: np.ndarray, weight: np.ndarray,
                 bias: Optional[np.ndarray], out: np.ndarray,
                 activation: Optional[str] = None,
                 negative_slope: float = 0.2) -> np.ndarray:
    """``activation(x @ weight + bias)`` in one step, all in ``out``.

    The eager path builds three tensors (matmul, bias add, relu) with three
    backward closures and up to three allocations; here the matmul writes
    straight into the arena buffer and bias/activation are applied in place.
    """
    np.matmul(x, weight, out=out)
    if bias is not None:
        out += bias
    if activation == "relu":
        np.maximum(out, out.dtype.type(0), out=out)
    elif activation == "leaky_relu":
        # The slope factors must carry the output dtype: float python
        # scalars inside np.where would materialize a float64 factor array
        # and promote the whole multiply to float64 before casting back.
        np.multiply(out, np.where(out > 0, out.dtype.type(1),
                                  out.dtype.type(negative_slope)), out=out)
    elif activation is not None:
        raise ValueError(f"unknown fused activation {activation!r}")
    return out


def relu_(x: np.ndarray) -> np.ndarray:
    """In-place ReLU (used for activations that could not be fused)."""
    return np.maximum(x, x.dtype.type(0), out=x)


# ----------------------------------------------------------------------
# Quantized (int8) kernels
# ----------------------------------------------------------------------
# Symmetric quantization: zero-point 0 everywhere, so ``x ≈ xq * scale``.
# Weights carry one scale per output channel, activations one per tensor
# (static, from calibration).  Every kernel below is exact in integer
# arithmetic; rounding happens only at the explicit (re)quantize points.

#: Quantized values live in [-127, 127] (symmetric; -128 unused).
QMAX_INT8 = 127

#: Largest integer magnitude exactly representable in float32.  Integer
#: matmuls run as float32 sgemm when every partial sum stays below this
#: bound (all partial sums are integers, so no product or addition ever
#: rounds); beyond it the accumulation switches to float64 (exact to 2^53).
_F32_EXACT = 2 ** 24


def quantize_array(x: np.ndarray, scale: float, scratch: np.ndarray,
                   out: np.ndarray) -> np.ndarray:
    """Quantize ``x`` to int8 with per-tensor ``scale`` into ``out``.

    ``q = clip(rint(x / scale), -127, 127)``; ``scratch`` is a float buffer
    of the same shape (it may alias ``x`` when the caller owns ``x``), so
    the kernel allocates nothing.  Rounding is ties-to-even (``np.rint``),
    matching the jitted backends bit for bit.
    """
    np.divide(x, x.dtype.type(scale), out=scratch)
    np.rint(scratch, out=scratch)
    np.clip(scratch, scratch.dtype.type(-QMAX_INT8),
            scratch.dtype.type(QMAX_INT8), out=scratch)
    out[...] = scratch
    return out


def dequantize_array(xq: np.ndarray, scale: float,
                     out: np.ndarray) -> np.ndarray:
    """Dequantize integer ``xq`` into the float buffer ``out`` (``xq*scale``)."""
    out[...] = xq
    out *= out.dtype.type(scale)
    return out


def quant_fused_linear(xq: np.ndarray, w_float: np.ndarray,
                       w_scale: np.ndarray, x_scale: float,
                       bias: np.ndarray, xcast: np.ndarray, acc: np.ndarray,
                       activation: Optional[str], negative_slope: float,
                       out_scale: Optional[float], outq: Optional[np.ndarray],
                       out32: np.ndarray) -> np.ndarray:
    """Fused quantized linear: int matmul → dequantize(+bias, act) → requantize.

    The integer matmul runs through BLAS: ``xq`` is widened into ``xcast``
    (float32, or float64 when the caller determined the accumulator bound
    exceeds 2^24) and multiplied against ``w_float`` (the matching float
    widening of the int8 weights).  Every partial sum is an exactly
    representable integer, so this *is* exact int32-style accumulation, at
    sgemm speed.  The accumulator is then scaled per output channel by
    ``x_scale * w_scale[j]``, biased and activated in float, and either
    requantized to int8 (``out_scale`` given → returns ``outq``) or emitted
    as float32 logits (returns ``out32``).
    """
    xcast[...] = xq
    np.matmul(xcast, w_float, out=acc)
    acc *= w_scale * np.float32(x_scale)
    acc += bias
    if activation == "relu":
        np.maximum(acc, acc.dtype.type(0), out=acc)
    elif activation == "leaky_relu":
        np.multiply(acc, np.where(acc > 0, acc.dtype.type(1),
                                  acc.dtype.type(negative_slope)), out=acc)
    elif activation is not None:
        raise ValueError(f"unknown fused activation {activation!r}")
    if out_scale is not None:
        return quantize_array(acc, out_scale, acc, outq)
    if acc is not out32:
        out32[...] = acc
    return out32


def quant_edgeconv_uniform(xq: np.ndarray, src: np.ndarray, k: int,
                           reduce: str, gather: np.ndarray,
                           out: np.ndarray) -> np.ndarray:
    """Fused EdgeConv over a k-regular topology, entirely in integers.

    Exploits the algebraic identity ``reduce_j (x_j - x_i) =
    (reduce_j x_j) - x_i`` (exact for ``max``; exact in integers for
    ``add``): the neighbour half reduces the *gathered int8 rows directly*
    and subtracts the centre once, so the ``(N, k, F)`` scratch stays int8
    (4-8x less gather traffic than the float kernel) and no difference
    tensor is ever materialized.  Output columns are
    ``[x_i, max_j x_j - x_i]`` for ``max`` (scale unchanged) and
    ``[k·x_i, Σ_j x_j - k·x_i]`` for ``add``/``mean`` — for ``mean`` the
    caller folds the 1/k into the output scale, keeping the arithmetic
    integer-exact.  ``out`` must be wide enough for the caller-computed
    bound (int16 for one int8 block at small k, int32 beyond).
    """
    num_nodes, features = xq.shape
    np.take(xq, src, axis=0, out=gather.reshape(num_nodes * k, features))
    grouped = gather
    centres = out[:, :features]
    neighbours = out[:, features:]
    if reduce == "max":
        np.maximum.reduce(grouped, axis=1, out=neighbours)
        centres[...] = xq
        np.subtract(neighbours, centres, out=neighbours)
    elif reduce in ("add", "sum", "mean"):
        np.add.reduce(grouped, axis=1, dtype=out.dtype, out=neighbours)
        np.multiply(xq, out.dtype.type(k), out=centres)
        np.subtract(neighbours, centres, out=neighbours)
    else:
        raise ValueError(f"unknown scatter reduction: {reduce!r}")
    return out


def quant_pool_uniform(xq: np.ndarray, num_graphs: int, per_graph: int,
                       mode: str, scale: float, scratch: np.ndarray,
                       out: np.ndarray) -> np.ndarray:
    """Global pooling of quantized features over a uniform batch grid.

    Reduces the ``(num_graphs, per_graph, F)`` grid in integer arithmetic
    (``scratch`` is an int64 ``(num_graphs, F)`` buffer, so sums can never
    overflow) and dequantizes the tiny per-graph result straight into the
    float32 ``out`` — pooling is where quantized features leave the integer
    domain, because ``max||mean`` concatenation would otherwise mix scales.
    """
    features = xq.shape[1]
    grouped = xq.reshape(num_graphs, per_graph, features)
    mult = np.float32(scale)
    mult_mean = np.float32(scale / per_graph)
    if mode in ("max||mean", "maxmean"):
        np.maximum.reduce(grouped, axis=1, out=scratch)
        out[:, :features] = scratch
        out[:, :features] *= mult
        np.add.reduce(grouped, axis=1, dtype=scratch.dtype, out=scratch)
        out[:, features:] = scratch
        out[:, features:] *= mult_mean
        return out
    if mode == "max":
        np.maximum.reduce(grouped, axis=1, out=scratch)
        out[...] = scratch
        out *= mult
    elif mode in ("sum", "add", "mean"):
        np.add.reduce(grouped, axis=1, dtype=scratch.dtype, out=scratch)
        out[...] = scratch
        out *= mult if mode != "mean" else mult_mean
    else:
        raise ValueError(f"unknown pooling mode: {mode!r}")
    return out


# ----------------------------------------------------------------------
# Lean kNN for the serving fast path
# ----------------------------------------------------------------------
def knn_edges_uniform(points: np.ndarray, k: int, num_graphs: int,
                      per_graph: int) -> Optional[np.ndarray]:
    """kNN edge list for a batch of equally sized graphs, selection-only.

    The runtime twin of :func:`repro.graph.knn.knn_graph`'s vectorized path,
    minus the work inference does not need: the squared distances are
    computed with the *identical* formula (so the selected neighbour set is
    bit-for-bit the same as eager's — ``argpartition`` is deterministic), but
    the selected ``k`` neighbours are **not** re-sorted nearest-first.
    Neighbour order within a destination segment only affects floating-point
    summation order of ``add``/``mean`` aggregation (~1e-15 relative), never
    the neighbour set, and dropping the per-row sort removes the two
    ``take_along_axis`` passes that dominated graph construction on small
    clouds.

    Requires ``per_graph > k`` (the fixed-``k`` tiling of tiny graphs stays
    on the eager builder); returns ``None`` to signal the caller to fall
    back.  Destinations are ``repeat(arange(N), k)`` — destination-sorted and
    k-regular by construction.
    """
    if per_graph <= k:
        return None
    if points.dtype != np.float64:
        # Distances are always ranked in float64, exactly like the eager
        # builder: a float32 plan must select the same neighbour sets as
        # eager execution, or near-tied distances would flip the topology
        # and the divergence would no longer be bounded by arithmetic
        # precision.
        points = points.astype(np.float64)
    grouped = points.reshape(num_graphs, per_graph, -1)
    dists = grouped_knn_distances(grouped)
    local = np.argpartition(dists, k - 1, axis=2)[:, :, :k]
    num_nodes = num_graphs * per_graph
    offsets = (np.arange(num_graphs, dtype=np.int64) * per_graph)[:, None, None]
    neighbours = (local + offsets).reshape(-1)
    centres = np.repeat(np.arange(num_nodes, dtype=np.int64), k)
    return np.stack([neighbours, centres], axis=0)
