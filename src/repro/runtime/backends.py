"""Pluggable kernel backends for the compiled inference runtime.

:class:`KernelBackend` is the seam between plan *steps* (which own slots,
scale bookkeeping and state threading — see :mod:`repro.runtime.plan`) and
the array arithmetic that executes them.  Plan compilation is backend
agnostic: a compiled plan holds a backend reference and every step calls
through it, so the same plan object can execute on any registered backend.

Two backends ship:

``"numpy"``
    The default — delegates straight to the reference kernels of
    :mod:`repro.runtime.kernels` (BLAS matmuls, vectorized reductions).
    Always available; the numerical contract of the runtime is defined by
    this backend.
``"numba"``
    Optional JIT backend, auto-detected at import (``importlib`` spec probe
    only — numba itself is imported lazily on first use).  It overrides the
    kernels where fused loops beat vectorized numpy — the gather-heavy
    EdgeConv and the quantized kernels, where true fused int accumulation
    avoids the float-widening passes — and *inherits* the numpy
    implementations everywhere BLAS or bookkeeping-heavy code wins (dense
    float matmul, ragged scatters, kNN selection).  Never required: tier-1
    tests and default serving run without it, and ``"auto"`` silently
    resolves to numpy when numba is absent.

Parity contract: a backend must match the numpy backend within 1e-6 on
every kernel (the jitted implementations are written to be bit-identical:
same rounding mode, same float widths, same operation order; only float
summation *order* may differ, which tolerance covers).  The plain-python
jittable implementations are unit-tested against the numpy kernels without
numba installed, so logic divergence is caught in tier-1; the optional-deps
CI job compiles them under numba and re-checks.
"""

from __future__ import annotations

import importlib.util
from typing import Optional

import numpy as np

from . import kernels as _kernels
from .kernels import QMAX_INT8, SegmentInfo

#: Backend names accepted by ``RuntimeConfig.backend``.  ``"auto"`` resolves
#: to numba when importable, else numpy.
BACKEND_NUMPY = "numpy"
BACKEND_NUMBA = "numba"
BACKEND_AUTO = "auto"
KERNEL_BACKENDS = (BACKEND_NUMPY, BACKEND_NUMBA, BACKEND_AUTO)

#: Integer codes for the jit-friendly dispatch of the plain implementations
#: (numba specializes per call site; string dispatch would defeat that).
ACT_NONE, ACT_RELU, ACT_LEAKY_RELU = 0, 1, 2
RED_SUM, RED_MEAN, RED_MAX = 0, 1, 2
_ACT_CODES = {None: ACT_NONE, "relu": ACT_RELU, "leaky_relu": ACT_LEAKY_RELU}
_RED_CODES = {"add": RED_SUM, "sum": RED_SUM, "mean": RED_MEAN,
              "max": RED_MAX}


# ----------------------------------------------------------------------
# Plain (jittable) implementations
# ----------------------------------------------------------------------
# These run under ``numba.njit`` when numba is installed and as ordinary
# python in the parity tests, so every backend executes the *same* logic.
# They are written for bit-identity with the vectorized numpy kernels:
# float32 statements stay float32 (numba unifies branch types, so no branch
# may assign a float64 to a float32 variable), rounding is np.rint
# (ties-to-even) everywhere, and scale application always divides on the
# quantize side / multiplies on the dequantize side, matching kernels.py.

def _quantize_impl(x, scale, out):  # pragma: no cover - exercised via parity
    rows, cols = x.shape
    scale32 = np.float32(scale)
    for i in range(rows):
        for j in range(cols):
            q = np.rint(x[i, j] / scale32)
            if q > 127.0:
                q = 127.0
            elif q < -127.0:
                q = -127.0
            out[i, j] = np.int8(q)
    return out


def _dequantize_impl(xq, scale, out):  # pragma: no cover - parity-tested
    rows, cols = xq.shape
    scale32 = np.float32(scale)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = np.float32(xq[i, j]) * scale32
    return out


def _quant_linear_f32_impl(xq, wq, mult, bias, act, slope, requant,
                           out_scale, out32, outq):  # pragma: no cover
    rows, kdim = xq.shape
    cols = wq.shape[1]
    zero = np.float32(0.0)
    out_scale32 = np.float32(out_scale)
    for i in range(rows):
        for j in range(cols):
            acc = np.int64(0)
            for t in range(kdim):
                acc += np.int64(xq[i, t]) * np.int64(wq[t, j])
            y = np.float32(acc) * mult[j] + bias[j]
            if act == 1:
                if y < zero:
                    y = zero
            elif act == 2:
                if y < zero:
                    y = y * slope
            if requant:
                q = np.rint(y / out_scale32)
                if q > 127.0:
                    q = 127.0
                elif q < -127.0:
                    q = -127.0
                outq[i, j] = np.int8(q)
            else:
                out32[i, j] = y
    return out32


def _quant_linear_f64_impl(xq, wq, mult, bias, act, slope, requant,
                           out_scale, out32, outq):  # pragma: no cover
    rows, kdim = xq.shape
    cols = wq.shape[1]
    zero = np.float64(0.0)
    for i in range(rows):
        for j in range(cols):
            acc = np.int64(0)
            for t in range(kdim):
                acc += np.int64(xq[i, t]) * np.int64(wq[t, j])
            y = np.float64(acc) * np.float64(mult[j]) + np.float64(bias[j])
            if act == 1:
                if y < zero:
                    y = zero
            elif act == 2:
                if y < zero:
                    y = y * np.float64(slope)
            if requant:
                q = np.rint(y / np.float64(out_scale))
                if q > 127.0:
                    q = 127.0
                elif q < -127.0:
                    q = -127.0
                outq[i, j] = np.int8(q)
            else:
                out32[i, j] = np.float32(y)
    return out32


def _quant_edgeconv_impl(xq, src, k, red, out):  # pragma: no cover
    rows, cols = xq.shape
    kk = np.int64(k)
    for i in range(rows):
        base = i * k
        for j in range(cols):
            centre = np.int64(xq[i, j])
            if red == 2:  # max
                best = np.int64(xq[src[base], j])
                for t in range(1, k):
                    v = np.int64(xq[src[base + t], j])
                    if v > best:
                        best = v
                out[i, j] = centre
                out[i, j + cols] = best - centre
            else:  # add / mean (mean folds 1/k into the output scale)
                total = np.int64(0)
                for t in range(k):
                    total += np.int64(xq[src[base + t], j])
                out[i, j] = kk * centre
                out[i, j + cols] = total - kk * centre
    return out


def _edgeconv_uniform_impl(x, src, k, red, out):  # pragma: no cover
    rows, cols = x.shape
    for i in range(rows):
        base = i * k
        for j in range(cols):
            centre = x[i, j]
            if red == 2:  # max
                best = x[src[base], j] - centre
                for t in range(1, k):
                    v = x[src[base + t], j] - centre
                    if v > best:
                        best = v
                out[i, j] = centre
                out[i, j + cols] = best
            else:
                total = x[src[base], j] - centre
                for t in range(1, k):
                    total += x[src[base + t], j] - centre
                if red == 0:  # add
                    out[i, j] = centre * k
                    out[i, j + cols] = total
                else:  # mean
                    out[i, j] = centre
                    out[i, j + cols] = total / k
    return out


# ----------------------------------------------------------------------
# Backend protocol + registry
# ----------------------------------------------------------------------
class KernelBackend:
    """The kernel surface compiled plan steps execute through.

    The base class *is* the numpy reference backend — subclasses override
    only the kernels they accelerate, so a new backend starts correct and
    speeds up incrementally.  All methods follow the kernels.py convention:
    caller-provided ``out=``/scratch buffers (from the plan's
    :class:`~repro.runtime.arena.BufferArena`), nothing allocated inside.
    """

    name = "numpy"

    # -- float kernels -------------------------------------------------
    def fused_linear(self, x, weight, bias, out, activation=None,
                     negative_slope=0.2):
        return _kernels.fused_linear(x, weight, bias, out,
                                     activation=activation,
                                     negative_slope=negative_slope)

    def relu_(self, x):
        return _kernels.relu_(x)

    def edge_messages(self, x, src, dst, out):
        return _kernels.edge_messages(x, src, dst, out)

    def edgeconv_uniform(self, x, src, k, reduce, scratch, out):
        return _kernels.edgeconv_uniform(x, src, k, reduce, scratch, out)

    def uniform_segment_reduce(self, grouped, reduce, out):
        return _kernels.uniform_segment_reduce(grouped, reduce, out)

    def segment_reduce(self, src, index, info: SegmentInfo, reduce, out):
        return _kernels.segment_reduce(src, index, info, reduce, out)

    def knn_edges_uniform(self, points, k, num_graphs, per_graph):
        return _kernels.knn_edges_uniform(points, k, num_graphs, per_graph)

    # -- quantized kernels ---------------------------------------------
    def quantize(self, x, scale, scratch, out):
        return _kernels.quantize_array(x, scale, scratch, out)

    def dequantize(self, xq, scale, out):
        return _kernels.dequantize_array(xq, scale, out)

    def quant_fused_linear(self, xq, wq, w_float, w_scale, x_scale, bias,
                           xcast, acc, activation, negative_slope,
                           out_scale, outq, out32):
        """Fused quantized linear; returns ``outq`` (requantizing) or ``out32``.

        ``wq`` is the int8 weight matrix and ``w_float`` its float widening
        matching ``xcast``'s dtype — a backend uses whichever representation
        its matmul wants (numpy: BLAS over the float widening; numba: true
        integer accumulation over ``wq``).
        """
        return _kernels.quant_fused_linear(
            xq, w_float, w_scale, x_scale, bias, xcast, acc, activation,
            negative_slope, out_scale, outq, out32)

    def quant_edgeconv_uniform(self, xq, src, k, reduce, gather, out):
        return _kernels.quant_edgeconv_uniform(xq, src, k, reduce, gather,
                                               out)

    def quant_pool_uniform(self, xq, num_graphs, per_graph, mode, scale,
                           scratch, out):
        return _kernels.quant_pool_uniform(xq, num_graphs, per_graph, mode,
                                           scale, scratch, out)


class NumpyBackend(KernelBackend):
    """The default backend (the base class arithmetic, under its own name)."""


class NumbaBackend(KernelBackend):
    """JIT backend over the plain implementations above (requires numba).

    Overrides the gather-bound EdgeConv kernels and the quantized kernels
    with fused ``njit`` loops; everything else — BLAS matmuls, ragged
    scatters, kNN — inherits the numpy implementations, which are faster
    there.  ``fastmath`` stays off: determinism and parity with numpy
    outrank the last few percent.
    """

    name = "numba"

    def __init__(self) -> None:
        import numba  # deferred: only resolved backends pay the import
        jit = numba.njit(cache=False, fastmath=False)
        self._quantize = jit(_quantize_impl)
        self._dequantize = jit(_dequantize_impl)
        self._quant_linear_f32 = jit(_quant_linear_f32_impl)
        self._quant_linear_f64 = jit(_quant_linear_f64_impl)
        self._quant_edgeconv = jit(_quant_edgeconv_impl)
        self._edgeconv = jit(_edgeconv_uniform_impl)

    def quantize(self, x, scale, scratch, out):
        return self._quantize(x, float(scale), out)

    def dequantize(self, xq, scale, out):
        return self._dequantize(xq, float(scale), out)

    def quant_fused_linear(self, xq, wq, w_float, w_scale, x_scale, bias,
                           xcast, acc, activation, negative_slope,
                           out_scale, outq, out32):
        # Same combined multiplier as the numpy kernel: per-channel weight
        # scale times the per-tensor input scale, computed once in float32.
        mult = w_scale * np.float32(x_scale)
        act = _ACT_CODES[activation]
        requant = out_scale is not None
        impl = (self._quant_linear_f64 if xcast.dtype == np.float64
                else self._quant_linear_f32)
        sentinel = outq if outq is not None else _INT8_SENTINEL
        impl(xq, wq, mult, bias, act, np.float32(negative_slope), requant,
             float(out_scale) if requant else 1.0, out32, sentinel)
        return outq if requant else out32

    def quant_edgeconv_uniform(self, xq, src, k, reduce, gather, out):
        return self._quant_edgeconv(xq, src, int(k), _RED_CODES[reduce], out)

    def edgeconv_uniform(self, x, src, k, reduce, scratch, out):
        return self._edgeconv(x, src, int(k), _RED_CODES[reduce], out)


#: Placeholder int8 array handed to the jitted linear when not requantizing
#: (numba needs a concretely typed argument even on the untaken branch).
_INT8_SENTINEL = np.empty((1, 1), dtype=np.int8)


_AVAILABLE: Optional[bool] = None


def numba_available() -> bool:
    """True when the optional numba dependency is importable (spec probe)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        _AVAILABLE = importlib.util.find_spec("numba") is not None
    return _AVAILABLE


def available_backends() -> "tuple[str, ...]":
    """Names of the kernel backends usable in this process, numpy first."""
    if numba_available():
        return (BACKEND_NUMPY, BACKEND_NUMBA)
    return (BACKEND_NUMPY,)


_INSTANCES: dict = {}


def resolve_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend name (or ``None``/``"auto"``) to a live instance.

    ``"auto"`` picks numba when importable and falls back to numpy cleanly
    otherwise; an *explicit* ``"numba"`` without numba installed raises at
    build time (a config that names a backend must get it or fail loudly).
    Instances are process-wide singletons: jit compilation caches live on
    the instance and plans only hold references.
    """
    if name is None:
        name = BACKEND_AUTO
    if isinstance(name, KernelBackend):
        return name
    if name not in KERNEL_BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r} "
                         f"(expected one of {KERNEL_BACKENDS})")
    if name == BACKEND_AUTO:
        name = BACKEND_NUMBA if numba_available() else BACKEND_NUMPY
    if name == BACKEND_NUMBA and not numba_available():
        raise RuntimeError(
            "backend 'numba' was requested but numba is not importable; "
            "install numba or use backend='auto' (falls back to numpy)")
    backend = _INSTANCES.get(name)
    if backend is None:
        backend = NumpyBackend() if name == BACKEND_NUMPY else NumbaBackend()
        _INSTANCES[name] = backend
    return backend
