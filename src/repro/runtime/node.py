"""TCP replica node: the shard worker main behind a socket transport.

A *node* is :class:`~repro.runtime.shard.ReplicaCore` — the exact worker
loop the shared-memory shards run — reached over TCP instead of a ring
buffer, so a fleet of machines can serve the same zoo the way one box's
cores do.  Everything above the transport is shared code: the same JSON zoo
payload bootstrap (same seed → bit-identical replica weights), the same
``frame``/``batch``/``publish`` envelope kinds in the versioned raw wire
framing, the same idempotent snapshot replication and pin checks.

Handshake
---------
A node starts *empty* — it holds no models until a router connects — so
nodes can be launched standalone on remote machines (``python -m
repro.runtime.node --port 9000``) before any router exists.  Per
connection:

1. The router sends a **hello**: one ``publish`` envelope whose ``meta``
   is the full bootstrap dict (``zoo`` payload, ``version``, ``in_dim``,
   ``num_classes``, ``runtime``, ``seed``, ``retain``).
2. The node builds its :class:`ReplicaCore` on first contact, or — on a
   reconnect — idempotently installs the hello's snapshot if it is newer
   than what the node already holds (a re-sync can never regress state).
3. The node answers ``ready`` (pid, node id, installed version) and then
   serves the normal envelope loop, including ``ping`` → ``pong``
   heartbeats, until the connection closes.

Connections are served concurrently (one thread each) against the single
shared core, mirroring the in-process server's worker threads; a router
redialing after a partition therefore never waits for the stale
connection to finish dying.

Crash behavior mirrors the shard tier: the router detects a dead node
(reader failure, missed heartbeats) and fails that node's in-flight
requests with :class:`NodeCrashedError` — a :class:`ConnectionError` — so
a killed node produces clean per-frame errors while new traffic reroutes
to the surviving replicas.  A spawned node likewise exits when its parent
disappears.
"""

from __future__ import annotations

import select
import socket
import threading
from dataclasses import dataclass
from typing import Dict, Optional

from .shard import PeerClosed, ReplicaCore, _parent_alive, zoo_from_payload

#: How long a node's accept loop sleeps between liveness polls (seconds).
_ACCEPT_POLL_S = 0.5

#: Socket timeout for every blocking I/O once a frame has *started* —
#: mid-frame reads inside ``recv_message`` and ``reply``'s sendall.  This
#: is request-scale on purpose: the envelope loop's short poll quantum is
#: implemented with ``select`` (idle-wait only), never as a recv timeout,
#: because a recv timeout firing after the length prefix (or mid-payload)
#: would silently discard the partial frame and permanently desync the
#: stream.  A peer that stalls an in-progress frame this long is
#: unreachable, not slow.
_IO_TIMEOUT_S = 60.0


class NodeCrashedError(ConnectionError):
    """A replica node died (or became unreachable) mid-request."""


@dataclass
class NodeStats:
    """Router-side view of one node's serving counters.

    Folded into :class:`~repro.system.engine.EdgeServerStats` by a
    clustered server so operators see per-node utilization, replication
    lag (``snapshot_version``) and dead nodes in the same snapshot as the
    socket-level statistics.
    """

    node_id: int
    #: ``host:port`` the router dials for this node.
    address: str
    alive: bool
    frames: int
    batches: int
    errors: int
    #: Engine time the node reported for its executed frames (excludes
    #: transport; the server's ``mean_service_time_s`` includes it).
    service_time_s: float
    bytes_to_node: int
    bytes_from_node: int
    #: Latest snapshot version the node acknowledged (ready or publish ack).
    snapshot_version: int
    #: Last heartbeat round-trip in milliseconds; ``None`` before the
    #: first pong (or after the node died).
    rtt_ms: Optional[float]
    #: Times this slot was reconnected/respawned (0 = original connection).
    restarts: int = 0
    #: True once the supervisor stopped respawning this slot (crash loop).
    quarantined: bool = False
    #: Why the node behind this slot most recently died, if it ever did.
    last_death_reason: Optional[str] = None


def bootstrap_meta(repository) -> Dict:
    """The hello/bootstrap dict for ``repository``'s current snapshot.

    The same payload the shard tier passes at spawn: everything a replica
    needs to rebuild bit-identical serving state from scratch.
    """
    from .shard import zoo_to_payload
    snapshot = repository.snapshot()
    return {
        "zoo": zoo_to_payload(snapshot.zoo),
        "version": snapshot.version,
        "in_dim": repository.in_dim,
        "num_classes": repository.num_classes,
        "runtime": repository.runtime.to_dict(),
        "seed": repository.seed,
        "retain": repository.retain,
    }


class _CoreHolder:
    """The node's single shared core, built lazily from the first hello."""

    def __init__(self) -> None:
        self.core: Optional[ReplicaCore] = None
        self.lock = threading.Lock()

    def apply_hello(self, meta: Dict) -> ReplicaCore:
        with self.lock:
            if self.core is None:
                self.core = ReplicaCore(meta)
            else:
                version = int(meta["version"])
                if version > self.core.repository.version:
                    self.core.repository.publish(
                        zoo_from_payload(meta["zoo"]), version=version)
            return self.core


def _serve_connection(conn: socket.socket, holder: _CoreHolder,
                      node_id: int) -> None:
    """Handshake then envelope loop for one router connection."""
    from ..system.messages import (KIND_ERROR, Message,
                                   SHARD_KIND_PUBLISH, SHARD_KIND_READY,
                                   WIRE_FORMAT_RAW, recv_message,
                                   send_payload, serialize_message)

    conn.settimeout(_IO_TIMEOUT_S)

    def read_envelope(timeout: float) -> Optional[Message]:
        # Timeout-before-any-bytes is the only "no message" case: the
        # idle wait is a select() on readability (mirroring the router's
        # _read_loop), and once bytes flow recv_message runs under the
        # request-scale _IO_TIMEOUT_S — a transient network stall mid-frame
        # blocks briefly instead of tearing the partially-read frame out of
        # the stream.
        try:
            readable, _, _ = select.select([conn], [], [], timeout)
        except (OSError, ValueError):  # socket torn down mid-select
            raise PeerClosed()
        if not readable:
            return None
        message = recv_message(conn)
        if message is None:
            raise PeerClosed()
        return message

    def reply(message: Message) -> None:
        send_payload(conn, serialize_message(message,
                                             wire_format=WIRE_FORMAT_RAW))

    try:
        try:
            hello = read_envelope(30.0)
        except PeerClosed:
            return
        if hello is None or hello.kind != SHARD_KIND_PUBLISH:
            return  # not a router speaking our handshake: drop the link
        try:
            core = holder.apply_hello(hello.meta)
        except Exception as exc:
            import traceback
            try:
                reply(Message(kind=KIND_ERROR, frame_id=hello.frame_id,
                              meta={"error": f"{type(exc).__name__}: {exc}",
                                    "traceback": traceback.format_exc()}))
            except Exception:
                pass
            return
        reply(Message(kind=SHARD_KIND_READY, frame_id=hello.frame_id,
                      meta=core.ready_meta(node_id)))
        core.serve(read_envelope, reply, peer_alive=_parent_alive)
    except Exception:  # connection-scoped failure: the link is dead anyway
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _node_main(node_id: int, host: str, port: int, ready_conn=None) -> None:
    """Entry point of one node process (spawn-safe, module-level).

    Binds ``host:port`` (0 = ephemeral), reports the bound port back
    through ``ready_conn`` (a ``multiprocessing`` pipe end) when given,
    then accepts router connections until its parent disappears.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(16)
        bound_port = listener.getsockname()[1]
    except Exception as exc:
        if ready_conn is not None:
            import traceback
            ready_conn.send(("error",
                             f"{type(exc).__name__}: {exc}\n"
                             f"{traceback.format_exc()}"))
            ready_conn.close()
        listener.close()
        return
    if ready_conn is not None:
        ready_conn.send(("ok", bound_port))
        ready_conn.close()

    holder = _CoreHolder()
    listener.settimeout(_ACCEPT_POLL_S)
    try:
        while _parent_alive():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(target=_serve_connection,
                             args=(conn, holder, node_id),
                             name=f"node-{node_id}-conn",
                             daemon=True).start()
    finally:
        listener.close()


class NodeProcess:
    """Spawn one localhost replica node and learn its bound address.

    The test/bench harness for the cluster tier: spawns
    :func:`_node_main` in a fresh process (spawn context — same isolation
    the shard tier uses), waits for the child to report the port it
    actually bound (``port=0`` → ephemeral, no collisions), and exposes
    ``address`` for :class:`~repro.serving.ClusterConfig.nodes`.
    """

    def __init__(self, node_id: int = 0, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.node_id = node_id
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self._process = None

    def start(self, timeout: float = 30.0) -> "NodeProcess":
        import multiprocessing
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        self._process = ctx.Process(
            target=_node_main,
            args=(self.node_id, self.host, self._requested_port, child_conn),
            name=f"repro-node-{self.node_id}", daemon=True)
        self._process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(timeout):
                raise NodeCrashedError(
                    f"node {self.node_id} did not report a port within "
                    f"{timeout:.0f}s")
            status, detail = parent_conn.recv()
        except EOFError:
            raise NodeCrashedError(
                f"node {self.node_id} died before reporting a port")
        finally:
            parent_conn.close()
        if status != "ok":
            self.stop()
            raise NodeCrashedError(
                f"node {self.node_id} failed to bind "
                f"{self.host}:{self._requested_port}: {detail}")
        self.port = int(detail)
        return self

    @property
    def address(self) -> str:
        if self.port is None:
            raise RuntimeError("node not started")
        return f"{self.host}:{self.port}"

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def kill(self) -> None:
        """SIGKILL the node — the chaos tests' hard-crash injection."""
        if self._process is not None and self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=10.0)

    def restart(self, timeout: float = 30.0) -> "NodeProcess":
        """Respawn a dead node on the address it previously bound.

        The listener binds with ``SO_REUSEADDR``, so rebinding the same
        port immediately after a crash is safe — the router's configured
        ``host:port`` for this slot stays valid across the respawn.  The
        fresh process starts *empty* exactly like the original; the
        router's reconnect handshake replays the current snapshot.
        """
        if self.alive():
            return self
        if self.port is not None:
            self._requested_port = self.port
        self._process = None
        return self.start(timeout=timeout)

    def stop(self) -> None:
        if self._process is None:
            return
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=10.0)
            if self._process.is_alive():  # pragma: no cover - last resort
                self._process.kill()
                self._process.join(timeout=10.0)
        self._process = None

    def __enter__(self) -> "NodeProcess":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def main(argv=None) -> None:
    """Run one replica node in the foreground (remote-machine deploys)."""
    import argparse
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="0.0.0.0",
                        help="interface to bind (default: all)")
    parser.add_argument("--port", type=int, default=9000,
                        help="TCP port to listen on (0 = ephemeral)")
    parser.add_argument("--node-id", type=int, default=0,
                        help="identity reported in ready/pong envelopes")
    options = parser.parse_args(argv)
    print(f"repro node {options.node_id} listening on "
          f"{options.host}:{options.port}", flush=True)
    _node_main(options.node_id, options.host, options.port)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
