"""HGNAS baseline: hardware-aware GNN NAS for a *single* device.

HGNAS (Zhou et al., DAC 2023) searches hardware-efficient GNNs for one edge
platform using a GCN-based latency predictor; it has no notion of device-edge
mapping.  The reproduction implements it as a constraint-based random search
over the *same* operation space but with ``Communicate`` removed, optimizing
``accuracy − λ · latency`` where latency is the single-device latency of the
target platform.  Two deployment flavours match the paper's Table 2 rows:

* ``HGNAS`` — the searched architecture executed entirely on the device (or
  entirely on the edge, whichever mode the row reports);
* ``HGNAS + Partition`` — the searched architecture split at its best
  partition point afterwards, the "architecture-mapping separation" strategy
  GCoDE is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.architecture import Architecture
from ..core.design_space import DesignSpace
from ..gnn.operations import OpType
from ..hardware.device import DeviceSpec
from ..hardware.latency_lut import build_latency_lut
from ..hardware.workload import DataProfile, trace_workloads
from ..system.partition import best_partition
from ..system.simulator import CoInferenceSimulator

AccuracyFn = Callable[[Architecture], Tuple[float, float]]


@dataclass
class HGNASConfig:
    """Search budget and trade-off of the HGNAS baseline."""

    max_trials: int = 300
    tradeoff_lambda: float = 0.1
    num_layers: int = 8
    seed: int = 0


@dataclass
class HGNASResult:
    """Outcome of an HGNAS search."""

    architecture: Architecture
    accuracy: float
    device_latency_ms: float
    score: float


def single_device_space(profile: DataProfile, num_layers: int = 8,
                        classifier_hidden: int = 64) -> DesignSpace:
    """The HGNAS search space: same operations, no Communicate choice."""
    searchable = tuple(op for op in OpType.SEARCHABLE if op != OpType.COMMUNICATE)
    return DesignSpace(num_layers=num_layers, profile=profile,
                       op_choices=searchable, max_communicates=0,
                       classifier_hidden=classifier_hidden)


def device_latency_ms(arch: Architecture, device: DeviceSpec,
                      profile: DataProfile) -> float:
    """Single-device execution latency of an architecture (no communication)."""
    workloads = trace_workloads(
        [op for op in arch.ops if op.op != OpType.COMMUNICATE], profile,
        arch.classifier_hidden)
    return device.sequence_latency_ms(workloads, arch.classifier_hidden)


class HGNAS:
    """Hardware-aware single-device NAS baseline."""

    def __init__(self, profile: DataProfile, device: DeviceSpec,
                 accuracy_fn: AccuracyFn,
                 config: Optional[HGNASConfig] = None) -> None:
        self.profile = profile
        self.device = device
        self.accuracy_fn = accuracy_fn
        self.config = config or HGNASConfig()
        self.space = single_device_space(profile, self.config.num_layers)

    def search(self) -> HGNASResult:
        """Random hardware-aware search on the single target device."""
        rng = np.random.default_rng(self.config.seed)
        best: Optional[HGNASResult] = None
        latency_scale = 1.0
        for _ in range(self.config.max_trials):
            arch = self.space.sample_valid(rng)
            latency = device_latency_ms(arch, self.device, self.profile)
            latency_scale = max(latency_scale, latency)
            accuracy, _ = self.accuracy_fn(arch)
            score = accuracy - self.config.tradeoff_lambda * latency / latency_scale
            if best is None or score > best.score:
                best = HGNASResult(architecture=arch.with_name("hgnas"),
                                   accuracy=accuracy,
                                   device_latency_ms=latency, score=score)
        assert best is not None
        return best


def hgnas_with_partition(result: HGNASResult, simulator: CoInferenceSimulator,
                         profile: DataProfile,
                         objective: str = "latency") -> Architecture:
    """Apply the best after-the-fact partition point to an HGNAS architecture.

    This is the "HGNAS + Partition" baseline of Table 2: architecture design
    and mapping are performed separately, which is exactly the detachment the
    paper argues against.
    """
    partition = best_partition(result.architecture.ops, profile, simulator,
                               objective=objective,
                               classifier_hidden=result.architecture.classifier_hidden)
    return Architecture(ops=tuple(partition.ops), name="hgnas+partition",
                        classifier_hidden=result.architecture.classifier_hidden)
