"""PNAS baseline: accuracy-oriented NAS for graph classification (MR).

PNAS (Wei et al., ACM TOIS 2023) searches graph-classification architectures
for accuracy only — it is not hardware-aware and not mapping-aware.  The
reproduction models it as a small accuracy-only random search over the
single-device operation space (no Communicate); the "+Partition" variant then
applies the best after-the-fact split, mirroring the Table 3 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..core.architecture import Architecture
from ..hardware.workload import DataProfile
from ..system.partition import best_partition
from ..system.simulator import CoInferenceSimulator
from .fixed import pnas_architecture
from .hgnas import single_device_space

AccuracyFn = Callable[[Architecture], Tuple[float, float]]


@dataclass
class PNASConfig:
    """Search budget of the PNAS baseline."""

    max_trials: int = 200
    num_layers: int = 6
    seed: int = 0


class PNAS:
    """Accuracy-only NAS baseline for graph classification."""

    def __init__(self, profile: DataProfile, accuracy_fn: AccuracyFn,
                 config: Optional[PNASConfig] = None) -> None:
        self.profile = profile
        self.accuracy_fn = accuracy_fn
        self.config = config or PNASConfig()
        self.space = single_device_space(profile, self.config.num_layers)

    def search(self) -> Architecture:
        """Pick the most accurate sampled architecture (no efficiency term)."""
        rng = np.random.default_rng(self.config.seed)
        best_arch: Optional[Architecture] = None
        best_accuracy = -1.0
        for _ in range(self.config.max_trials):
            arch = self.space.sample_valid(rng)
            accuracy, _ = self.accuracy_fn(arch)
            if accuracy > best_accuracy:
                best_accuracy = accuracy
                best_arch = arch
        assert best_arch is not None
        return best_arch.with_name("pnas")

    @staticmethod
    def reference_architecture() -> Architecture:
        """The fixed representative PNAS design (no search budget needed)."""
        return pnas_architecture()


def pnas_with_partition(architecture: Architecture,
                        simulator: CoInferenceSimulator, profile: DataProfile,
                        objective: str = "latency") -> Architecture:
    """PNAS architecture deployed at its best after-the-fact split point."""
    partition = best_partition(architecture.ops, profile, simulator,
                               objective=objective,
                               classifier_hidden=architecture.classifier_hidden)
    return Architecture(ops=tuple(partition.ops), name="pnas+partition",
                        classifier_hidden=architecture.classifier_hidden)
