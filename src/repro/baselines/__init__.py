"""Baseline methods GCoDE is compared against (paper Tables 2 and 3)."""

from .fixed import (dgcnn_architecture, li_optimized_architecture,
                    text_gnn_architecture, pnas_architecture)
from .hgnas import (HGNAS, HGNASConfig, HGNASResult, single_device_space,
                    device_latency_ms, hgnas_with_partition)
from .branchy import (BranchyConfig, branchy_backbone, branchy_candidates,
                      branchy_architecture)
from .pnas import PNAS, PNASConfig, pnas_with_partition

__all__ = [
    "dgcnn_architecture", "li_optimized_architecture", "text_gnn_architecture",
    "pnas_architecture",
    "HGNAS", "HGNASConfig", "HGNASResult", "single_device_space",
    "device_latency_ms", "hgnas_with_partition",
    "BranchyConfig", "branchy_backbone", "branchy_candidates",
    "branchy_architecture",
    "PNAS", "PNASConfig", "pnas_with_partition",
]
