"""Fixed (manually designed) baseline architectures.

These wrap the operation-level descriptions from :mod:`repro.gnn.models`
into :class:`~repro.core.architecture.Architecture` objects so that the same
simulator, partitioning utilities and deployment tooling evaluate every
method uniformly:

* ``DGCNN`` — the manually designed point-cloud network (paper baseline [9]);
* ``Li et al.`` — the manually optimized DGCNN variant (paper baseline [1]);
* the fixed text GNN and the PNAS-searched network used on MR.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.architecture import Architecture
from ..gnn.models.dgcnn import dgcnn_opspecs, li_optimized_opspecs
from ..gnn.models.gin import pnas_opspecs, text_gnn_opspecs


def dgcnn_architecture(k: int = 20, emb_dim: int = 1024,
                       classifier_hidden: int = 256) -> Architecture:
    """DGCNN as a deployable architecture (Device-Only by default)."""
    return Architecture(ops=tuple(dgcnn_opspecs(k=k, emb_dim=emb_dim)),
                        name="dgcnn", classifier_hidden=classifier_hidden)


def li_optimized_architecture(k: int = 20,
                              classifier_hidden: int = 128) -> Architecture:
    """The manually optimized DGCNN of Li et al. (paper baseline "[1]")."""
    return Architecture(ops=tuple(li_optimized_opspecs(k=k)),
                        name="li-optimized", classifier_hidden=classifier_hidden)


def text_gnn_architecture(hidden: int = 96,
                          classifier_hidden: int = 64) -> Architecture:
    """Fixed text-classification GNN for MR-style word graphs."""
    return Architecture(ops=tuple(text_gnn_opspecs(hidden=hidden)),
                        name="text-gnn", classifier_hidden=classifier_hidden)


def pnas_architecture(classifier_hidden: int = 64) -> Architecture:
    """Representative PNAS-searched graph-classification network (MR baseline)."""
    return Architecture(ops=tuple(pnas_opspecs()), name="pnas",
                        classifier_hidden=classifier_hidden)
