"""BRANCHY-GNN baseline: fixed-architecture split with bottleneck compression.

BRANCHY-GNN (Shao et al., ICASSP 2021) deploys a fixed point-cloud GNN across
device and edge by (a) choosing a split point and (b) inserting a small
"bottleneck" feature-reduction layer before transmission to shrink the
intermediate data.  It performs no architecture exploration and no hardware
awareness, which is why the paper finds it leaves most of the co-inference
potential unrealized.

The reproduction keeps the DGCNN-style backbone, inserts a narrow Combine
(the learned compression bottleneck) immediately before the Communicate, and
selects the split point that minimizes simulated latency — i.e. it is given
the benefit of an oracle split choice, as in the paper's comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.architecture import Architecture
from ..gnn.operations import OpSpec, OpType
from ..hardware.workload import DataProfile
from ..system.simulator import CoInferenceSimulator


@dataclass
class BranchyConfig:
    """Backbone and bottleneck settings of the BRANCHY-GNN baseline."""

    #: EdgeConv widths of the backbone (a trimmed DGCNN, as in the original).
    channels: Sequence[int] = (64, 64, 128)
    #: Width of the compression bottleneck inserted before transmission.
    bottleneck_dim: int = 32
    k: int = 20
    emb_dim: int = 512
    classifier_hidden: int = 128


def branchy_backbone(config: Optional[BranchyConfig] = None) -> List[OpSpec]:
    """The fixed backbone operation sequence (no communicate yet)."""
    config = config or BranchyConfig()
    specs: List[OpSpec] = []
    for width in config.channels:
        specs.append(OpSpec(OpType.SAMPLE, "knn", k=config.k))
        specs.append(OpSpec(OpType.AGGREGATE, "max"))
        specs.append(OpSpec(OpType.COMBINE, int(width)))
    specs.append(OpSpec(OpType.COMBINE, int(config.emb_dim)))
    specs.append(OpSpec(OpType.GLOBAL_POOL, "max||mean"))
    return specs


def branchy_candidates(config: Optional[BranchyConfig] = None) -> List[Architecture]:
    """All BRANCHY split candidates: bottleneck + communicate after each block."""
    config = config or BranchyConfig()
    backbone = branchy_backbone(config)
    candidates: List[Architecture] = []
    # Split points considered by BRANCHY: after each Combine of the backbone
    # (the natural block boundaries of the network).
    for index, spec in enumerate(backbone):
        if spec.op != OpType.COMBINE:
            continue
        ops = (backbone[:index + 1]
               + [OpSpec(OpType.COMBINE, config.bottleneck_dim),
                  OpSpec(OpType.COMMUNICATE, "uplink")]
               + backbone[index + 1:])
        candidates.append(Architecture(ops=tuple(ops),
                                       name=f"branchy-split{index}",
                                       classifier_hidden=config.classifier_hidden))
    return candidates


def branchy_architecture(simulator: CoInferenceSimulator, profile: DataProfile,
                         config: Optional[BranchyConfig] = None) -> Architecture:
    """BRANCHY-GNN with its best (oracle) split point for the target system."""
    candidates = branchy_candidates(config)
    best = min(candidates,
               key=lambda arch: simulator.evaluate(arch.ops, profile,
                                                   arch.classifier_hidden).latency_ms)
    return best.with_name("branchy")
