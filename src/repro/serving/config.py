"""Frozen configuration objects of the serving facade.

Every knob the serving stack exposes lives in one of four small frozen
dataclasses instead of being threaded as loose keyword arguments through
every constructor:

:class:`RuntimeConfig`
    How zoo entries execute — eager autograd vs compiled plans, the compute
    /wire dtype, and which plan segments to compile.
:class:`BatchingConfig`
    The micro-batcher (frames per batched engine call, coalescing window).
:class:`ServerConfig`
    The :class:`~repro.system.engine.EdgeServer` socket/worker knobs and
    the transport frontend (``"threaded"`` / ``"async"``).
:class:`QosConfig`
    Admission control between the frontends and the execution tiers —
    bounded queues with load shedding, per-frame deadlines, priority
    classes, per-client fairness (see :mod:`repro.system.scheduler`).
:class:`ClientConfig`
    The :class:`~repro.system.engine.DeviceClient` wire framing/dtype,
    the three timeouts (connect / handshake / pipeline) and the QoS
    knobs frames carry (deadline, priority, rejection handling).

:class:`ServingConfig` composes the server-side configs into the single value
:func:`repro.serving.serve` takes.  All configs validate in ``__post_init__``
(construction never yields a half-usable config) and round-trip through
``to_dict`` / ``from_dict`` so they can live in JSON files or ride along in
wire metadata; ``from_dict`` rejects unknown keys so a typo in a config file
fails loudly instead of silently running with defaults.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Type

import numpy as np

from ..core.executor import RUNTIMES
from ..runtime import KERNEL_BACKENDS, PRECISIONS, SEGMENTS
from ..runtime.shard import SHARD_TRANSPORT_SHM, SHARD_TRANSPORTS
from ..system.messages import WIRE_FORMAT_ZLIB, WIRE_FORMATS
from ..system.scheduler import QosPolicy
from ..system.transport import FRONTEND_THREADED, FRONTENDS


def _canonical_dtype(value: Any, *, knob: str) -> str:
    """Normalize a user-supplied dtype (name, np.dtype, type) to its name."""
    try:
        dtype = np.dtype(value)
    except Exception:
        raise ValueError(f"{knob} {value!r} is not a valid numpy dtype")
    if not np.issubdtype(dtype, np.floating):
        raise ValueError(f"{knob} must be a floating dtype, got {dtype}")
    return dtype.name


def _check_int(value: Any, *, knob: str, minimum: int) -> int:
    """Validate an integral knob (bools and non-integral floats rejected)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"{knob} must be an integer, got {value!r}")
    if value < minimum:
        raise ValueError(f"{knob} must be at least {minimum}, got {value}")
    return int(value)


def _check_number(value: Any, *, knob: str, minimum: float,
                  inclusive: bool = True) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float, np.floating,
                                                         np.integer)):
        raise ValueError(f"{knob} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        # NaN compares False against everything, so without this check it
        # would sail through the bound below and surface as a confusing
        # socket/threading failure far from the config that caused it.
        raise ValueError(f"{knob} must be finite, got {value!r}")
    if value < minimum or (not inclusive and value == minimum):
        bound = "at least" if inclusive else "greater than"
        raise ValueError(f"{knob} must be {bound} {minimum}, got {value}")
    return value


class _Config:
    """Shared ``to_dict`` / ``from_dict`` for the frozen config dataclasses."""

    #: Field name -> nested config class, for composing configs.
    _nested: Dict[str, Type["_Config"]] = {}

    def to_dict(self) -> Dict:
        """Plain-JSON form (nested configs become nested dicts)."""
        payload: Dict = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, _Config):
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            payload[f.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "_Config":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise :class:`ValueError` — a misspelled knob in a
        config file must fail loudly, not silently fall back to defaults.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(f"{cls.__name__}.from_dict expects a mapping, "
                             f"got {type(payload).__name__}")
        names = [f.name for f in dataclasses.fields(cls)]
        unknown = set(payload) - set(names)
        if unknown:
            raise ValueError(f"unknown {cls.__name__} field(s) "
                             f"{sorted(unknown)} (expected a subset of "
                             f"{names})")
        kwargs: Dict = {}
        for name in names:
            if name not in payload:
                continue
            value = payload[name]
            nested = cls._nested.get(name)
            if nested is not None and isinstance(value, Mapping):
                value = nested.from_dict(value)
            kwargs[name] = value
        return cls(**kwargs)


@dataclass(frozen=True)
class RuntimeConfig(_Config):
    """How serving callables execute a zoo entry's model.

    Parameters
    ----------
    runtime:
        ``"auto"`` (compile, fall back to eager on unsupported constructs),
        ``"compiled"`` (require plans) or ``"eager"`` (autograd under
        ``no_grad``).
    dtype:
        Compiled compute **and** wire dtype; ``None`` means ``float64``.
        Accepts a dtype name, ``np.dtype`` or scalar type; stored as the
        canonical name so configs stay JSON-serializable.
    segments:
        Plan segments compiled for the per-frame callables; ``None`` means
        ``("device", "edge")`` — batched callables always compile just
        ``("edge",)`` with their own arena.
    precision:
        Default execution precision for every entry: ``"float64"`` /
        ``"float32"`` (equivalent to ``dtype``) or ``"int8"`` (calibrated
        post-training quantization; wire states stay float32).  ``None``
        defers to ``dtype`` (then ``"float64"``).  Setting both
        ``precision`` and ``dtype`` to conflicting values is rejected.
    precision_policy:
        Per-entry overrides: maps zoo entry names to a precision, winning
        over ``precision`` for that entry.  Entries absent from the map use
        the default.  Unknown precisions are rejected at construction.
    backend:
        Kernel backend executing compiled plans: ``"numpy"`` (reference),
        ``"numba"`` (optional JIT; requires numba installed — fails loudly
        at build time otherwise) or ``"auto"`` (default: numba when
        importable, else numpy).
    """

    runtime: str = "auto"
    dtype: Optional[str] = None
    segments: Optional[Tuple[str, ...]] = None
    precision: Optional[str] = None
    precision_policy: Dict[str, str] = field(default_factory=dict)
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.runtime not in RUNTIMES:
            raise ValueError(f"unknown runtime {self.runtime!r} "
                             f"(expected one of {RUNTIMES})")
        if self.dtype is not None:
            object.__setattr__(self, "dtype",
                               _canonical_dtype(self.dtype, knob="dtype"))
        if self.precision is not None and self.precision not in PRECISIONS:
            raise ValueError(f"unknown precision {self.precision!r} "
                             f"(expected one of {PRECISIONS})")
        if (self.precision is not None and self.dtype is not None
                and self.precision != self.dtype):
            raise ValueError(
                f"precision={self.precision!r} conflicts with "
                f"dtype={self.dtype!r}; set one of the two (precision "
                "supersedes dtype)")
        if not isinstance(self.precision_policy, Mapping):
            raise ValueError("precision_policy must be a mapping of entry "
                             f"name -> precision, got "
                             f"{type(self.precision_policy).__name__}")
        policy = dict(self.precision_policy)
        for entry_name, precision in policy.items():
            if precision not in PRECISIONS:
                raise ValueError(
                    f"unknown precision {precision!r} for entry "
                    f"{entry_name!r} in precision_policy (expected one of "
                    f"{PRECISIONS})")
        object.__setattr__(self, "precision_policy", policy)
        if self.backend not in KERNEL_BACKENDS:
            raise ValueError(f"unknown kernel backend {self.backend!r} "
                             f"(expected one of {KERNEL_BACKENDS})")
        if self.runtime == "eager":
            if self.dtype not in (None, "float64"):
                raise ValueError(
                    "the eager runtime computes in float64 only; use "
                    "runtime='compiled' for a different compute dtype")
            eager_precisions = {self.precision, *policy.values()} - {None}
            if eager_precisions - {"float64"}:
                raise ValueError(
                    "the eager runtime computes in float64 only; use "
                    "runtime='compiled' (or 'auto') for float32/int8 "
                    "precisions")
        if self.segments is not None:
            segments = tuple(self.segments)
            if not segments:
                raise ValueError("segments may not be empty (use None for "
                                 "the default)")
            unknown = set(segments) - set(SEGMENTS)
            if unknown:
                raise ValueError(f"unknown plan segment(s) {sorted(unknown)} "
                                 f"(expected a subset of {SEGMENTS})")
            object.__setattr__(self, "segments", segments)

    @property
    def numpy_dtype(self) -> Optional[np.dtype]:
        """The dtype as ``np.dtype`` (``None`` = builder default, float64)."""
        return None if self.dtype is None else np.dtype(self.dtype)

    def precision_for(self, entry_name: Optional[str] = None) -> str:
        """Effective precision of one entry: policy → precision → dtype."""
        if entry_name is not None:
            override = self.precision_policy.get(entry_name)
            if override is not None:
                return override
        if self.precision is not None:
            return self.precision
        if self.dtype is not None:
            return self.dtype
        return "float64"


@dataclass(frozen=True)
class BatchingConfig(_Config):
    """Cross-client micro-batching knobs of the edge server.

    ``max_batch_size=1`` (the default) disables micro-batching entirely —
    no batcher threads, exact per-frame serving.  ``max_wait_ms`` bounds how
    long the first frame of a batch waits for company.  ``max_queue_depth``
    caps how many admitted frames may wait for execution at once (across
    the batcher queues and the direct path); ``None`` — the default —
    keeps the historical unbounded behavior, an integer turns on load
    shedding: frames beyond the cap get a wire-level ``"rejected"`` reply
    instead of queueing without bound.  It is a convenience alias for
    :attr:`QosConfig.max_queue_depth` (an explicit value there wins).
    """

    max_batch_size: int = 1
    max_wait_ms: float = 2.0
    max_queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "max_batch_size",
                           _check_int(self.max_batch_size,
                                      knob="max_batch_size", minimum=1))
        object.__setattr__(self, "max_wait_ms",
                           _check_number(self.max_wait_ms, knob="max_wait_ms",
                                         minimum=0.0))
        if self.max_queue_depth is not None:
            object.__setattr__(self, "max_queue_depth",
                               _check_int(self.max_queue_depth,
                                          knob="max_queue_depth", minimum=1))

    @property
    def enabled(self) -> bool:
        return self.max_batch_size > 1


@dataclass(frozen=True)
class ShardingConfig(_Config):
    """Process-parallel serving shards of a :class:`~repro.serving.ServingApp`.

    ``num_shards=1`` (the default) serves in process exactly as before — no
    worker processes, no transport.  With ``num_shards > 1`` the app spawns
    that many shard worker processes, each holding its own compiled plans
    and buffer arenas, and routes frames (and whole micro-batches) to them
    over the chosen transport; see :mod:`repro.serving.sharding`.

    Parameters
    ----------
    num_shards:
        Worker processes executing engine calls.  Sizing rule of thumb:
        number of cores minus one (the parent's socket/batcher threads and
        the loopback device segments need a core of their own).
    transport:
        ``"shm"`` — per-shard shared-memory ring buffers carrying the raw
        wire framing (default) — or ``"pipe"`` — the same framing over
        ``multiprocessing.Pipe`` (portability fallback / A-B baseline).
    ring_bytes:
        Capacity of each shared-memory ring (one request + one response
        ring per shard).  A single frame must fit: size it to a few times
        the largest raw-framed frame you expect.
    request_timeout_s:
        Upper bound on one frame/batch round trip to a shard before it is
        treated as unreachable (guards against a wedged — not crashed —
        worker; crashes are detected immediately).
    start_timeout_s:
        How long :meth:`~repro.serving.sharding.ShardPool.start` waits for
        every worker to build its models/plans and report ready.
    publish_timeout_s:
        How long a publish waits for each shard to acknowledge a new
        snapshot before the shard is treated as failed.
    """

    num_shards: int = 1
    transport: str = SHARD_TRANSPORT_SHM
    ring_bytes: int = 4 * 1024 * 1024
    request_timeout_s: float = 60.0
    start_timeout_s: float = 60.0
    publish_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "num_shards",
                           _check_int(self.num_shards, knob="num_shards",
                                      minimum=1))
        if self.transport not in SHARD_TRANSPORTS:
            raise ValueError(f"unknown shard transport {self.transport!r} "
                             f"(expected one of {SHARD_TRANSPORTS})")
        object.__setattr__(self, "ring_bytes",
                           _check_int(self.ring_bytes, knob="ring_bytes",
                                      minimum=64 * 1024))
        for knob in ("request_timeout_s", "start_timeout_s",
                     "publish_timeout_s"):
            object.__setattr__(self, knob,
                               _check_number(getattr(self, knob), knob=knob,
                                             minimum=0.0, inclusive=False))

    @property
    def enabled(self) -> bool:
        """True when serving should spawn worker processes."""
        return self.num_shards > 1


#: Routing policies :class:`ClusterConfig.routing` accepts.  They live here
#: (not in :mod:`repro.serving.cluster`) so config validation never has to
#: import the router.
ROUTING_LEAST_LOADED = "least_loaded"
ROUTING_HASH = "hash"
ROUTING_POLICIES = (ROUTING_LEAST_LOADED, ROUTING_HASH)


@dataclass(frozen=True)
class ClusterConfig(_Config):
    """Multi-node cluster tier of a :class:`~repro.serving.ServingApp`.

    ``nodes=()`` (the default) disables the tier entirely.  With addresses
    configured the app dials each ``"host:port"`` replica node
    (:mod:`repro.runtime.node`), bootstraps it with the current snapshot,
    and routes frames to the fleet over TCP; see
    :mod:`repro.serving.cluster`.

    Parameters
    ----------
    nodes:
        Replica node addresses, each ``"host:port"``.  Order fixes node
        ids (stats rows, hash-ring seeds).
    routing:
        ``"least_loaded"`` (default) sends each frame to the node with the
        fewest in-flight requests (round-robin tie-break); ``"hash"``
        pins each zoo entry name to a node via a consistent hash ring, so
        an entry's compiled plans and arenas stay hot on one node.
    heartbeat_ms:
        Interval between ping probes to every node.
    heartbeat_misses:
        Consecutive unanswered probes before a node is declared dead
        (its in-flight frames fail fast, new traffic reroutes).
    connect_timeout_s:
        Bound on dialing + bootstrapping one node at startup/reconnect.
    request_timeout_s:
        Upper bound on one frame/batch round trip to a node before it is
        treated as unreachable (guards against a wedged — not crashed —
        node; dead connections are detected immediately).
    publish_timeout_s:
        How long a publish waits for each node to acknowledge a new
        snapshot before the node is treated as failed.
    reconnect_s:
        Redial period for dead nodes — a healed node rejoins routing after
        a re-handshake re-syncs its snapshot.  ``None`` (default) never
        redials: a dead node stays dead until the app restarts.
    """

    nodes: Tuple[str, ...] = ()
    routing: str = ROUTING_LEAST_LOADED
    heartbeat_ms: float = 100.0
    heartbeat_misses: int = 3
    connect_timeout_s: float = 30.0
    request_timeout_s: float = 60.0
    publish_timeout_s: float = 60.0
    reconnect_s: Optional[float] = None

    def __post_init__(self) -> None:
        if isinstance(self.nodes, str):
            raise ValueError("nodes must be a sequence of 'host:port' "
                             "strings, not a single string")
        nodes = tuple(self.nodes)
        for address in nodes:
            if (not isinstance(address, str) or ":" not in address
                    or not address.rsplit(":", 1)[0]):
                raise ValueError(f"node address {address!r} must look like "
                                 "'host:port'")
            port = address.rsplit(":", 1)[1]
            if not port.isdigit() or not 0 < int(port) <= 65535:
                raise ValueError(f"node address {address!r} has an invalid "
                                 "port (expected 1-65535)")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate node address in {list(nodes)}")
        object.__setattr__(self, "nodes", nodes)
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing policy {self.routing!r} "
                             f"(expected one of {ROUTING_POLICIES})")
        object.__setattr__(self, "heartbeat_ms",
                           _check_number(self.heartbeat_ms,
                                         knob="heartbeat_ms", minimum=0.0,
                                         inclusive=False))
        object.__setattr__(self, "heartbeat_misses",
                           _check_int(self.heartbeat_misses,
                                      knob="heartbeat_misses", minimum=1))
        for knob in ("connect_timeout_s", "request_timeout_s",
                     "publish_timeout_s"):
            object.__setattr__(self, knob,
                               _check_number(getattr(self, knob), knob=knob,
                                             minimum=0.0, inclusive=False))
        if self.reconnect_s is not None:
            object.__setattr__(self, "reconnect_s",
                               _check_number(self.reconnect_s,
                                             knob="reconnect_s", minimum=0.0,
                                             inclusive=False))

    @property
    def enabled(self) -> bool:
        """True when serving should route frames to replica nodes."""
        return bool(self.nodes)


@dataclass(frozen=True)
class QosConfig(_Config):
    """Admission control of the edge server (load shedding, deadlines).

    The config twin of :class:`repro.system.scheduler.QosPolicy` — all
    defaults preserve the historical behavior (no shedding, no implicit
    deadlines).  See :meth:`policy` for the conversion.

    Parameters
    ----------
    max_queue_depth:
        Cap on admitted-but-unexecuted frames; beyond it new frames are
        shed with a wire-level ``"rejected"`` reply carrying
        ``retry_after_ms``.  ``None`` (default) = unbounded.
    default_deadline_ms:
        Freshness budget stamped on frames that do not carry their own
        ``meta["deadline_ms"]``; expired frames are never executed.
        ``None`` (default) = no implicit deadline.
    retry_after_ms:
        Back-off hint carried by every rejection reply.
    priority_map:
        Maps symbolic ``meta["priority"]`` class names to integer levels
        (``0`` is highest; each level halves a client's share of the
        queue cap).
    default_priority:
        Level for frames without a priority tag.
    fairness:
        Per-client fairness: with a bounded queue, one client may hold at
        most ``max_queue_depth // active_clients`` slots, so a firehose
        client cannot starve a trickle client.
    fairness_window_s:
        How long a client counts as active after its last frame.
    """

    max_queue_depth: Optional[int] = None
    default_deadline_ms: Optional[float] = None
    retry_after_ms: float = 50.0
    priority_map: Dict[str, int] = field(default_factory=dict)
    default_priority: int = 0
    fairness: bool = True
    fairness_window_s: float = 1.0

    def __post_init__(self) -> None:
        # QosPolicy's own validation is the single source of truth; build
        # one eagerly so a bad QosConfig fails at construction like every
        # other config, then copy back the canonicalized fields.
        policy = QosPolicy(
            max_queue_depth=self.max_queue_depth,
            default_deadline_ms=self.default_deadline_ms,
            retry_after_ms=self.retry_after_ms,
            priority_map=self.priority_map,
            default_priority=self.default_priority,
            fairness=self.fairness,
            fairness_window_s=self.fairness_window_s)
        object.__setattr__(self, "max_queue_depth", policy.max_queue_depth)
        object.__setattr__(self, "default_deadline_ms",
                           policy.default_deadline_ms)
        object.__setattr__(self, "retry_after_ms", policy.retry_after_ms)
        object.__setattr__(self, "priority_map", dict(policy.priority_map))
        object.__setattr__(self, "default_priority", policy.default_priority)
        object.__setattr__(self, "fairness", bool(self.fairness))
        object.__setattr__(self, "fairness_window_s",
                           policy.fairness_window_s)

    def policy(self) -> QosPolicy:
        """The :class:`~repro.system.scheduler.QosPolicy` this config names."""
        return QosPolicy(
            max_queue_depth=self.max_queue_depth,
            default_deadline_ms=self.default_deadline_ms,
            retry_after_ms=self.retry_after_ms,
            priority_map=self.priority_map,
            default_priority=self.default_priority,
            fairness=self.fairness,
            fairness_window_s=self.fairness_window_s)

    @property
    def enabled(self) -> bool:
        """True when any knob departs from the permissive defaults."""
        return (self.max_queue_depth is not None
                or self.default_deadline_ms is not None
                or bool(self.priority_map)
                or self.default_priority != 0)


@dataclass(frozen=True)
class RetryPolicy(_Config):
    """Client-side resilience: bounded, jittered retry of failed frames.

    ``max_retries=0`` (the default) preserves the historical behavior —
    every rejection or connection failure surfaces immediately.  With
    ``max_retries > 0`` the client re-submits a frame after a server
    rejection (honoring the server's ``retry_after_ms`` hint) or, when
    ``retry_connection_errors`` is on, after a server-side crash error
    (``ShardCrashedError`` / ``NodeCrashedError`` — both
    ``ConnectionError`` subclasses).  Re-submission is safe because frame
    execution is pure: an edge callable maps input arrays to output
    arrays with no server-side state mutation, so running a frame twice
    can only cost time, never correctness (pinned by
    ``tests/test_serving_retry.py``).

    Parameters
    ----------
    max_retries:
        Retry budget per frame (re-submissions beyond the first attempt).
        ``0`` disables retries entirely.
    backoff_ms:
        Base delay before the first retry.  Each subsequent retry
        multiplies it by ``backoff_multiplier`` (capped at
        ``max_backoff_ms``); the server's ``retry_after_ms`` hint acts as
        a floor on rejection retries.
    backoff_multiplier:
        Exponential growth factor of the delay between retries.
    max_backoff_ms:
        Upper bound on any single retry delay.
    jitter:
        Fraction of the delay randomized symmetrically (``0.1`` = ±10%)
        so a fleet of rejected clients does not retry in lockstep.
    retry_connection_errors:
        Also retry frames that failed with a server-side
        ``ConnectionError`` (crashed shard/node) rather than only
        admission-control rejections.

    Retries never outlive the client's ``deadline_ms``: a retry whose
    delay would land past the frame's deadline is not attempted and the
    original error surfaces instead.
    """

    max_retries: int = 0
    backoff_ms: float = 25.0
    backoff_multiplier: float = 2.0
    max_backoff_ms: float = 2000.0
    jitter: float = 0.1
    retry_connection_errors: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "max_retries",
                           _check_int(self.max_retries, knob="max_retries",
                                      minimum=0))
        object.__setattr__(self, "backoff_ms",
                           _check_number(self.backoff_ms, knob="backoff_ms",
                                         minimum=0.0))
        object.__setattr__(self, "backoff_multiplier",
                           _check_number(self.backoff_multiplier,
                                         knob="backoff_multiplier",
                                         minimum=1.0))
        object.__setattr__(self, "max_backoff_ms",
                           _check_number(self.max_backoff_ms,
                                         knob="max_backoff_ms", minimum=0.0))
        jitter = _check_number(self.jitter, knob="jitter", minimum=0.0)
        if jitter > 1.0:
            raise ValueError(f"jitter must be at most 1.0, got {jitter}")
        object.__setattr__(self, "jitter", jitter)
        object.__setattr__(self, "retry_connection_errors",
                           bool(self.retry_connection_errors))

    @property
    def enabled(self) -> bool:
        return self.max_retries > 0

    def delay_ms(self, attempt: int, *, floor_ms: float = 0.0,
                 rand=random.random) -> float:
        """Jittered exponential delay before retry ``attempt`` (1-based).

        ``floor_ms`` is the server's ``retry_after_ms`` hint — the delay
        never undercuts it (jitter applies on top of whichever is larger).
        """
        base = min(self.backoff_ms * self.backoff_multiplier ** (attempt - 1),
                   self.max_backoff_ms)
        base = max(base, floor_ms)
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * rand() - 1.0)
        return max(base, 0.0)


@dataclass(frozen=True)
class SupervisorConfig(_Config):
    """Self-healing supervision of shard workers and cluster node replicas.

    ``enabled=False`` (the default) preserves the historical behavior: a
    dead worker is routed around but never respawned.  With the
    supervisor on, a :class:`~repro.serving.ServingApp` runs a monitor
    thread that respawns dead shard workers (and app-owned
    :class:`~repro.runtime.node.NodeProcess` replicas) with jittered
    exponential backoff, replaying the current repository snapshot into
    each fresh worker before it re-enters rotation; a worker that dies
    ``quarantine_deaths`` times within ``quarantine_window_s`` seconds is
    quarantined — never respawned again — with the reason surfaced in
    stats.  See :mod:`repro.serving.supervisor`.

    Parameters
    ----------
    enabled:
        Turn the supervisor thread on.
    poll_interval_s:
        How often the monitor scans worker health.
    backoff_initial_s:
        Delay before the first respawn of a freshly dead worker.
    backoff_multiplier:
        Exponential growth of the respawn delay on consecutive deaths.
    backoff_max_s:
        Upper bound on any single respawn delay.
    backoff_jitter:
        Fraction of the delay randomized symmetrically (``0.1`` = ±10%).
    quarantine_deaths:
        Deaths within the window that trigger quarantine (K).
    quarantine_window_s:
        Width of the crash-loop detection window in seconds (W).
    respawn_timeout_s:
        Bound on one respawn: process start + snapshot replay + ready ack.
    """

    enabled: bool = False
    poll_interval_s: float = 0.05
    backoff_initial_s: float = 0.1
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 5.0
    backoff_jitter: float = 0.1
    quarantine_deaths: int = 3
    quarantine_window_s: float = 30.0
    respawn_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "enabled", bool(self.enabled))
        for knob in ("poll_interval_s", "backoff_initial_s",
                     "backoff_max_s", "quarantine_window_s",
                     "respawn_timeout_s"):
            object.__setattr__(self, knob,
                               _check_number(getattr(self, knob), knob=knob,
                                             minimum=0.0, inclusive=False))
        object.__setattr__(self, "backoff_multiplier",
                           _check_number(self.backoff_multiplier,
                                         knob="backoff_multiplier",
                                         minimum=1.0))
        jitter = _check_number(self.backoff_jitter, knob="backoff_jitter",
                               minimum=0.0)
        if jitter > 1.0:
            raise ValueError(f"backoff_jitter must be at most 1.0, "
                             f"got {jitter}")
        object.__setattr__(self, "backoff_jitter", jitter)
        object.__setattr__(self, "quarantine_deaths",
                           _check_int(self.quarantine_deaths,
                                      knob="quarantine_deaths", minimum=1))

    def backoff_s(self, consecutive_deaths: int, *,
                  rand=random.random) -> float:
        """Jittered exponential respawn delay after ``consecutive_deaths``."""
        exponent = max(consecutive_deaths - 1, 0)
        base = min(self.backoff_initial_s * self.backoff_multiplier ** exponent,
                   self.backoff_max_s)
        if self.backoff_jitter:
            base *= 1.0 + self.backoff_jitter * (2.0 * rand() - 1.0)
        return max(base, 0.0)


@dataclass(frozen=True)
class ServerConfig(_Config):
    """Socket and worker-pool knobs of the :class:`~repro.system.engine.EdgeServer`.

    ``frontend`` selects the transport serving the socket: ``"threaded"``
    (default; one handler thread per connection, ``max_workers`` bounds
    concurrent connections) or ``"async"`` (one asyncio event loop
    multiplexing all connections; ``max_workers`` bounds concurrent engine
    calls instead).  Serving semantics are identical under both.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_workers: int = 8
    backlog: int = 32
    frontend: str = FRONTEND_THREADED
    session_log_limit: int = 1024

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ValueError(f"host must be a non-empty string, got {self.host!r}")
        port = _check_int(self.port, knob="port", minimum=0)
        if port > 65535:
            raise ValueError(f"port must be at most 65535, got {port}")
        object.__setattr__(self, "port", port)
        object.__setattr__(self, "max_workers",
                           _check_int(self.max_workers, knob="max_workers",
                                      minimum=1))
        object.__setattr__(self, "backlog",
                           _check_int(self.backlog, knob="backlog", minimum=1))
        if self.frontend not in FRONTENDS:
            raise ValueError(f"unknown frontend {self.frontend!r} "
                             f"(expected one of {FRONTENDS})")
        object.__setattr__(self, "session_log_limit",
                           _check_int(self.session_log_limit,
                                      knob="session_log_limit", minimum=1))


@dataclass(frozen=True)
class ClientConfig(_Config):
    """Wire framing/dtype and timeouts of a :class:`repro.serving.Client`.

    ``wire_format`` picks the framing every outgoing message uses (the
    server mirrors it per request); ``wire_dtype`` down-casts outgoing float
    arrays (e.g. ``"float32"`` halves frame bytes).  The three timeouts
    bound connection establishment, the hello handshake, and each
    ``run()``'s wait for results, respectively.

    The QoS knobs shape how a QoS-enabled server treats this client's
    frames: ``deadline_ms`` stamps every frame with a freshness budget,
    ``priority`` tags them with a priority class (an integer level or a
    name from the server's ``priority_map``), and ``on_rejected`` picks
    whether a shed frame raises :class:`~repro.serving.RequestRejectedError`
    (``"raise"``, default) or is silently dropped and counted
    (``"drop"``).

    ``retry`` attaches a :class:`RetryPolicy`: with ``max_retries > 0``
    the client transparently re-submits rejected frames (honoring the
    server's ``retry_after_ms``) and, optionally, frames lost to a
    server-side crash, within a deadline-aware budget.  Retries apply
    only under ``on_rejected="raise"`` semantics — ``"drop"`` keeps its
    historical shed-and-count behavior untouched.
    """

    wire_format: str = WIRE_FORMAT_ZLIB
    wire_dtype: Optional[str] = None
    connect_timeout_s: float = 30.0
    handshake_timeout_s: float = 10.0
    pipeline_timeout_s: float = 60.0
    deadline_ms: Optional[float] = None
    priority: Optional[Any] = None
    on_rejected: str = "raise"
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    _nested = {"retry": RetryPolicy}

    def __post_init__(self) -> None:
        if isinstance(self.retry, Mapping):
            object.__setattr__(self, "retry",
                               RetryPolicy.from_dict(self.retry))
        if not isinstance(self.retry, RetryPolicy):
            raise ValueError(f"retry must be a RetryPolicy (or a mapping), "
                             f"got {type(self.retry).__name__}")
        if self.wire_format not in WIRE_FORMATS:
            raise ValueError(f"unknown wire format {self.wire_format!r} "
                             f"(expected one of {WIRE_FORMATS})")
        if self.wire_dtype is not None:
            object.__setattr__(self, "wire_dtype",
                               _canonical_dtype(self.wire_dtype,
                                                knob="wire_dtype"))
        for knob in ("connect_timeout_s", "handshake_timeout_s",
                     "pipeline_timeout_s"):
            object.__setattr__(self, knob,
                               _check_number(getattr(self, knob), knob=knob,
                                             minimum=0.0, inclusive=False))
        if self.deadline_ms is not None:
            object.__setattr__(self, "deadline_ms",
                               _check_number(self.deadline_ms,
                                             knob="deadline_ms", minimum=0.0,
                                             inclusive=False))
        if self.priority is not None and not isinstance(self.priority, str):
            object.__setattr__(self, "priority",
                               _check_int(self.priority, knob="priority",
                                          minimum=0))
        if self.on_rejected not in ("raise", "drop"):
            raise ValueError(f"on_rejected must be 'raise' or 'drop', "
                             f"got {self.on_rejected!r}")

    @property
    def numpy_wire_dtype(self) -> Optional[np.dtype]:
        return None if self.wire_dtype is None else np.dtype(self.wire_dtype)


@dataclass(frozen=True)
class ServingConfig(_Config):
    """Everything a server-side deployment needs, in one value.

    Composes the runtime, batching, server, sharding, QoS, cluster and
    supervisor configs; this is the single
    ``config`` argument of :func:`repro.serving.serve` and
    :class:`repro.serving.ServingApp`.  Plain dicts are accepted for any
    sub-config (handy for file-borne configs).
    """

    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    batching: BatchingConfig = field(default_factory=BatchingConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
    sharding: ShardingConfig = field(default_factory=ShardingConfig)
    qos: QosConfig = field(default_factory=QosConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)

    _nested = {"runtime": RuntimeConfig, "batching": BatchingConfig,
               "server": ServerConfig, "sharding": ShardingConfig,
               "qos": QosConfig, "cluster": ClusterConfig,
               "supervisor": SupervisorConfig}

    def __post_init__(self) -> None:
        for name, cls in self._nested.items():
            value = getattr(self, name)
            if isinstance(value, Mapping):
                value = cls.from_dict(value)
                object.__setattr__(self, name, value)
            if not isinstance(value, cls):
                raise ValueError(f"{name} must be a {cls.__name__} (or a "
                                 f"mapping), got {type(value).__name__}")
        if self.sharding.enabled and self.cluster.enabled:
            raise ValueError(
                "sharding and cluster tiers are mutually exclusive: pick "
                "in-box worker processes (sharding.num_shards > 1) or a "
                "node fleet (cluster.nodes), not both — a node can itself "
                "be a machine's only tenant")
