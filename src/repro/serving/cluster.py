"""Multi-node cluster tier: the TCP router behind a clustered ServingApp.

The shard tier (:mod:`repro.serving.sharding`) scales serving across the
cores of one box; a :class:`ClusterPool` scales it across machines.  It
dials a fleet of replica nodes (:mod:`repro.runtime.node` — the same
:class:`~repro.runtime.shard.ReplicaCore` worker loop behind a socket),
bootstraps each with the current snapshot (same JSON zoo payload, same
seed → bit-identical replica weights), and exposes per-entry
``edge_fns``/``batch_fns`` that ship frames — in the same versioned raw
``Message`` framing the device/edge wire speaks — to the fleet.  The
:class:`~repro.system.engine.EdgeServer` threads act as a thin router:
sockets, coalescing and statistics stay local while every engine call runs
on another machine.

Guarantees preserved across the network boundary
------------------------------------------------
* **Snapshot pinning / hot reload** — the pool registers a *pre-swap
  preparer* on the :class:`~repro.serving.repository.ModelRepository`: a
  publish first replicates the new zoo to every live node and returns only
  after every one acknowledged, and only then does the router swap — so no
  frame is ever stamped with a snapshot version a node lacks.
* **Client-transparent failover** — node heartbeats (``ping``/``pong``
  envelopes on the data connection, with any traffic counting as liveness)
  detect a dead or partitioned node; its in-flight frames fail fast with
  :class:`~repro.runtime.node.NodeCrashedError` (a ``ConnectionError``)
  while new traffic reroutes to the surviving replicas.  With
  ``ClusterConfig.reconnect_s`` set, dead nodes are redialed and rejoin
  routing after a re-handshake re-syncs their snapshot.
* **Routing** — ``"least_loaded"`` sends each request to the live node
  with the fewest in-flight requests (round-robin tie-break);
  ``"hash"`` pins each zoo entry to a node on a consistent hash ring
  (64 vnodes per node), so an entry's compiled plans and arenas stay hot
  on one machine and a dead node only reshuffles its own arc.
"""

from __future__ import annotations

import hashlib
import itertools
import select
import socket
import threading
import time
from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.executor import ArrayDict, FrameState
from ..runtime.node import NodeCrashedError, NodeStats, bootstrap_meta
from ..runtime.shard import zoo_to_payload
from ..system.messages import (KIND_ERROR, KIND_FRAME, KIND_RESULT,
                               Message, NODE_KIND_PING, NODE_KIND_PONG,
                               SHARD_KIND_BATCH, SHARD_KIND_PUBLISH,
                               SHARD_KIND_PUBLISHED, SHARD_KIND_READY,
                               WIRE_FORMAT_RAW, recv_message, send_payload,
                               serialize_message)
from .config import ClusterConfig, ROUTING_HASH
from .repository import ModelRepository, ServingSnapshot
from .sharding import _PendingReply

__all__ = ["ClusterPool", "NodeCrashedError"]

#: Virtual nodes per physical node on the consistent hash ring: enough to
#: spread entries evenly over small fleets while keeping ring rebuilds
#: trivially cheap.
_VNODES = 64

#: Reader-side poll quantum (seconds): bounds how long a stop/crash takes
#: to be noticed without burning CPU on an idle connection.
_READ_POLL_S = 0.2


def _ring_point(key: str) -> int:
    """Stable 64-bit ring position for ``key`` (never Python's salted hash)."""
    return int.from_bytes(hashlib.md5(key.encode()).digest()[:8], "big")


class _Node:
    """One replica node: its socket, reader thread and counters.

    Single-use by design: a crashed node's object stays in the pool (its
    counters and death time still show in stats) until a reconnect builds
    a *replacement* ``_Node``, carries the cumulative counters over and
    swaps it into the routing table — no half-revived state to reason
    about.
    """

    def __init__(self, node_id: int, address: str,
                 request_timeout_s: float) -> None:
        self.node_id = node_id
        self.address = address
        host, _, port = address.rpartition(":")
        self._host, self._port = host, int(port)
        self.request_timeout_s = request_timeout_s
        self.ready = threading.Event()
        self.ready_error: Optional[str] = None
        #: Why this incarnation died (set once by ``mark_crashed``);
        #: ``None`` while it lives.
        self.death_reason: Optional[str] = None
        self._sock: Optional[socket.socket] = None
        self._reader: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._pending: Dict[int, _PendingReply] = {}
        self._corr = itertools.count(1)
        self._stopping = False
        self.crashed = False
        #: ``time.monotonic`` of death, for reconnect pacing.
        self.died_at: Optional[float] = None
        #: ``time.monotonic`` of the last envelope received — *any*
        #: traffic counts as liveness, so a node busy with a long frame is
        #: never declared dead for answering pongs late.
        self.last_seen = time.monotonic()
        # Outstanding heartbeat probes: correlation id -> perf_counter().
        self._pings: Dict[int, float] = {}
        # Counters (under self._lock) folded into NodeStats.
        self.frames = 0
        self.batches = 0
        self.errors = 0
        self.service_time_s = 0.0
        self.bytes_to_node = 0
        self.bytes_from_node = 0
        self.snapshot_version = 0
        self.rtt_ms: Optional[float] = None
        self.pid: Optional[int] = None

    # -- connection -----------------------------------------------------
    def connect(self, hello_meta: Dict, timeout: float) -> None:
        """Dial the node and ship the bootstrap hello (does not wait ready)."""
        sock = socket.create_connection((self._host, self._port),
                                        timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # One bound for every blocking socket op from here on: a send or a
        # mid-frame read stalled longer than the request timeout means the
        # node is unreachable by contract.
        sock.settimeout(self.request_timeout_s)
        self._sock = sock
        self._reader = threading.Thread(target=self._read_loop, daemon=True,
                                        name=f"node-{self.node_id}-reader")
        self._reader.start()
        self._send([Message(kind=SHARD_KIND_PUBLISH, frame_id=next(self._corr),
                            meta=dict(hello_meta))])

    def wait_ready(self, timeout: float) -> None:
        if not self.ready.wait(timeout):
            self.mark_crashed(f"no ready within {timeout:.1f}s")
            raise NodeCrashedError(
                f"node {self.node_id} ({self.address}) did not become "
                f"ready within {timeout:.1f}s")
        if self.crashed:
            raise NodeCrashedError(
                f"node {self.node_id} ({self.address}) failed to start: "
                f"{self.ready_error or 'connection lost'}")

    def carry_counters(self, old: "_Node") -> None:
        """Continue ``old``'s cumulative stats row (reconnect bookkeeping).

        Snapshot under ``old``'s lock, add under our own: by the time a
        replacement node carries counters its reader thread is already
        running, so the bare ``+=`` would race the reader's increments.
        """
        with old._lock:
            carried = (old.frames, old.batches, old.errors,
                       old.service_time_s, old.bytes_to_node,
                       old.bytes_from_node)
        with self._lock:
            self.frames += carried[0]
            self.batches += carried[1]
            self.errors += carried[2]
            self.service_time_s += carried[3]
            self.bytes_to_node += carried[4]
            self.bytes_from_node += carried[5]

    # -- health --------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self.crashed and self.ready.is_set()

    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    def mark_crashed(self, reason: str) -> None:
        """Fail every in-flight request and refuse new ones."""
        with self._lock:
            if self.crashed:
                return
            self.crashed = True
            self.died_at = time.monotonic()
            self.rtt_ms = None
            self._pings.clear()
            pending = list(self._pending.values())
            self._pending.clear()
            self.errors += len(pending)
        self.death_reason = reason
        self.ready_error = self.ready_error or reason
        self.ready.set()  # wake a wait_ready() on a node that died
        self._close_socket()
        exc = NodeCrashedError(
            f"node {self.node_id} ({self.address}) is gone: {reason}")
        for reply in pending:
            reply.fail(exc)

    def _close_socket(self) -> None:
        sock = self._sock
        if sock is None:
            return
        try:
            # shutdown (not just close) reliably unblocks a reader thread
            # parked in recv on the same socket.
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    # -- request plumbing ----------------------------------------------
    def _register(self, count: int) -> Tuple[int, _PendingReply]:
        reply = _PendingReply(count)
        with self._lock:
            if self.crashed:
                raise NodeCrashedError(
                    f"node {self.node_id} ({self.address}) already crashed")
            corr = next(self._corr)
            self._pending[corr] = reply
        return corr, reply

    def _forget(self, corr: int) -> None:
        with self._lock:
            self._pending.pop(corr, None)

    def _send(self, messages: Sequence[Message]) -> None:
        """Ship one or more envelopes back-to-back (atomic on the stream).

        Serialization happens before the first byte goes out and the whole
        sequence is sent under one lock, so a batch header and its frames
        are never interleaved with another thread's envelope (a ping
        landing mid-batch would desync the node's protocol).
        """
        blobs = [serialize_message(message, wire_format=WIRE_FORMAT_RAW)
                 for message in messages]
        with self._send_lock:
            sock = self._sock
            if sock is None or self.crashed:
                raise NodeCrashedError(
                    f"node {self.node_id} ({self.address}) is not connected")
            for blob in blobs:
                sent = send_payload(sock, blob)
                with self._lock:
                    self.bytes_to_node += sent

    def _request(self, messages: Sequence[Message], corr: int,
                 reply: _PendingReply) -> _PendingReply:
        try:
            self._send(messages)
        except NodeCrashedError:
            self._forget(corr)
            raise
        except (socket.timeout, OSError) as exc:
            self._forget(corr)
            with self._lock:
                self.errors += 1
            self.mark_crashed(f"request transport failed: {exc}")
            raise NodeCrashedError(str(exc)) from exc
        return self._await(corr, reply, self.request_timeout_s)

    def _await(self, corr: int, reply: _PendingReply,
               timeout: float) -> _PendingReply:
        if not reply.event.wait(timeout):
            self._forget(corr)
            with self._lock:
                self.errors += 1
            # A node that stops answering is unreachable by contract
            # (ClusterConfig.request_timeout_s): poison it so the router
            # stops feeding it and reroutes around it.
            self.mark_crashed(f"no answer within {timeout:.1f}s")
            raise NodeCrashedError(
                f"node {self.node_id} ({self.address}) did not answer "
                f"within {timeout:.1f}s")
        self._forget(corr)
        if reply.error is not None:
            raise reply.error
        return reply

    # -- public request API ---------------------------------------------
    def request_frame(self, entry: str, arrays: ArrayDict,
                      meta: Dict) -> FrameState:
        corr, reply = self._register(1)
        self._request([Message(kind=KIND_FRAME, frame_id=corr, arrays=arrays,
                               meta={"entry": entry, "frame": meta})],
                      corr, reply)
        result_arrays, result_meta, service = reply.results[0]
        with self._lock:
            self.frames += 1
            self.service_time_s += service
        return result_arrays, result_meta

    def request_batch(self, entry: str,
                      requests: Sequence[FrameState]) -> List[FrameState]:
        corr, reply = self._register(len(requests))
        envelopes = [Message(kind=SHARD_KIND_BATCH, frame_id=corr,
                             meta={"entry": entry, "count": len(requests)})]
        envelopes.extend(
            Message(kind=KIND_FRAME, frame_id=corr, arrays=arrays,
                    meta={"frame": meta, "index": index})
            for index, (arrays, meta) in enumerate(requests))
        self._request(envelopes, corr, reply)
        with self._lock:
            self.batches += 1
            self.frames += len(requests)
            self.service_time_s += sum(result[2] for result in reply.results)
        return [(arrays, meta) for arrays, meta, _ in reply.results]

    def start_publish(self, payload: Dict,
                      version: int) -> Tuple[int, _PendingReply]:
        """Phase 1 of snapshot replication: ship the envelope, don't wait.

        Splitting send from await lets the pool broadcast to every node
        first and collect acknowledgements second, so the fleet rebuilds
        the zoo's models/plans concurrently instead of one node after
        another.
        """
        corr, reply = self._register(1)
        try:
            self._send([Message(kind=SHARD_KIND_PUBLISH, frame_id=corr,
                                meta={"zoo": payload, "version": version})])
        except NodeCrashedError:
            self._forget(corr)
            raise
        except (socket.timeout, OSError) as exc:
            self._forget(corr)
            self.mark_crashed(f"publish transport failed: {exc}")
            raise NodeCrashedError(str(exc)) from exc
        return corr, reply

    def finish_publish(self, corr: int, reply: _PendingReply, version: int,
                       timeout: float) -> None:
        """Phase 2: wait for the node's acknowledgement of ``version``."""
        self._await(corr, reply, timeout)
        with self._lock:
            self.snapshot_version = max(self.snapshot_version, version)

    # -- heartbeats ------------------------------------------------------
    def outstanding_pings(self) -> int:
        with self._lock:
            return len(self._pings)

    def send_ping(self) -> None:
        corr = next(self._corr)
        with self._lock:
            if self.crashed:
                return
            self._pings[corr] = time.perf_counter()
        try:
            self._send([Message(kind=NODE_KIND_PING, frame_id=corr)])
        except NodeCrashedError:
            pass
        except (socket.timeout, OSError) as exc:
            self.mark_crashed(f"heartbeat transport failed: {exc}")

    # -- reader ----------------------------------------------------------
    def _read_loop(self) -> None:
        sock = self._sock
        while not self._stopping:
            try:
                readable, _, _ = select.select([sock], [], [], _READ_POLL_S)
            except (OSError, ValueError):  # socket torn down mid-select
                self.mark_crashed("connection closed")
                return
            if not readable:
                continue
            try:
                message = recv_message(sock)
            except socket.timeout:
                self.mark_crashed(
                    f"node stalled mid-frame for {self.request_timeout_s:.1f}s")
                return
            except (ConnectionError, OSError, ValueError) as exc:
                if not self._stopping:
                    self.mark_crashed(f"response transport failed: {exc}")
                return
            if message is None:
                if not self._stopping:
                    self.mark_crashed("connection closed by node")
                return
            with self._lock:
                self.bytes_from_node += message.wire_bytes or 0
                self.last_seen = time.monotonic()
            self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        if message.kind == SHARD_KIND_READY:
            with self._lock:
                self.snapshot_version = int(message.meta.get("version", 0))
                self.pid = message.meta.get("pid")
            self.ready.set()
            return
        if message.kind == NODE_KIND_PONG:
            with self._lock:
                sent_at = self._pings.pop(message.frame_id, None)
                # A pong for probe N proves every earlier probe's question
                # ("are you alive?") answered too.
                for corr in [c for c in self._pings if c < message.frame_id]:
                    self._pings.pop(corr, None)
                if sent_at is not None:
                    self.rtt_ms = (time.perf_counter() - sent_at) * 1e3
                self.snapshot_version = max(
                    self.snapshot_version,
                    int(message.meta.get("version", 0)))
            return
        with self._lock:
            reply = self._pending.get(message.frame_id)
        if reply is None:
            if message.kind == KIND_ERROR and not self.ready.is_set():
                # Bootstrap failure: the node could not build its
                # repository and reported why — surface the real traceback
                # instead of a generic "connection lost".
                self.ready_error = (
                    f"{message.meta.get('error', 'bootstrap failed')}\n"
                    f"{message.meta.get('traceback', '')}")
                self.mark_crashed(self.ready_error)
            return  # late reply for a timed-out/abandoned request
        if message.kind == KIND_RESULT:
            index = message.batch_index if message.batch_index is not None else 0
            reply.complete_index(index, (dict(message.arrays),
                                         message.meta.get("frame", {}),
                                         float(message.meta.get(
                                             "service_time_s", 0.0))))
        elif message.kind in (KIND_ERROR, SHARD_KIND_PUBLISHED):
            if message.kind == KIND_ERROR:
                with self._lock:
                    self.errors += 1
                reply.fail(RuntimeError(
                    f"node {self.node_id} execution failed: "
                    f"{message.meta.get('error', 'unknown')}\n"
                    f"--- node traceback ---\n"
                    f"{message.meta.get('traceback', '')}"))
            else:
                reply.complete_index(0, ({}, dict(message.meta), 0.0))

    # -- lifecycle -------------------------------------------------------
    def stop(self, join_timeout_s: float = 5.0) -> None:
        self._stopping = True
        self._close_socket()
        self.mark_crashed("cluster pool stopped")
        if self._reader is not None:
            self._reader.join(timeout=join_timeout_s)

    def stats(self) -> NodeStats:
        with self._lock:
            return NodeStats(
                node_id=self.node_id,
                address=self.address,
                alive=self.alive,
                frames=self.frames,
                batches=self.batches,
                errors=self.errors,
                service_time_s=self.service_time_s,
                bytes_to_node=self.bytes_to_node,
                bytes_from_node=self.bytes_from_node,
                snapshot_version=self.snapshot_version,
                rtt_ms=self.rtt_ms)


class ClusterPool:
    """Owns the connections to a fleet of replica nodes serving one zoo.

    Built (and started) by :class:`~repro.serving.app.ServingApp` when its
    :class:`~repro.serving.config.ClusterConfig` names node addresses.
    The pool's :meth:`edge_fns`/:meth:`batch_fns` mirror the repository's
    router mappings but execute on the fleet; the routing policy picks the
    node per request (least-loaded) or per entry (consistent hash).
    """

    def __init__(self, repository: ModelRepository,
                 config: ClusterConfig) -> None:
        if not config.enabled:
            raise ValueError("a ClusterPool needs at least one node address")
        self.repository = repository
        self.config = config
        self._nodes: List[_Node] = []
        self._rr = itertools.count()
        self._ring: List[Tuple[int, int]] = []
        self._started = False
        self._stopped = False
        self._publish_lock = threading.Lock()
        # Slot-level supervision bookkeeping that must survive _Node
        # replacement (a reconnect swaps the object, not the slot).
        self._restarts: List[int] = [0] * len(config.nodes)
        self._quarantine: List[Optional[str]] = [None] * len(config.nodes)
        self._death_reasons: List[Optional[str]] = [None] * len(config.nodes)
        # The bootstrap hello of the *latest replicated* snapshot: kept
        # current by prepare_publish so a node reconnecting in the window
        # between fleet replication and the parent's swap still receives
        # the version in flight (a hello with the repository's pre-swap
        # snapshot would leave it one version behind the stamps).
        self._hello_meta: Optional[Dict] = None
        self._hb_stop = threading.Event()
        self._hb_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "ClusterPool":
        """Dial every node, wait until the whole fleet is serving.

        Startup is strict — a cluster that begins life degraded is a
        deployment error, unlike a node dying later (failover handles
        that).  Hellos are broadcast first and awaited second, so the
        fleet builds its models concurrently.
        """
        if self._started:
            raise RuntimeError("ClusterPool is already started")
        self._started = True
        # Under the publish lock for lock discipline: a publisher advancing
        # the hello (prepare_publish) holds it, so the bootstrap write uses
        # the same lock even though no other thread exists yet at start().
        with self._publish_lock:
            self._hello_meta = bootstrap_meta(self.repository)
        try:
            for node_id, address in enumerate(self.config.nodes):
                node = _Node(node_id, address,
                             request_timeout_s=self.config.request_timeout_s)
                try:
                    node.connect(self._hello_meta,
                                 timeout=self.config.connect_timeout_s)
                except OSError as exc:
                    node.mark_crashed(f"dial failed: {exc}")
                    raise RuntimeError(
                        f"node {node_id} ({address}) is unreachable: "
                        f"{exc}") from exc
                finally:
                    self._nodes.append(node)
            deadline = time.monotonic() + self.config.connect_timeout_s
            for node in self._nodes:
                node.wait_ready(max(deadline - time.monotonic(), 0.001))
        except Exception:
            self.stop()
            raise
        self._ring = self._build_ring()
        self._hb_thread = threading.Thread(target=self._heartbeat_loop,
                                           daemon=True,
                                           name="cluster-heartbeat")
        self._hb_thread.start()
        return self

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _pick_least_loaded(self) -> _Node:
        """Live node with the fewest in-flight requests, ties round-robin.

        The round-robin tie-break matters for sequential traffic: every
        frame would otherwise see all nodes at zero in-flight and pile
        onto node 0.
        """
        nodes = self._nodes
        count = len(nodes)
        if count:
            start = next(self._rr)
            best: Optional[_Node] = None
            best_load = None
            for offset in range(count):
                node = nodes[(start + offset) % count]
                if not node.alive:
                    continue
                load = node.in_flight()
                if best_load is None or load < best_load:
                    best, best_load = node, load
            if best is not None:
                return best
        raise NodeCrashedError(f"all {count} cluster nodes are down")

    def _build_ring(self) -> List[Tuple[int, int]]:
        ring = []
        for node in self._nodes:
            for vnode in range(_VNODES):
                ring.append((_ring_point(f"{node.address}#{vnode}"),
                             node.node_id))
        ring.sort()
        return ring

    def _pick_hash(self, name: str) -> _Node:
        """Owner of ``name`` on the ring; a dead owner's arc falls clockwise."""
        ring = self._ring
        if ring:
            start = bisect_right(ring, (_ring_point(name), -1))
            seen: set = set()
            for offset in range(len(ring)):
                _, node_id = ring[(start + offset) % len(ring)]
                if node_id in seen:
                    continue
                seen.add(node_id)
                node = self._nodes[node_id]
                if node.alive:
                    return node
        raise NodeCrashedError(
            f"all {len(self._nodes)} cluster nodes are down")

    def _pick(self, name: str) -> _Node:
        if self.config.routing == ROUTING_HASH:
            return self._pick_hash(name)
        return self._pick_least_loaded()

    def edge_fn(self, name: str) -> Callable[[ArrayDict, Dict], FrameState]:
        def edge_fn(arrays: ArrayDict, meta: Dict) -> FrameState:
            return self._pick(name).request_frame(name, arrays, meta)

        return edge_fn

    def batch_fn(self, name: str
                 ) -> Callable[[Sequence[FrameState]], List[FrameState]]:
        def batch_fn(requests: Sequence[FrameState]) -> List[FrameState]:
            return self._pick(name).request_batch(name, list(requests))

        return batch_fn

    def edge_fns(self) -> Dict[str, Callable[[ArrayDict, Dict], FrameState]]:
        """Fleet-routing per-frame callables, one per retained entry name."""
        return {name: self.edge_fn(name)
                for name in self.repository.serving_names()}

    def batch_fns(self) -> Dict[str, Callable[[Sequence[FrameState]],
                                              List[FrameState]]]:
        """Fleet-routing batched callables, one per retained entry name."""
        return {name: self.batch_fn(name)
                for name in self.repository.serving_names()}

    # ------------------------------------------------------------------
    # Publish replication (registered as a repository pre-swap preparer)
    # ------------------------------------------------------------------
    def prepare_publish(self, snapshot: ServingSnapshot) -> None:
        """Replicate ``snapshot`` to every live node before the local swap.

        Runs as a :meth:`ModelRepository.add_preparer` hook: by the time
        the router's repository installs the snapshot (and its version can
        be stamped onto results), every live node has acknowledged it.  A
        node that fails to install the snapshot is treated like a crashed
        node (routed around) rather than failing the publish — unless *no*
        node is left, which aborts the publish.
        """
        with self._publish_lock:
            payload = zoo_to_payload(snapshot.zoo)

            def poison(node: _Node, exc: Exception) -> None:
                # The node diverged (or died) — it can never serve a frame
                # pinned to a snapshot it lacks, so take it out of routing.
                node.mark_crashed(f"snapshot v{snapshot.version} "
                                  f"replication failed: {exc}")

            in_flight = []
            for node in list(self._nodes):
                if not node.alive:
                    continue
                try:
                    corr, reply = node.start_publish(payload,
                                                     snapshot.version)
                except Exception as exc:
                    poison(node, exc)
                    continue
                in_flight.append((node, corr, reply))
            for node, corr, reply in in_flight:
                try:
                    node.finish_publish(corr, reply, snapshot.version,
                                        self.config.publish_timeout_s)
                except Exception as exc:
                    poison(node, exc)
            if not any(node.alive for node in self._nodes):
                raise RuntimeError(
                    f"publish of snapshot v{snapshot.version} aborted: no "
                    "cluster node accepted it")
            # Only now — with at least one node acknowledged and the parent
            # about to swap — may this snapshot become the reconnect
            # bootstrap.  Advancing the hello before the outcome is known
            # would, on an aborted publish, hand reconnecting nodes a
            # version the router never serves.
            if self._hello_meta is not None:
                self._hello_meta = dict(self._hello_meta,
                                        zoo=payload, version=snapshot.version)

    def sync(self, snapshot: ServingSnapshot) -> None:
        """Idempotent re-broadcast (covers publishes racing pool startup)."""
        self.prepare_publish(snapshot)

    # ------------------------------------------------------------------
    # Heartbeats + reconnect
    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        interval = self.config.heartbeat_ms / 1e3
        grace = interval * self.config.heartbeat_misses
        while not self._hb_stop.wait(interval):
            now = time.monotonic()
            for index, node in enumerate(list(self._nodes)):
                if node.alive:
                    # A node with requests in flight is never declared dead
                    # by heartbeat: its connection loop answers pings inline,
                    # so a long frame legitimately silences the link for its
                    # whole service time.  request_timeout_s already bounds
                    # a wedged node there; heartbeats police only idle
                    # connections, where no other traffic would reveal a
                    # partition.
                    if (node.in_flight() == 0
                            and node.outstanding_pings() >= self.config.heartbeat_misses
                            and now - node.last_seen >= grace):
                        node.mark_crashed(
                            f"missed {self.config.heartbeat_misses} "
                            f"heartbeats ({node.outstanding_pings()} probes "
                            f"unanswered, silent for "
                            f"{now - node.last_seen:.2f}s)")
                    elif node.outstanding_pings() < self.config.heartbeat_misses:
                        node.send_ping()
                elif (self.config.reconnect_s is not None
                      and node.died_at is not None
                      and self._quarantine[index] is None
                      and now - node.died_at >= self.config.reconnect_s):
                    self._try_reconnect(index, node)

    def _try_reconnect(self, index: int, old: _Node) -> bool:
        """Redial a dead node; it rejoins routing only after a full re-sync.

        Runs under the publish lock so a reconnect can never interleave
        with fleet replication: the hello the node receives is always the
        latest replicated snapshot, and a publish broadcast sees either the
        dead node (skipped) or the fully re-synced replacement.  Returns
        True when the replacement entered rotation.
        """
        self._death_reasons[index] = (old.death_reason
                                      or self._death_reasons[index])
        replacement = _Node(old.node_id, old.address,
                            request_timeout_s=self.config.request_timeout_s)
        try:
            with self._publish_lock:
                replacement.connect(dict(self._hello_meta),
                                    timeout=self.config.connect_timeout_s)
                replacement.wait_ready(self.config.connect_timeout_s)
                replacement.carry_counters(old)
                self._nodes[index] = replacement
                self._restarts[index] += 1
            return True
        except Exception:
            replacement.stop()
            old.died_at = time.monotonic()  # back off before the next try
            return False

    # ------------------------------------------------------------------
    # Self-healing (driven by repro.serving.supervisor)
    # ------------------------------------------------------------------
    def reconnect_node(self, index: int) -> bool:
        """Redial slot ``index`` now, bypassing the ``reconnect_s`` pacing.

        The supervisor's entry point after it has respawned the node
        *process* behind the address: the re-handshake replays the latest
        replicated snapshot under the publish lock (the same path the
        heartbeat-driven reconnect takes), so the rejoined node can never
        serve a version it missed while dead.  Returns True when the node
        is back in rotation.
        """
        node = self._nodes[index]
        if node.alive:
            return True
        if self._quarantine[index] is not None:
            return False
        return self._try_reconnect(index, node)

    def set_quarantined(self, index: int, reason: str) -> None:
        """Mark slot ``index`` crash-looping: no further reconnects, ever.

        Both reconnect paths honor the flag — the supervisor's explicit
        :meth:`reconnect_node` and the heartbeat loop's ``reconnect_s``
        redial.
        """
        self._quarantine[index] = reason

    def quarantine_reason(self, index: int) -> Optional[str]:
        return self._quarantine[index]

    def restarts(self, index: int) -> int:
        return self._restarts[index]

    # ------------------------------------------------------------------
    def stats(self) -> List[NodeStats]:
        """Per-node counters (router-side view), node order preserved.

        Slot-level supervision fields (``restarts``, ``quarantined``,
        ``last_death_reason``) survive node replacement: they live on the
        pool, not on the ``_Node`` they describe.
        """
        folded = []
        for index, node in enumerate(self._nodes):
            stats = node.stats()
            stats.restarts = self._restarts[index]
            stats.quarantined = self._quarantine[index] is not None
            stats.last_death_reason = (node.death_reason
                                       or self._death_reasons[index])
            folded.append(stats)
        return folded

    def live_count(self) -> int:
        return sum(1 for node in self._nodes if node.alive)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def stop(self) -> None:
        """Drop every connection (idempotent).  Node processes are not
        owned by the pool — whoever launched them stops them."""
        if self._stopped:
            return
        self._stopped = True
        self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=5.0)
        for node in self._nodes:
            node.stop()
