"""Self-healing supervision: respawn dead workers, quarantine crash loops.

The serving stack's failure *detection* is older than this module — a dead
shard fails its in-flight frames with ``ShardCrashedError`` and is routed
around, a dead cluster node likewise — but detection alone means every
crash permanently shrinks the pool.  The :class:`Supervisor` is the
*recovery* half: a monitor thread owned by
:class:`~repro.serving.app.ServingApp` that watches
:class:`~repro.serving.sharding.ShardPool` slots and app-owned
:class:`~repro.runtime.node.NodeProcess` replicas and brings dead workers
back, within explicit safety bounds:

* **Jittered exponential backoff** — a freshly dead worker is respawned
  after ``backoff_initial_s``; consecutive deaths of the same slot grow
  the delay by ``backoff_multiplier`` up to ``backoff_max_s``, with
  ``backoff_jitter`` randomization so a correlated crash (every worker
  killed at once) does not respawn the whole fleet in lockstep.
* **Snapshot replay before rotation** — a shard respawn runs under the
  repository's ``publish_barrier`` (the fresh worker is bootstrapped from
  the *current* snapshot and swapped into rotation before any publish can
  land), and a node respawn re-enters rotation through the cluster pool's
  re-handshake, which replays the latest replicated snapshot.  Either
  way, the pinning invariant — no frame is ever stamped with a snapshot
  version a worker in rotation lacks — survives restarts.
* **Crash-loop quarantine** — a slot that dies ``quarantine_deaths``
  times within ``quarantine_window_s`` seconds is *quarantined*: never
  respawned again, with the reason surfaced in
  ``EdgeServerStats.shards[k]`` / ``.nodes[k]`` (``quarantined`` +
  ``last_death_reason``).  A worker that crashes on arrival (bad host,
  poisoned model) must not burn CPU in a respawn loop forever; publishes
  and traffic continue against the surviving slots.

A *failed respawn attempt* counts as another death: it feeds the same
window (so a slot whose replacement dies during bootstrap still reaches
quarantine) and the same backoff schedule.

The supervisor is deliberately poll-based (``poll_interval_s``) rather
than event-driven: the pools already detect death synchronously for
fail-fast error semantics, and a poll loop cannot deadlock against the
publish/lifecycle locks it takes while healing.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from .config import SupervisorConfig

__all__ = ["Supervisor"]


class _Slot:
    """Supervision state of one worker slot (shard index or node index)."""

    __slots__ = ("tier", "index", "deaths", "consecutive", "backoff_until",
                 "restarts", "failed_respawns", "quarantined", "was_alive")

    def __init__(self, tier: str, index: int) -> None:
        self.tier = tier
        self.index = index
        #: ``time.monotonic`` of each observed death, pruned to the window.
        self.deaths: Deque[float] = deque()
        #: Deaths since the slot last served (resets once it is healthy).
        self.consecutive = 0
        self.backoff_until = 0.0
        self.restarts = 0
        self.failed_respawns = 0
        self.quarantined: Optional[str] = None
        self.was_alive = True


class _Target:
    """One supervised pool: uniform alive/respawn/quarantine surface."""

    def __init__(self, tier: str, count: int,
                 alive: Callable[[int], bool],
                 respawn: Callable[[int], None],
                 quarantine: Callable[[int, str], None],
                 death_reason: Callable[[int], Optional[str]]) -> None:
        self.tier = tier
        self.slots = [_Slot(tier, index) for index in range(count)]
        self.alive = alive
        self.respawn = respawn
        self.quarantine = quarantine
        self.death_reason = death_reason


class Supervisor:
    """Monitor thread that heals a :class:`~repro.serving.app.ServingApp`.

    Built by the app when ``ServingConfig.supervisor.enabled`` is set and
    at least one pool exists.  ``node_processes`` maps cluster slot
    indices to the :class:`~repro.runtime.node.NodeProcess` objects the
    app owns — only owned processes can be respawned; a slot without one
    (a remote machine's node) is still *reconnected* when its process
    proves reachable again, mirroring ``ClusterConfig.reconnect_s``.
    """

    def __init__(self, config: SupervisorConfig, *, shard_pool=None,
                 cluster_pool=None,
                 node_processes: Optional[Dict[int, object]] = None) -> None:
        self.config = config
        self._shard_pool = shard_pool
        self._cluster_pool = cluster_pool
        self._node_processes = dict(node_processes or {})
        self._targets: List[_Target] = []
        if shard_pool is not None:
            self._targets.append(_Target(
                "shard", shard_pool.num_shards,
                alive=lambda i: shard_pool.stats()[i].alive,
                respawn=self._respawn_shard,
                quarantine=shard_pool.set_quarantined,
                death_reason=lambda i: shard_pool.stats()[i].last_death_reason))
        if cluster_pool is not None:
            self._targets.append(_Target(
                "node", cluster_pool.num_nodes,
                alive=lambda i: cluster_pool.stats()[i].alive,
                respawn=self._respawn_node,
                quarantine=cluster_pool.set_quarantined,
                death_reason=lambda i: cluster_pool.stats()[i].last_death_reason))
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Observability (written only by the monitor thread; read anywhere).
        self._degraded_since: Optional[float] = None
        self._last_recovery_s: Optional[float] = None

    # ------------------------------------------------------------------
    # Respawn actions
    # ------------------------------------------------------------------
    def _respawn_shard(self, index: int) -> None:
        self._shard_pool.respawn(index,
                                 timeout=self.config.respawn_timeout_s)

    def _respawn_node(self, index: int) -> None:
        process = self._node_processes.get(index)
        if process is not None and not process.alive():
            # SO_REUSEADDR in the node listener makes the same-port rebind
            # safe; the configured address for this slot stays valid.
            process.restart(timeout=self.config.respawn_timeout_s)
        if not self._cluster_pool.reconnect_node(index):
            raise ConnectionError(
                f"node slot {index} respawned but did not re-enter rotation")

    # ------------------------------------------------------------------
    # Monitor loop
    # ------------------------------------------------------------------
    def _prune(self, slot: _Slot, now: float) -> None:
        window = self.config.quarantine_window_s
        while slot.deaths and now - slot.deaths[0] > window:
            slot.deaths.popleft()

    def _record_death(self, target: _Target, slot: _Slot,
                      now: float) -> None:
        """One observed death: feed the window, quarantine or back off."""
        slot.deaths.append(now)
        self._prune(slot, now)
        slot.consecutive += 1
        if len(slot.deaths) >= self.config.quarantine_deaths:
            reason = (f"crash loop: {len(slot.deaths)} deaths within "
                      f"{self.config.quarantine_window_s:.0f}s "
                      f"(last: {target.death_reason(slot.index) or 'unknown'})")
            slot.quarantined = reason
            target.quarantine(slot.index, reason)
            return
        slot.backoff_until = now + self.config.backoff_s(slot.consecutive)

    def _scan(self) -> None:
        now = time.monotonic()
        all_strong = True
        for target in self._targets:
            for slot in target.slots:
                if slot.quarantined is not None:
                    continue
                try:
                    alive = target.alive(slot.index)
                except Exception:
                    alive = False
                if alive:
                    if not slot.was_alive:
                        slot.was_alive = True
                        slot.consecutive = 0
                    continue
                all_strong = False
                if self._degraded_since is None:
                    self._degraded_since = now
                if slot.was_alive:
                    # Alive -> dead transition: this is the death event.
                    slot.was_alive = False
                    self._record_death(target, slot, now)
                    continue
                if now < slot.backoff_until:
                    continue
                try:
                    target.respawn(slot.index)
                except Exception:
                    slot.failed_respawns += 1
                    self._record_death(target, slot, now)
                else:
                    slot.restarts += 1
                    slot.was_alive = True
                    slot.consecutive = 0
        if all_strong and self._degraded_since is not None:
            # Quarantined slots are excluded above: "full strength" means
            # every slot the supervisor still fights for is serving.
            self._last_recovery_s = now - self._degraded_since
            self._degraded_since = None

    def _run(self) -> None:
        while not self._stop.wait(self.config.poll_interval_s):
            self._scan()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Supervisor":
        if self._thread is not None:
            raise RuntimeError("Supervisor is already started")
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="serving-supervisor")
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the monitor (idempotent).  Called *before* the pools stop.

        The join budget covers a respawn in flight: a respawn that loses
        the race with ``ShardPool.stop()`` aborts cleanly on the pool's
        lifecycle flag, so a generous join here never hangs shutdown.
        """
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self.config.respawn_timeout_s + 10.0)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Machine-readable supervision counters (the CI artifact's body).

        ``time_to_full_strength_s`` is the duration of the most recent
        completed outage: first observed death after full strength until
        every non-quarantined slot served again.  ``None`` while no
        outage completed (never degraded, or still degraded —
        ``degraded`` says which).
        """
        slots = []
        for target in self._targets:
            for slot in target.slots:
                slots.append({
                    "tier": slot.tier,
                    "index": slot.index,
                    "restarts": slot.restarts,
                    "failed_respawns": slot.failed_respawns,
                    "deaths_in_window": len(slot.deaths),
                    "quarantined": slot.quarantined,
                })
        return {
            "slots": slots,
            "restarts_total": sum(s["restarts"] for s in slots),
            "quarantined_total": sum(1 for s in slots if s["quarantined"]),
            "degraded": self._degraded_since is not None,
            "time_to_full_strength_s": self._last_recovery_s,
        }
