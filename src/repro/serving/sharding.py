"""Process-parallel serving shards: the pool behind a sharded ServingApp.

One Python process can only execute one frame's worth of GNN kernels at a
time — the GIL serializes every handler/batcher thread, so on a multi-core
edge box the aggregate throughput of the in-process server is capped at
roughly one core regardless of client count.  A :class:`ShardPool` lifts
that cap: it spawns ``num_shards`` worker processes (each holding its *own*
models, compiled plans and buffer arenas — see
:func:`repro.runtime.shard._shard_main`), and exposes per-entry
``edge_fns``/``batch_fns`` that hand frames (and whole micro-batches) to the
workers over preallocated shared-memory rings.  The
:class:`~repro.system.engine.EdgeServer` threads then act as a thin router:
sockets, coalescing and statistics stay in the parent, while every engine
call runs on another core.

Guarantees preserved across the process boundary
------------------------------------------------
* **Snapshot pinning / hot reload** — the pool registers a *pre-swap
  preparer* on the parent :class:`~repro.serving.repository.ModelRepository`:
  a publish first replicates the new zoo (as JSON, with the parent's version
  number) to every shard and waits for acknowledgements, and only then does
  the parent swap — so no frame can ever be stamped with a snapshot version
  a live shard does not hold.  Shards rebuild models from the same seed, so
  their weights (and therefore logits) are numerically identical to the
  parent's.
* **Batch purity** — a coalesced micro-batch travels to one shard in one
  envelope sequence and is executed by the shard's snapshot-grouping batch
  router, exactly like the in-process path.
* **Error isolation** — a failing frame comes back as a per-frame error
  envelope; a failing batched call raises in the parent's ``batch_fn`` so
  the engine's per-frame fallback isolates the offending frame; a *crashed*
  shard fails its in-flight requests with
  :class:`~repro.runtime.shard.ShardCrashedError` (a ``ConnectionError``)
  instead of hanging clients, and new traffic is routed to the surviving
  shards.

``num_shards=1`` (the default) never builds a pool at all — the app serves
in-process exactly as before — and platforms without
``multiprocessing.shared_memory`` fall back the same way (with a warning).
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.executor import ArrayDict, FrameState
from ..runtime.shard import (ShardChannel, ShardCrashedError, ShardStats,
                             create_channel, transport_available,
                             zoo_to_payload, _shard_main)
from ..system.scheduler import BackpressureError
from ..system.messages import (KIND_ERROR, KIND_FRAME, KIND_RESULT,
                               KIND_STOP, Message, SHARD_KIND_BATCH,
                               SHARD_KIND_PUBLISH, SHARD_KIND_PUBLISHED,
                               SHARD_KIND_READY, WIRE_FORMAT_RAW,
                               deserialize_message, serialize_message)
from .config import ShardingConfig
from .repository import ModelRepository, ServingSnapshot

__all__ = ["ShardPool", "ShardCrashedError", "sharding_supported"]

#: How long a frame/batch waits for room on a shard's request ring before
#: it is shed with a :class:`~repro.system.scheduler.BackpressureError`.
#: Shedding happens *before* the ring (nothing written, protocol intact),
#: so a saturated shard answers "rejected" within this bound instead of
#: stalling the caller for the full request timeout and then crashing.
RING_SHED_TIMEOUT_S = 0.05


def sharding_supported(transport: str) -> bool:
    """Whether this platform can run the sharded tier with ``transport``."""
    return transport_available(transport)


class _PendingReply:
    """Parent-side slot for one in-flight shard request (frame or batch)."""

    __slots__ = ("event", "count", "results", "error", "received")

    def __init__(self, count: int) -> None:
        self.event = threading.Event()
        self.count = count
        self.results: List[Optional[Tuple[ArrayDict, Dict, float]]] = \
            [None] * count
        self.error: Optional[BaseException] = None
        self.received = 0

    def complete_index(self, index: int,
                       result: Tuple[ArrayDict, Dict, float]) -> None:
        if 0 <= index < self.count and self.results[index] is None:
            self.results[index] = result
            self.received += 1
        if self.received >= self.count:
            self.event.set()

    def fail(self, exc: BaseException) -> None:
        self.error = exc
        self.event.set()


class _Shard:
    """One worker process plus its channel, reader thread and counters."""

    def __init__(self, shard_id: int, process, channel: ShardChannel,
                 request_timeout_s: float) -> None:
        self.shard_id = shard_id
        self.process = process
        self.channel = channel
        self.request_timeout_s = request_timeout_s
        self.ready = threading.Event()
        self.ready_error: Optional[str] = None
        #: Why this worker died (first crash reason wins); ``None`` while
        #: it lives.  Surfaced as ``ShardStats.last_death_reason``.
        self.death_reason: Optional[str] = None
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._pending: Dict[int, _PendingReply] = {}
        self._corr = itertools.count(1)
        self._stopping = False
        self._stopped = False
        self.crashed = False
        # Counters (under self._lock) folded into ShardStats.
        self.frames = 0
        self.batches = 0
        self.errors = 0
        self.service_time_s = 0.0
        self.bytes_to_shard = 0
        self.bytes_from_shard = 0
        self.snapshot_version = 0
        self.reader = threading.Thread(target=self._read_loop, daemon=True,
                                       name=f"shard-{shard_id}-reader")
        self.reader.start()

    # -- health --------------------------------------------------------
    @property
    def alive(self) -> bool:
        return (not self.crashed and self.process is not None
                and self.process.is_alive())

    def mark_crashed(self, reason: str) -> None:
        """Fail every in-flight request and refuse new ones."""
        with self._lock:
            if self.crashed:
                return
            self.crashed = True
            pending = list(self._pending.values())
            self._pending.clear()
            self.errors += len(pending)
        self.death_reason = reason
        self.ready_error = self.ready_error or reason
        self.ready.set()  # wake a start() waiting on a worker that died
        exc = ShardCrashedError(
            f"shard {self.shard_id} (pid {getattr(self.process, 'pid', '?')}) "
            f"is gone: {reason}")
        for reply in pending:
            reply.fail(exc)

    # -- request plumbing ----------------------------------------------
    def _register(self, count: int) -> Tuple[int, _PendingReply]:
        reply = _PendingReply(count)
        with self._lock:
            if self.crashed:
                raise ShardCrashedError(
                    f"shard {self.shard_id} already crashed")
            corr = next(self._corr)
            self._pending[corr] = reply
        return corr, reply

    def _forget(self, corr: int) -> None:
        with self._lock:
            self._pending.pop(corr, None)

    def _send(self, messages: Sequence[Message],
              timeout: Optional[float] = None,
              shed_timeout: Optional[float] = None) -> None:
        """Ship one or more envelopes back-to-back (atomic on the ring).

        Every envelope is size-checked against the transport *before* the
        first one is written: a mid-sequence failure would desync the
        worker's protocol (it would swallow unrelated envelopes as the
        missing frames of a half-sent batch).

        ``shed_timeout`` bounds the wait for the *first* envelope only:
        a ring with no room within it raises
        :class:`~repro.system.scheduler.BackpressureError` — nothing has
        been written yet, so shedding is safe and the shard stays healthy
        (shed *before* the ring, never after).  Once the first envelope
        is on the ring the full ``timeout`` applies: giving up
        mid-sequence would desync the protocol, so from there on a
        timeout keeps the historical crash semantics.
        """
        blobs = [serialize_message(message, wire_format=WIRE_FORMAT_RAW)
                 for message in messages]
        limit = self.channel.max_message_bytes
        if limit is not None:
            for blob in blobs:
                if len(blob) > limit:
                    raise ValueError(
                        f"envelope of {len(blob)} bytes exceeds the "
                        f"{limit}-byte shard ring message limit — raise "
                        "ShardingConfig.ring_bytes for frames this large")
        timeout = self.request_timeout_s if timeout is None else timeout
        with self._send_lock:
            for index, blob in enumerate(blobs):
                if index == 0 and shed_timeout is not None:
                    try:
                        sent = self.channel.send_bytes(
                            blob, timeout=min(shed_timeout, timeout))
                    except TimeoutError as exc:
                        raise BackpressureError(
                            f"shard {self.shard_id} ring had no room within "
                            f"{shed_timeout:.3f}s") from exc
                else:
                    sent = self.channel.send_bytes(blob, timeout=timeout)
                with self._lock:
                    self.bytes_to_shard += sent

    def _await(self, corr: int, reply: _PendingReply,
               timeout: float) -> _PendingReply:
        if not reply.event.wait(timeout):
            self._forget(corr)
            with self._lock:
                self.errors += 1
            # A worker that stops answering is unreachable by contract
            # (ShardingConfig.request_timeout_s): poison it so the router
            # stops feeding it — a wedged-but-alive worker would otherwise
            # keep stalling every Nth request forever — and kill the
            # process (it is serial; everything queued behind the stuck
            # request would time out too).
            self.mark_crashed(f"no answer within {timeout:.1f}s")
            try:
                self.process.kill()
            except Exception:  # pragma: no cover - already gone
                pass
            raise ShardCrashedError(
                f"shard {self.shard_id} did not answer within {timeout:.1f}s")
        self._forget(corr)
        if reply.error is not None:
            raise reply.error
        return reply

    # -- public request API ---------------------------------------------
    def request_frame(self, entry: str, arrays: ArrayDict,
                      meta: Dict) -> FrameState:
        corr, reply = self._register(1)
        try:
            self._send([Message(kind=KIND_FRAME, frame_id=corr, arrays=arrays,
                                meta={"entry": entry, "frame": meta})],
                       shed_timeout=RING_SHED_TIMEOUT_S)
        except BackpressureError:
            # Ring full, nothing written: shed upstream (the edge server
            # answers "rejected"); the shard itself is healthy.
            self._forget(corr)
            raise
        except (TimeoutError, ValueError, OSError) as exc:
            self._forget(corr)
            with self._lock:
                self.errors += 1
            if isinstance(exc, ValueError):
                raise  # oversized frame: a caller bug, not a dead shard
            self.mark_crashed(f"request transport failed: {exc}")
            raise ShardCrashedError(str(exc)) from exc
        self._await(corr, reply, self.request_timeout_s)
        result_arrays, result_meta, service = reply.results[0]
        with self._lock:
            self.frames += 1
            self.service_time_s += service
        return result_arrays, result_meta

    def request_batch(self, entry: str,
                      requests: Sequence[FrameState]) -> List[FrameState]:
        corr, reply = self._register(len(requests))
        envelopes = [Message(kind=SHARD_KIND_BATCH, frame_id=corr,
                             meta={"entry": entry, "count": len(requests)})]
        envelopes.extend(
            Message(kind=KIND_FRAME, frame_id=corr, arrays=arrays,
                    meta={"frame": meta, "index": index})
            for index, (arrays, meta) in enumerate(requests))
        try:
            self._send(envelopes, shed_timeout=RING_SHED_TIMEOUT_S)
        except BackpressureError:
            self._forget(corr)  # nothing on the ring: shed, don't crash
            raise
        except (TimeoutError, ValueError, OSError) as exc:
            self._forget(corr)
            with self._lock:
                self.errors += 1
            if isinstance(exc, ValueError):
                raise
            self.mark_crashed(f"request transport failed: {exc}")
            raise ShardCrashedError(str(exc)) from exc
        self._await(corr, reply, self.request_timeout_s)
        with self._lock:
            self.batches += 1
            self.frames += len(requests)
            self.service_time_s += sum(result[2] for result in reply.results)
        return [(arrays, meta) for arrays, meta, _ in reply.results]

    def start_publish(self, payload: Dict,
                      version: int) -> Tuple[int, _PendingReply]:
        """Phase 1 of snapshot replication: ship the envelope, don't wait.

        Splitting send from await lets the pool broadcast to every shard
        first and collect acknowledgements second, so the N workers rebuild
        the zoo's models/plans concurrently instead of one after another.
        """
        corr, reply = self._register(1)
        try:
            self._send([Message(kind=SHARD_KIND_PUBLISH, frame_id=corr,
                                meta={"zoo": payload, "version": version})])
        except (TimeoutError, OSError) as exc:
            self._forget(corr)
            self.mark_crashed(f"publish transport failed: {exc}")
            raise ShardCrashedError(str(exc)) from exc
        return corr, reply

    def finish_publish(self, corr: int, reply: _PendingReply, version: int,
                       timeout: float) -> None:
        """Phase 2: wait for the shard's acknowledgement of ``version``."""
        self._await(corr, reply, timeout)
        with self._lock:
            self.snapshot_version = version

    # -- reader ----------------------------------------------------------
    def _read_loop(self) -> None:
        while not self._stopping:
            try:
                blob = self.channel.recv_bytes(timeout=0.2)
            except Exception as exc:  # torn-down channel mid-read
                self.mark_crashed(f"response transport failed: {exc}")
                return
            if blob is None:
                if self._stopping:
                    return
                if self.process is not None and not self.process.is_alive():
                    self.mark_crashed(
                        f"worker process exited with code "
                        f"{self.process.exitcode}")
                    return
                continue
            try:
                message = deserialize_message(blob)
            except Exception as exc:
                self.mark_crashed(f"undecodable shard response: {exc}")
                return
            with self._lock:
                self.bytes_from_shard += len(blob)
            self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        if message.kind == SHARD_KIND_READY:
            with self._lock:
                self.snapshot_version = int(message.meta.get("version", 0))
            self.ready.set()
            return
        with self._lock:
            reply = self._pending.get(message.frame_id)
        if reply is None:
            if message.kind == KIND_ERROR and not self.ready.is_set():
                # Bootstrap failure: the worker could not build its
                # repository and reported why with correlation id 0 —
                # surface the real traceback instead of a generic
                # "worker exited".
                self.ready_error = (
                    f"{message.meta.get('error', 'bootstrap failed')}\n"
                    f"{message.meta.get('traceback', '')}")
                self.mark_crashed(self.ready_error)
            return  # late reply for a timed-out/abandoned request
        if message.kind == KIND_RESULT:
            index = message.batch_index if message.batch_index is not None else 0
            reply.complete_index(index, (dict(message.arrays),
                                         message.meta.get("frame", {}),
                                         float(message.meta.get(
                                             "service_time_s", 0.0))))
        elif message.kind in (KIND_ERROR, SHARD_KIND_PUBLISHED):
            if message.kind == KIND_ERROR:
                with self._lock:
                    self.errors += 1
                reply.fail(RuntimeError(
                    f"shard {self.shard_id} execution failed: "
                    f"{message.meta.get('error', 'unknown')}\n"
                    f"--- shard traceback ---\n"
                    f"{message.meta.get('traceback', '')}"))
            else:
                reply.complete_index(0, ({}, dict(message.meta), 0.0))

    # -- lifecycle -------------------------------------------------------
    def stop(self, join_timeout_s: float = 5.0) -> None:
        """Kill the worker and release its transport (idempotent).

        Safe to call twice — the supervisor stops a dead shard before
        respawning its slot, and the pool's own ``stop()`` may race it.
        Closing *and unlinking* the rings here, before any replacement is
        spawned, is what keeps long respawn histories from leaking shared
        memory segments (pinned by ``tests/test_serving_selfheal.py``).
        """
        if self._stopped:
            return
        self._stopped = True
        self._stopping = True
        if self.alive:
            try:
                # Short timeout: a wedged worker with a full ring must not
                # stall shutdown for request_timeout_s — it gets killed
                # right below anyway.
                self._send([Message(kind=KIND_STOP)], timeout=1.0)
            except Exception:
                pass
        if self.process is not None:
            self.process.join(timeout=join_timeout_s)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=join_timeout_s)
        self.mark_crashed("shard pool stopped")
        self.reader.join(timeout=join_timeout_s)
        self.channel.close()
        self.channel.unlink()

    def carry_counters(self, old: "_Shard") -> None:
        """Fold a dead predecessor's cumulative counters into this shard.

        Keeps slot-level statistics monotonic across a respawn (``old`` is
        dead and stopped, so reading its counters without its lock is
        safe — nothing mutates them anymore).
        """
        with self._lock:
            self.frames += old.frames
            self.batches += old.batches
            self.errors += old.errors
            self.service_time_s += old.service_time_s
            self.bytes_to_shard += old.bytes_to_shard
            self.bytes_from_shard += old.bytes_from_shard

    def stats(self) -> ShardStats:
        with self._lock:
            return ShardStats(
                shard_id=self.shard_id,
                pid=getattr(self.process, "pid", None),
                alive=self.alive,
                frames=self.frames,
                batches=self.batches,
                errors=self.errors,
                service_time_s=self.service_time_s,
                bytes_to_shard=self.bytes_to_shard,
                bytes_from_shard=self.bytes_from_shard,
                snapshot_version=self.snapshot_version)


class ShardPool:
    """Owns ``num_shards`` worker processes serving one repository's zoo.

    Built (and started) by :class:`~repro.serving.app.ServingApp` when its
    :class:`~repro.serving.config.ShardingConfig` asks for more than one
    shard.  The pool's :meth:`edge_fns`/:meth:`batch_fns` mirror the
    repository's router mappings but execute on worker processes; frames
    are spread round-robin over the live shards.
    """

    def __init__(self, repository: ModelRepository,
                 config: ShardingConfig) -> None:
        if config.num_shards < 2:
            raise ValueError("a ShardPool needs num_shards >= 2 — "
                             "num_shards=1 serves in process, no pool")
        if not sharding_supported(config.transport):
            raise RuntimeError(
                f"shard transport {config.transport!r} is not available on "
                "this platform")
        self.repository = repository
        self.config = config
        self._shards: List[_Shard] = []
        self._rr = itertools.count()
        self._started = False
        self._stopped = False
        self._publish_lock = threading.Lock()
        #: Serializes respawns against stop(); guards _stopped.
        self._lifecycle_lock = threading.Lock()
        # Slot-level bookkeeping that must survive _Shard replacement.
        self._restarts: List[int] = []
        self._quarantine: List[Optional[str]] = []
        self._death_reasons: List[Optional[str]] = []

    # ------------------------------------------------------------------
    def start(self) -> "ShardPool":
        """Spawn the workers, wait until every one is serving.

        Workers are started with the repository's *current* snapshot; a
        publish landing during startup is caught by the re-sync the app
        performs right after registering the pool's publish preparer.
        """
        if self._started:
            raise RuntimeError("ShardPool is already started")
        import multiprocessing
        # Spawned (not forked) workers: a forked child would inherit the
        # parent's BLAS/thread state mid-flight, which is a known deadlock
        # source — and spawn keeps the bootstrap honest (everything a shard
        # needs must cross as picklable/JSON data).
        ctx = multiprocessing.get_context("spawn")
        bootstrap = self._bootstrap()
        self._started = True
        self._restarts = [0] * self.config.num_shards
        self._quarantine = [None] * self.config.num_shards
        self._death_reasons = [None] * self.config.num_shards
        try:
            for shard_id in range(self.config.num_shards):
                self._shards.append(self._spawn_shard(ctx, shard_id,
                                                      bootstrap))
            deadline = time.monotonic() + self.config.start_timeout_s
            for shard in self._shards:
                self._wait_ready(shard, deadline,
                                 self.config.start_timeout_s)
        except Exception:
            self.stop()
            raise
        return self

    def _bootstrap(self) -> Dict:
        """The worker bootstrap payload for the repository's current snapshot."""
        snapshot = self.repository.snapshot()
        return {
            "zoo": zoo_to_payload(snapshot.zoo),
            "version": snapshot.version,
            "in_dim": self.repository.in_dim,
            "num_classes": self.repository.num_classes,
            "runtime": self.repository.runtime.to_dict(),
            "seed": self.repository.seed,
            "retain": self.repository.retain,
        }

    def _spawn_shard(self, ctx, shard_id: int, bootstrap: Dict) -> _Shard:
        channel, spec = create_channel(ctx, self.config.transport,
                                       self.config.ring_bytes)
        process = ctx.Process(
            target=_shard_main, args=(shard_id, spec, bootstrap),
            daemon=True, name=f"serving-shard-{shard_id}")
        process.start()
        return _Shard(shard_id, process, channel,
                      request_timeout_s=self.config.request_timeout_s)

    @staticmethod
    def _wait_ready(shard: _Shard, deadline: float, budget: float) -> None:
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not shard.ready.wait(remaining):
            raise RuntimeError(
                f"shard {shard.shard_id} did not become ready "
                f"within {budget:.1f}s")
        if shard.crashed or not shard.process.is_alive():
            raise RuntimeError(
                f"shard {shard.shard_id} failed to start: "
                f"{shard.ready_error or 'worker exited'}")

    # ------------------------------------------------------------------
    # Self-healing (driven by repro.serving.supervisor)
    # ------------------------------------------------------------------
    def respawn(self, index: int, timeout: Optional[float] = None) -> None:
        """Replace the dead worker behind slot ``index`` with a fresh one.

        Sequence, and why the order matters:

        1. Stop the corpse — joining the process and closing *and
           unlinking* its shared-memory rings before any replacement
           transport exists, so restart cycles never accumulate leaked
           segments.
        2. Under the repository's ``publish_barrier`` (the same lock
           ``publish()`` takes): read the current snapshot, spawn a fresh
           worker bootstrapped from it, and wait for its ready ack.
           Holding the barrier across spawn-and-swap means no publish can
           land between the bootstrap read and the slot swap — so a frame
           can never be stamped with a snapshot version the fresh worker
           lacks (the sharded tier's pinning invariant, preserved across
           restarts).  Publishes queue behind the respawn, exactly as
           they queue behind a node reconnect in the cluster tier.
        3. Swap the fresh shard into the slot — unless the pool stopped
           meanwhile, in which case the fresh worker is torn down and the
           respawn aborts cleanly.

        Raises on failure (spawn error, ready timeout, pool stopped); the
        supervisor counts a failed respawn as another death.
        """
        if not self._started:
            raise RuntimeError("ShardPool is not started")
        if self._quarantine[index] is not None:
            raise RuntimeError(f"shard slot {index} is quarantined: "
                               f"{self._quarantine[index]}")
        old = self._shards[index]
        if old.alive:
            raise RuntimeError(
                f"shard {index} is alive; refusing to respawn over it")
        # The reader thread's liveness poll may not have named the death
        # yet (a worker killed while idle, respawned within the poll
        # quantum) — fall back to the exit code so the slot's
        # ``last_death_reason`` never reads as "nothing happened".
        self._death_reasons[index] = (
            old.death_reason or self._death_reasons[index]
            or f"worker process exited with code "
               f"{getattr(old.process, 'exitcode', None)}")
        old.stop()
        import multiprocessing
        ctx = multiprocessing.get_context("spawn")
        budget = self.config.start_timeout_s if timeout is None else timeout
        with self.repository.publish_barrier():
            with self._lifecycle_lock:
                if self._stopped:
                    raise RuntimeError(
                        "shard pool stopped; respawn aborted")
            fresh = self._spawn_shard(ctx, index, self._bootstrap())
            try:
                self._wait_ready(fresh, time.monotonic() + budget, budget)
                fresh.carry_counters(old)
                with self._lifecycle_lock:
                    if self._stopped:
                        raise RuntimeError(
                            "shard pool stopped during respawn")
                    # A single list-item store: _pick() sees either the
                    # old (dead, routed around) or the new (live) shard,
                    # never a half-state.
                    self._shards[index] = fresh
                    self._restarts[index] += 1
            except Exception:
                fresh.stop()
                raise

    def set_quarantined(self, index: int, reason: str) -> None:
        """Mark slot ``index`` crash-looping: no further respawns, ever."""
        self._quarantine[index] = reason

    def quarantine_reason(self, index: int) -> Optional[str]:
        return self._quarantine[index]

    def restarts(self, index: int) -> int:
        return self._restarts[index]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _pick(self) -> _Shard:
        """Next live shard, round-robin; raises when every shard is down.

        The shared counter is drawn exactly once and the probe walks a
        local window from there — drawing inside the loop would let
        concurrent callers interleave counter values such that one thread
        sees only dead slots and falsely reports every shard down.
        """
        count = len(self._shards)
        if count:
            start = next(self._rr)
            for offset in range(count):
                shard = self._shards[(start + offset) % count]
                if shard.alive:
                    return shard
        raise ShardCrashedError(
            f"all {count} serving shards are down")

    def edge_fn(self, name: str) -> Callable[[ArrayDict, Dict], FrameState]:
        def edge_fn(arrays: ArrayDict, meta: Dict) -> FrameState:
            return self._pick().request_frame(name, arrays, meta)

        return edge_fn

    def batch_fn(self, name: str
                 ) -> Callable[[Sequence[FrameState]], List[FrameState]]:
        def batch_fn(requests: Sequence[FrameState]) -> List[FrameState]:
            return self._pick().request_batch(name, list(requests))

        return batch_fn

    def edge_fns(self) -> Dict[str, Callable[[ArrayDict, Dict], FrameState]]:
        """Shard-routing per-frame callables, one per retained entry name."""
        return {name: self.edge_fn(name)
                for name in self.repository.serving_names()}

    def batch_fns(self) -> Dict[str, Callable[[Sequence[FrameState]],
                                              List[FrameState]]]:
        """Shard-routing batched callables, one per retained entry name."""
        return {name: self.batch_fn(name)
                for name in self.repository.serving_names()}

    # ------------------------------------------------------------------
    # Publish replication (registered as a repository pre-swap preparer)
    # ------------------------------------------------------------------
    def prepare_publish(self, snapshot: ServingSnapshot) -> None:
        """Replicate ``snapshot`` to every live shard before the parent swap.

        Runs as a :meth:`ModelRepository.add_preparer` hook: by the time
        the parent repository installs the snapshot (and its version can be
        stamped onto device results), every live shard has acknowledged it.
        A shard that fails to install the snapshot is treated like a
        crashed shard (killed and routed around) rather than failing the
        publish — unless *no* shard is left, which aborts the publish.
        """
        with self._publish_lock:
            payload = zoo_to_payload(snapshot.zoo)

            def poison(shard: _Shard, exc: Exception) -> None:
                # The shard diverged (or died) — it can never serve a frame
                # pinned to a snapshot it lacks, so take it out of routing.
                shard.mark_crashed(f"snapshot v{snapshot.version} "
                                   f"replication failed: {exc}")
                try:
                    shard.process.kill()
                except Exception:
                    pass

            # Broadcast first, await second: every worker rebuilds the new
            # zoo's models and plans concurrently, so a publish costs one
            # (slowest-shard) build instead of num_shards sequential ones.
            in_flight = []
            for shard in list(self._shards):
                if not shard.alive:
                    continue
                try:
                    corr, reply = shard.start_publish(payload,
                                                      snapshot.version)
                except Exception as exc:
                    poison(shard, exc)
                    continue
                in_flight.append((shard, corr, reply))
            for shard, corr, reply in in_flight:
                try:
                    shard.finish_publish(corr, reply, snapshot.version,
                                         self.config.publish_timeout_s)
                except Exception as exc:
                    poison(shard, exc)
            if not any(shard.alive for shard in self._shards):
                raise RuntimeError(
                    f"publish of snapshot v{snapshot.version} aborted: no "
                    "serving shard accepted it")

    def sync(self, snapshot: ServingSnapshot) -> None:
        """Idempotent re-broadcast (covers publishes racing pool startup)."""
        self.prepare_publish(snapshot)

    # ------------------------------------------------------------------
    def stats(self) -> List[ShardStats]:
        """Per-shard counters (parent-side view), shard order preserved.

        Slot-level supervision fields (``restarts``, ``quarantined``,
        ``last_death_reason``) survive worker replacement: they live on
        the pool, not on the ``_Shard`` they describe.
        """
        folded = []
        for index, shard in enumerate(self._shards):
            stats = shard.stats()
            stats.restarts = self._restarts[index]
            stats.quarantined = self._quarantine[index] is not None
            stats.last_death_reason = (shard.death_reason
                                       or self._death_reasons[index])
            folded.append(stats)
        return folded

    def live_count(self) -> int:
        return sum(1 for shard in self._shards if shard.alive)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def stop(self) -> None:
        """Stop every worker (idempotent): stop envelope, join, kill, unlink.

        Serialized against :meth:`respawn` by the lifecycle lock: a respawn
        in flight either completes before the flag is read (its fresh shard
        is in ``_shards`` and stopped below) or observes the flag and tears
        its fresh worker down itself.
        """
        with self._lifecycle_lock:
            if self._stopped:
                return
            self._stopped = True
        for shard in self._shards:
            shard.stop()
