"""`repro.serving` — the public facade of the co-inference serving stack.

This package is the one supported entry point for deploying searched
architectures: config-driven builders, a versioned model repository with
hot zoo reload, and lifecycle-managed server/client wrappers.

Quickstart::

    from repro.serving import BatchingConfig, ServingConfig, serve

    app = serve(zoo, ServingConfig(batching=BatchingConfig(max_batch_size=8)),
                in_dim=3, num_classes=10)
    with app:
        with app.client(conditions={"latency_budget_ms": 50.0}) as client:
            results, stats = client.run(frames)

        # later, while the app is live and serving traffic:
        app.repository.publish(new_zoo)   # hot reload, no dropped frames

Layer map
---------
* :mod:`repro.serving.config` — frozen, validated, ``to_dict``/``from_dict``
  round-trippable configuration (:class:`RuntimeConfig`,
  :class:`BatchingConfig`, :class:`ServerConfig`, :class:`QosConfig`,
  :class:`ClientConfig`, composed by :class:`ServingConfig`).
* :mod:`repro.serving.builders` — :func:`build_callables` /
  :func:`build_zoo_callables`, the config-driven replacements for the
  deprecated ``zoo_*`` free functions.
* :mod:`repro.serving.repository` — :class:`ModelRepository` /
  :class:`ServingSnapshot`: zoo → callables → compiled plans behind a
  versioned, atomically swappable snapshot (hot reload with in-flight
  frames answered from exactly one snapshot).
* :mod:`repro.serving.app` — :class:`ServingApp`, :class:`Client`,
  :func:`serve`: explicit start/stop/closed lifecycle, context managers.
* :mod:`repro.serving.sharding` — :class:`ShardPool`: process-parallel
  serving shards (multi-core scaling) behind a
  :class:`ShardingConfig`-enabled app; frames cross to worker processes
  over shared-memory rings carrying the raw wire framing.
* :mod:`repro.serving.cluster` — :class:`ClusterPool`: the multi-node
  cluster tier (multi-machine scaling) behind a
  :class:`ClusterConfig`-enabled app; frames travel to TCP replica nodes
  (:mod:`repro.runtime.node`) with heartbeat failover, least-loaded or
  consistent-hash routing, and publish-ack-before-swap zoo replication.
* :mod:`repro.serving.supervisor` — :class:`Supervisor`: self-healing for
  both pool tiers behind a :class:`SupervisorConfig`-enabled app — dead
  shard/node respawn with jittered exponential backoff and crash-loop
  quarantine; pairs with the client-side :class:`RetryPolicy` so worker
  deaths stay invisible to callers.

The engine primitives (:class:`~repro.system.engine.EdgeServer`,
:class:`~repro.system.engine.DeviceClient`) stay available in
:mod:`repro.system` for callers that need the raw sockets; everything above
them should come through this facade.  ``__all__`` below is a stable
contract guarded by ``tools/check_public_api.py`` in CI.
"""

from ..core.executor import ServingCallables
from ..runtime import available_backends
from ..runtime.node import NodeCrashedError, NodeStats
from ..runtime.shard import ShardCrashedError, ShardStats
from ..system.engine import RequestRejectedError
from .app import Client, ServingApp, serve
from .builders import build_callables, build_zoo_callables
from .cluster import ClusterPool
from .config import (BatchingConfig, ClientConfig, ClusterConfig, QosConfig,
                     RetryPolicy, RuntimeConfig, ServerConfig, ServingConfig,
                     ShardingConfig, SupervisorConfig)
from .repository import SNAPSHOT_META_KEY, ModelRepository, ServingSnapshot
from .sharding import ShardPool, sharding_supported
from .supervisor import Supervisor

__all__ = [
    "BatchingConfig",
    "Client",
    "ClientConfig",
    "ClusterConfig",
    "ClusterPool",
    "ModelRepository",
    "NodeCrashedError",
    "NodeStats",
    "QosConfig",
    "RequestRejectedError",
    "RetryPolicy",
    "RuntimeConfig",
    "SNAPSHOT_META_KEY",
    "ServerConfig",
    "ServingApp",
    "ServingCallables",
    "ServingConfig",
    "ServingSnapshot",
    "ShardCrashedError",
    "ShardPool",
    "ShardStats",
    "ShardingConfig",
    "Supervisor",
    "SupervisorConfig",
    "available_backends",
    "build_callables",
    "build_zoo_callables",
    "serve",
    "sharding_supported",
]
