"""Config-driven builders turning models and zoos into engine callables.

These are the facade's replacements for the deprecated ``zoo_*`` free
functions of :mod:`repro.core.executor`: instead of re-threading loose
``runtime=``/``dtype=`` keywords through every constructor, callers hand a
single :class:`~repro.serving.config.RuntimeConfig` to

* :func:`build_callables` — one trained/initialized model into a
  :class:`~repro.core.executor.ServingCallables`, and
* :func:`build_zoo_callables` — every entry of an
  :class:`~repro.core.zoo.ArchitectureZoo` into per-entry callables sharing
  one per-entry lock.

Both route through the single internal
:func:`repro.core.executor._build_callables` helper, so the runtime knobs
are resolved in exactly one place.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence

from ..core.executor import (ArchitectureModel, ServingCallables,
                             _build_callables)
from ..core.zoo import ArchitectureZoo
from .config import RuntimeConfig


def build_callables(model: ArchitectureModel,
                    config: Optional[RuntimeConfig] = None, *,
                    lock: Optional[threading.Lock] = None,
                    entry_name: Optional[str] = None,
                    calibration_frames: Optional[Sequence] = None
                    ) -> ServingCallables:
    """Build all three engine callables for one model.

    The model keeps its weights (use this for entries trained elsewhere —
    plans resolve parameters at call time, so a later ``load_state_dict``
    is honored).  Pass ``lock`` to serialize the callables when they may be
    invoked concurrently; :class:`~repro.core.executor.ArchitectureModel`
    is not thread-safe.

    ``entry_name`` picks the entry's precision from the config's
    ``precision_policy``.  For int8 entries, ``calibration_frames`` (a
    sequence of :class:`~repro.graph.data.Batch`, ideally representative
    sample data) drives the post-training calibration; when omitted the
    builder calibrates on deterministic synthetic frames — fine for
    benchmarks and replica-consistent rebuilds, but accuracy-critical
    deployments should pass real frames.
    """
    config = config or RuntimeConfig()
    return _build_callables(model, config, lock=lock, entry_name=entry_name,
                            calibration_frames=calibration_frames)


def build_zoo_callables(zoo: ArchitectureZoo, *, in_dim: int,
                        num_classes: int,
                        config: Optional[RuntimeConfig] = None,
                        seed: int = 0,
                        calibration_frames: Optional[Sequence] = None
                        ) -> Dict[str, ServingCallables]:
    """Build :class:`~repro.core.executor.ServingCallables` for every zoo entry.

    Each entry gets a freshly initialized model (from ``seed``) and two
    independently compiled plans — per-frame and batched — whose buffer
    arenas live as long as the returned callables, which is how an edge
    server keeps per-entry arenas across requests.  All callables of one
    entry share a per-entry lock (shared model, not thread-safe); distinct
    entries still execute in parallel.

    Entry names are threaded through to the config's ``precision_policy``,
    so one zoo can serve mixed precisions (e.g. a hot entry at int8, the
    rest at float64); ``calibration_frames`` is shared by every int8 entry.
    """
    config = config or RuntimeConfig()
    callables: Dict[str, ServingCallables] = {}
    for entry in zoo:
        model = ArchitectureModel(entry.architecture, in_dim=in_dim,
                                  num_classes=num_classes, seed=seed)
        callables[entry.name] = build_callables(
            model, config, lock=threading.Lock(), entry_name=entry.name,
            calibration_frames=calibration_frames)
    return callables
