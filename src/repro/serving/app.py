"""Lifecycle-managed serving application and client.

:class:`ServingApp` wraps the socket :class:`~repro.system.engine.EdgeServer`
(and its micro-batcher and dispatcher wiring) behind an explicit
``start → running → closed`` lifecycle; :class:`Client` does the same for
:class:`~repro.system.engine.DeviceClient`.  Both are context managers, so
the common shape of a deployment is::

    from repro.serving import BatchingConfig, ServingConfig, serve

    app = serve(zoo, ServingConfig(batching=BatchingConfig(max_batch_size=8)),
                in_dim=3, num_classes=10)
    with app:
        with app.client(conditions={"latency_budget_ms": 50.0}) as client:
            results, stats = client.run(frames)
    # sockets, worker pool and batcher threads are all torn down here

The app serves through its :class:`~repro.serving.repository.ModelRepository`
routers, so ``app.repository.publish(new_zoo)`` hot-reloads the serving
table under live traffic (see :mod:`repro.serving.repository`).
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.zoo import ArchitectureZoo
from ..system.engine import (DeviceClient, DeviceFn, EdgeServer,
                             EdgeServerStats, FrameResult, PipelineStats,
                             ServingSession)
from .cluster import ClusterPool
from .config import ClientConfig, RuntimeConfig, ServingConfig
from .repository import ModelRepository
from .sharding import ShardPool, sharding_supported
from .supervisor import Supervisor


def _as_serving_config(config: Union[ServingConfig, Mapping, None]
                       ) -> ServingConfig:
    if config is None:
        return ServingConfig()
    if isinstance(config, ServingConfig):
        return config
    if isinstance(config, Mapping):
        return ServingConfig.from_dict(config)
    raise ValueError(f"config must be a ServingConfig or a mapping, got "
                     f"{type(config).__name__}")


class ServingApp:
    """A lifecycle-managed edge serving deployment.

    Wraps an :class:`~repro.system.engine.EdgeServer` built from a
    :class:`~repro.serving.config.ServingConfig` and wired to a
    :class:`~repro.serving.repository.ModelRepository`: the server's edge
    and batched callables are the repository's snapshot routers and its
    selector dispatches with the current snapshot's zoo metrics, so a
    ``repository.publish(new_zoo)`` hot-swaps what a *running* app serves.

    Lifecycle: ``start()`` (idempotent via context manager entry) brings
    the socket up; ``stop()`` tears everything down and marks the app
    closed — a closed app cannot be restarted (build a new one; the
    repository and its snapshots are reusable).
    """

    def __init__(self, repository: ModelRepository,
                 config: Union[ServingConfig, Mapping, None] = None, *,
                 node_processes: Optional[Sequence] = None) -> None:
        self.repository = repository
        self.config = _as_serving_config(config)
        # NodeProcess replicas the *app* owns (started by the caller and
        # handed over so the supervisor may respawn them).  Matched to
        # cluster slots by "host:port" address; processes serving addresses
        # outside config.cluster.nodes are rejected up front — a typo here
        # would silently leave a replica unsupervised.
        self._node_processes = list(node_processes or [])
        if self._node_processes:
            configured = set(self.config.cluster.nodes)
            unknown = [p.address for p in self._node_processes
                       if p.address not in configured]
            if unknown:
                raise ValueError(
                    f"node_processes serve addresses absent from "
                    f"config.cluster.nodes: {unknown}")
        self._server: Optional[EdgeServer] = None
        self._pool: Optional[ShardPool] = None
        self._cluster: Optional[ClusterPool] = None
        self._supervisor: Optional[Supervisor] = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """True between a successful :meth:`start` and :meth:`stop`."""
        return self._server is not None and not self._closed

    @property
    def closed(self) -> bool:
        """True once :meth:`stop` ran; a closed app cannot be restarted."""
        return self._closed

    @property
    def host(self) -> str:
        return self._require_server().host

    @property
    def port(self) -> int:
        return self._require_server().port

    @property
    def server(self) -> EdgeServer:
        """The underlying edge server (escape hatch; running apps only)."""
        return self._require_server()

    def _require_server(self) -> EdgeServer:
        if self._server is None or self._closed:
            raise RuntimeError(
                "ServingApp is not running (call start() or use it as a "
                "context manager)" if not self._closed else
                "ServingApp is closed; build a new app to serve again")
        return self._server

    # ------------------------------------------------------------------
    def start(self) -> "ServingApp":
        """Bind the socket, start the accept loop, subscribe to reloads.

        With ``config.sharding.num_shards > 1`` (and a capable platform)
        this also spawns the shard worker processes and serves through
        them: the edge server's callables become thin shard routers and
        every engine call executes on another core.  ``num_shards=1`` — or
        a platform without ``multiprocessing.shared_memory`` for the
        ``"shm"`` transport — serves in process exactly as before (the
        latter with a :class:`RuntimeWarning`).

        With ``config.cluster.nodes`` set, the app instead dials the
        replica-node fleet (strictly — an unreachable node at startup
        raises) and serves through the cluster router; see
        :mod:`repro.serving.cluster`.
        """
        if self._closed:
            raise RuntimeError("ServingApp is closed and cannot be "
                               "restarted; build a new app")
        if self._server is not None:
            raise RuntimeError("ServingApp is already running")
        # Raises cleanly when nothing was published yet — a server with an
        # empty table could never answer a frame.
        self.repository.snapshot()
        sharding = self.config.sharding
        if sharding.enabled:
            if sharding_supported(sharding.transport):
                self._pool = ShardPool(self.repository, sharding).start()
            else:
                warnings.warn(
                    f"sharding requested ({sharding.num_shards} shards, "
                    f"transport {sharding.transport!r}) but the platform "
                    "does not support it; falling back to in-process "
                    "serving", RuntimeWarning, stacklevel=2)
        if self.config.cluster.enabled:
            # Strict by design (no in-process fallback): a cluster config
            # names concrete machines, and silently serving without them
            # would hide a deployment failure.  start() raises if any node
            # is unreachable; node deaths *after* startup are handled by
            # heartbeat failover instead.
            try:
                self._cluster = ClusterPool(self.repository,
                                            self.config.cluster).start()
            except Exception:
                if self._pool is not None:  # pragma: no cover - configs
                    self._pool.stop()       # are mutually exclusive
                    self._pool = None
                raise
        server_config, batching = self.config.server, self.config.batching
        # The QoS policy guards the whole admission path; the batching
        # config's max_queue_depth is a convenience alias for the same
        # knob (an explicit QosConfig value wins).
        qos_policy = self.config.qos.policy()
        if (qos_policy.max_queue_depth is None
                and batching.max_queue_depth is not None):
            qos_policy = dataclasses.replace(
                qos_policy, max_queue_depth=batching.max_queue_depth)
        backend = self._pool if self._pool is not None else self._cluster
        try:
            if backend is not None:
                # Publishes must replicate to every shard/node *before* the
                # local swap (pre-swap preparer), so no frame is ever
                # stamped with a snapshot version a live replica does not
                # hold.  Register the preparer and re-sync the current
                # snapshot (an idempotent re-broadcast, covering a publish
                # that raced pool startup) *before* the socket starts
                # accepting — and atomically w.r.t. publishes (the
                # barrier), or a publish in flight right now could read
                # the preparer list pre-registration and swap
                # post-sync, invisible to both.
                with self.repository.publish_barrier():
                    self.repository.add_preparer(backend.prepare_publish)
                    backend.sync(self.repository.snapshot())
            self._server = EdgeServer(
                edge_fns=self._edge_fns(),
                batch_fns=self._batch_fns(),
                selector=self.repository.select_for_meta,
                host=server_config.host, port=server_config.port,
                max_workers=server_config.max_workers,
                backlog=server_config.backlog,
                frontend=server_config.frontend,
                qos=qos_policy,
                session_log_limit=server_config.session_log_limit,
                max_batch_size=batching.max_batch_size,
                max_wait_ms=batching.max_wait_ms,
                shard_stats=self._pool.stats if self._pool is not None
                else None,
                node_stats=self._cluster.stats if self._cluster is not None
                else None).start()
        except Exception:
            if backend is not None:
                self.repository.remove_preparer(backend.prepare_publish)
                backend.stop()
                self._pool = None
                self._cluster = None
            raise
        self.repository.subscribe(self._on_publish)
        # A publish may have landed between reading the routers above and
        # the subscribe — it would have notified nobody.  Re-install once
        # now that we are subscribed, so the server's name table can never
        # miss a publish (the routers themselves always follow the
        # repository; shard replication is already covered by the preparer
        # registered above).
        self._on_publish(self.repository.snapshot())
        if (self.config.supervisor.enabled
                and (self._pool is not None or self._cluster is not None)):
            # Match app-owned node processes to their cluster slot index so
            # the supervisor can respawn the right process for a dead slot.
            by_address = {p.address: p for p in self._node_processes}
            owned = {index: by_address[address]
                     for index, address in
                     enumerate(self.config.cluster.nodes)
                     if address in by_address}
            self._supervisor = Supervisor(
                self.config.supervisor, shard_pool=self._pool,
                cluster_pool=self._cluster, node_processes=owned).start()
        return self

    def _edge_fns(self):
        if self._pool is not None:
            return self._pool.edge_fns()
        if self._cluster is not None:
            return self._cluster.edge_fns()
        return self.repository.edge_fns()

    def _batch_fns(self):
        if self._pool is not None:
            return self._pool.batch_fns()
        if self._cluster is not None:
            return self._cluster.batch_fns()
        return self.repository.batch_fns()

    @property
    def sharded(self) -> bool:
        """True when this app serves through a process-parallel shard pool."""
        return self._pool is not None

    @property
    def shard_pool(self) -> Optional[ShardPool]:
        """The shard pool behind this app (``None`` for in-process serving)."""
        return self._pool

    @property
    def clustered(self) -> bool:
        """True when this app routes frames to a fleet of replica nodes."""
        return self._cluster is not None

    @property
    def cluster_pool(self) -> Optional[ClusterPool]:
        """The cluster pool behind this app (``None`` when not clustered)."""
        return self._cluster

    @property
    def supervisor(self) -> Optional[Supervisor]:
        """The self-healing monitor (``None`` unless enabled and pooled)."""
        return self._supervisor

    def _on_publish(self, snapshot) -> None:
        """Install the new snapshot's entry names on the live server.

        The routers already follow the repository, so in-flight frames are
        correct without this; the reinstall refreshes the *name table*:
        hello acknowledgements list the new entries, and the table keeps
        covering every retained snapshot's names so in-flight frames pinned
        to an entry the new zoo dropped still reach their snapshot (fresh
        frames naming a dropped entry fail cleanly at the router).
        """
        server = self._server
        if server is None or self._closed:
            return
        server.install_table(edge_fns=self._edge_fns(),
                             batch_fns=self._batch_fns(),
                             selector=self.repository.select_for_meta)

    def stop(self) -> None:
        """Stop serving and close the app (idempotent).

        The supervisor stops *first*: once the pools start tearing down,
        every worker looks dead, and a respawn racing the teardown would
        at best be wasted work (the pools abort it on their lifecycle
        flag) and at worst delay shutdown by a full respawn budget.
        """
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            self._supervisor.stop()
        self.repository.unsubscribe(self._on_publish)
        if self._pool is not None:
            self.repository.remove_preparer(self._pool.prepare_publish)
        if self._cluster is not None:
            self.repository.remove_preparer(self._cluster.prepare_publish)
        if self._server is not None:
            self._server.stop()
        if self._pool is not None:
            self._pool.stop()
        if self._cluster is not None:
            self._cluster.stop()

    def __enter__(self) -> "ServingApp":
        if self._server is None and not self._closed:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def stats(self) -> EdgeServerStats:
        """Aggregate serving statistics snapshot (see ``EdgeServer.stats``)."""
        return self._require_server().stats()

    def sessions(self) -> List[ServingSession]:
        return self._require_server().sessions()

    def client(self, *, name: str = "", conditions: Optional[Dict] = None,
               model: Optional[str] = None,
               config: Optional[ClientConfig] = None) -> "Client":
        """A :class:`Client` bound to this app (and its repository).

        Because the client knows the repository, ``client.run(frames)``
        can build the device callable for the dispatched entry itself —
        no manual ``device_fn`` bookkeeping in the common loopback case.
        """
        return Client(self.host, self.port, config=config, name=name,
                      conditions=conditions, model=model,
                      repository=self.repository)


class Client:
    """Lifecycle-managed device-side client.

    Wraps :class:`~repro.system.engine.DeviceClient` with a
    :class:`~repro.serving.config.ClientConfig` (wire framing/dtype and the
    connect/handshake/pipeline timeouts) and an explicit lifecycle:
    ``start()`` connects, ``stop()`` closes, both implied by ``with``.

    When built via :meth:`ServingApp.client` the client carries the app's
    repository, so :meth:`run` without an explicit ``device_fn`` executes
    the device segment of the server-dispatched entry (stamped with the
    producing snapshot version for hot-reload correctness).
    """

    def __init__(self, host: str, port: int, *,
                 config: Optional[ClientConfig] = None, name: str = "",
                 conditions: Optional[Dict] = None,
                 model: Optional[str] = None,
                 repository: Optional[ModelRepository] = None) -> None:
        self.host = host
        self.port = port
        self.config = config or ClientConfig()
        self.name = name
        self._conditions = dict(conditions) if conditions else None
        self._model = model
        self._repository = repository
        self._client: Optional[DeviceClient] = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._client is not None and not self._closed

    @property
    def closed(self) -> bool:
        return self._closed

    def _require_client(self) -> DeviceClient:
        if self._client is None or self._closed:
            raise RuntimeError(
                "Client is not connected (call start() or use it as a "
                "context manager)" if not self._closed else
                "Client is closed; build a new client to reconnect")
        return self._client

    def start(self) -> "Client":
        """Connect and send the hello handshake."""
        if self._closed:
            raise RuntimeError("Client is closed and cannot be reconnected; "
                               "build a new client")
        if self._client is not None:
            raise RuntimeError("Client is already connected")
        self._client = DeviceClient(
            self.host, self.port, timeout_s=self.config.connect_timeout_s,
            client_name=self.name, conditions=self._conditions,
            model=self._model, wire_format=self.config.wire_format,
            wire_dtype=self.config.numpy_wire_dtype,
            deadline_ms=self.config.deadline_ms,
            priority=self.config.priority,
            on_rejected=self.config.on_rejected,
            retry_policy=self.config.retry)
        return self

    def stop(self) -> None:
        """Flush the stop marker and close the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._client is not None:
            self._client.close()

    def __enter__(self) -> "Client":
        if self._client is None and not self._closed:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def handshake(self) -> Dict:
        """Server metadata from the hello acknowledgement."""
        return self._require_client().handshake(
            timeout_s=self.config.handshake_timeout_s)

    @property
    def assigned_model(self) -> Optional[str]:
        """Zoo entry the server's dispatcher chose for this client, if any."""
        return self.handshake().get("model")

    def _resolve_device_fn(self) -> DeviceFn:
        if self._repository is None:
            raise ValueError(
                "run() without device_fn needs a repository-bound client "
                "(build it via ServingApp.client) — pass device_fn "
                "explicitly otherwise")
        name = self._model or self.assigned_model
        if name is None:
            raise ValueError(
                "run() cannot pick a device segment: the client announced "
                "no model and the server dispatched none — pass model=, "
                "conditions=, or an explicit device_fn")
        return self._repository.device_fn(name)

    def run(self, frames: Sequence[object],
            device_fn: Optional[DeviceFn] = None
            ) -> Tuple[List[FrameResult], PipelineStats]:
        """Pipeline ``frames`` through device segment, link and edge.

        Without ``device_fn``, a repository-bound client runs the device
        segment of its dispatched (or explicitly named) entry.
        """
        if device_fn is None:
            device_fn = self._resolve_device_fn()
        return self._require_client().run_pipeline(
            frames, device_fn, timeout_s=self.config.pipeline_timeout_s)


def serve(zoo: ArchitectureZoo,
          config: Union[ServingConfig, Mapping, None] = None, *,
          in_dim: int, num_classes: int, seed: int = 0,
          repository: Optional[ModelRepository] = None,
          node_processes: Optional[Sequence] = None) -> ServingApp:
    """One-liner: publish ``zoo`` and start serving it.

    Builds a :class:`~repro.serving.repository.ModelRepository` (honoring
    ``config.runtime``), publishes ``zoo`` as snapshot v1, and returns a
    *started* :class:`ServingApp` — use it as a context manager (or call
    ``stop()``) to tear the server down.  Pass an existing ``repository``
    to serve one repository from several apps or to pre-publish snapshots.
    ``node_processes`` hands app-started :class:`~repro.runtime.node.
    NodeProcess` replicas to the app so an enabled supervisor can respawn
    them (matched to ``config.cluster.nodes`` by address).
    """
    config = _as_serving_config(config)
    if repository is None:
        repository = ModelRepository(in_dim=in_dim, num_classes=num_classes,
                                     runtime=config.runtime, seed=seed)
    else:
        # An existing repository builds snapshots with ITS runtime/seed; a
        # caller explicitly requesting something different must hear that
        # the request cannot be honored rather than silently serving other
        # plans/weights.
        if (config.runtime != RuntimeConfig()
                and config.runtime != repository.runtime):
            raise ValueError(
                f"config.runtime {config.runtime} conflicts with the "
                f"provided repository's runtime {repository.runtime}; "
                "snapshots are built with the repository's config")
        if seed != 0 and seed != repository.seed:
            raise ValueError(
                f"seed={seed} conflicts with the provided repository's "
                f"seed={repository.seed}; models are built with the "
                "repository's seed")
    if repository.version == 0 or zoo is not repository.snapshot().zoo:
        repository.publish(zoo)
    return ServingApp(repository, config,
                      node_processes=node_processes).start()
