"""Versioned model repository: the swappable serving table behind a server.

A :class:`ModelRepository` owns the zoo → callables → compiled-plan wiring
behind an immutable, versioned :class:`ServingSnapshot`.  Publishing a new
zoo (:meth:`ModelRepository.publish`) builds the next snapshot *outside* the
lock (plan compilation is the slow part) and then swaps it in atomically —
this is what gives a live :class:`~repro.serving.app.ServingApp` **hot zoo
reload**: the serving table changes between frames, never inside one.

Snapshot pinning
----------------
Hot reload alone is not enough for correctness: a frame whose device segment
ran against snapshot ``v`` must be resumed by snapshot ``v``'s edge segment,
or a republished entry with the same name but different weights/topology
would silently produce wrong logits for every frame in flight across the
swap.  The repository therefore

* stamps every device result's metadata with the producing snapshot version
  (:data:`SNAPSHOT_META_KEY`),
* keeps the last ``retain`` snapshots alive, and
* resolves each edge/batched request to the *pinned* snapshot when it is
  still retained and still holds the entry, falling back to the current one
  otherwise.

Batched requests coalesced across a publish may mix pins; the repository's
batched router groups them per snapshot and executes each group through its
own snapshot, so **every frame is answered wholly from exactly one
snapshot** — pinned by ``tests/test_serving_hot_reload.py``.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from types import MappingProxyType
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.dispatcher import RuntimeDispatcher
from ..core.executor import ArrayDict, FrameState, ServingCallables
from ..core.zoo import ArchitectureZoo
from .builders import build_zoo_callables
from .config import RuntimeConfig

#: Metadata key carrying the snapshot version a frame's device segment ran
#: against; stamped by :meth:`ModelRepository.device_fn` wrappers and read
#: back by the repository's edge/batched routers.
SNAPSHOT_META_KEY = "snapshot"


@dataclass(frozen=True)
class ServingSnapshot:
    """One immutable published version of the serving table.

    Everything a frame needs — the zoo, the per-entry callables and the
    dispatcher built from the zoo's metrics — frozen together, so a frame
    resolved against one snapshot can never observe another's state.
    """

    version: int
    zoo: ArchitectureZoo
    callables: Mapping[str, ServingCallables]
    dispatcher: RuntimeDispatcher

    def names(self) -> List[str]:
        """Entry names served by this snapshot."""
        return list(self.callables)

    def release_buffers(self) -> int:
        """Release the pooled plan buffers of every entry; returns bytes freed.

        Called by the repository when the snapshot falls out of the retained
        window: per-thread arenas otherwise keep every executing thread's
        steady-state buffers pooled for as long as anything references the
        snapshot.  Releasing is safe for a frame still in flight on this
        snapshot — its buffers survive through the frame's own references
        and the arena simply reallocates on the next request.
        """
        return sum(serving.release_buffers()
                   for serving in self.callables.values())


class ModelRepository:
    """Owns the zoo → serving-callables wiring behind versioned snapshots.

    Parameters
    ----------
    in_dim, num_classes:
        Model dimensions every published zoo's entries are built with.
    runtime:
        :class:`~repro.serving.config.RuntimeConfig` applied to every
        published snapshot (compiled vs eager, dtype, plan segments,
        per-entry ``precision_policy`` and kernel ``backend``).  Entries
        resolved to ``"int8"`` calibrate on deterministic synthetic frames
        at publish time — repositories are rebuilt from config alone in
        shard workers and cluster nodes, and the seeded synthetic
        calibration is what makes every replica derive bit-identical
        quantization scales (the shard/cluster equivalence guarantee
        extends to quantized entries).
    seed:
        Weight-initialization seed for the per-entry models.
    retain:
        How many snapshots stay alive for in-flight frames pinned to a
        superseded version.  Must be at least 2 for hot reload to keep
        frames in flight across one publish correct; older snapshots are
        dropped (their pinned frames are then served by the current one).
    zoo:
        Convenience: publish this zoo immediately.
    """

    def __init__(self, in_dim: int, num_classes: int, *,
                 runtime: Optional[RuntimeConfig] = None, seed: int = 0,
                 retain: int = 2,
                 zoo: Optional[ArchitectureZoo] = None) -> None:
        if retain < 1:
            raise ValueError(f"retain must be at least 1, got {retain}")
        self.in_dim = in_dim
        self.num_classes = num_classes
        self.runtime = runtime or RuntimeConfig()
        self.seed = seed
        self._retain = retain
        self._lock = threading.Lock()
        #: Serializes whole publishes: the version is allocated before the
        #: pre-swap preparers run but only consumed at the swap, so two
        #: interleaved publishes could otherwise mint the same version.
        self._publish_lock = threading.Lock()
        self._snapshots: Dict[int, ServingSnapshot] = {}
        self._current: Optional[ServingSnapshot] = None
        self._next_version = 1
        self._subscribers: List[Callable[[ServingSnapshot], None]] = []
        self._preparers: List[Callable[[ServingSnapshot], None]] = []
        if zoo is not None:
            self.publish(zoo)

    @property
    def retain(self) -> int:
        """How many snapshots stay alive for pinned in-flight frames."""
        return self._retain

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, zoo: ArchitectureZoo, *,
                version: Optional[int] = None) -> ServingSnapshot:
        """Build and atomically install a new snapshot serving ``zoo``.

        The expensive part — model construction and plan compilation for
        every entry — happens outside the lock, so a live server keeps
        serving the previous snapshot until the single reference swap at
        the end.  Subscribers (attached serving apps) are notified after
        the swap so their servers re-list the new entry names.

        Preparers (see :meth:`add_preparer`) run after the snapshot is
        built but *before* the swap; a raising preparer aborts the publish
        with the old snapshot still installed.  This is the hook the
        process-parallel serving tier uses to replicate the snapshot to
        every shard before any frame can be stamped with its version.

        ``version`` forces the snapshot's version number (it must exceed
        the current one) instead of taking the next sequential value —
        used by shard workers to mirror the parent repository's numbering
        so cross-process snapshot pinning stays aligned.
        """
        if len(zoo) == 0:
            raise ValueError("cannot publish an empty architecture zoo")
        with self._publish_lock:
            return self._publish(zoo, version)

    def _publish(self, zoo: ArchitectureZoo,
                 version: Optional[int]) -> ServingSnapshot:
        callables = build_zoo_callables(zoo, in_dim=self.in_dim,
                                        num_classes=self.num_classes,
                                        config=self.runtime, seed=self.seed)
        dispatcher = RuntimeDispatcher(zoo)
        with self._lock:
            if version is not None:
                if version < self._next_version:
                    raise ValueError(
                        f"explicit snapshot version {version} must be at "
                        f"least {self._next_version} (monotonic versioning)")
                self._next_version = version
            snapshot = ServingSnapshot(
                version=self._next_version, zoo=zoo,
                callables=MappingProxyType(dict(callables)),
                dispatcher=dispatcher)
            # The version is consumed NOW, even if a preparer aborts the
            # publish below: a preparer may already have replicated this
            # version to shard workers, and re-minting it for a different
            # zoo later would make those shards silently serve the aborted
            # zoo's models under the reused number.  Version gaps are
            # harmless; version reuse is not.
            self._next_version = snapshot.version + 1
            preparers = list(self._preparers)
        # Pre-swap hooks: replication to shards etc.  A failure here aborts
        # the publish with the old snapshot still installed (only the
        # version number is burned).
        for prepare in preparers:
            prepare(snapshot)
        released: List[ServingSnapshot] = []
        with self._lock:
            self._snapshots[snapshot.version] = snapshot
            self._current = snapshot
            while len(self._snapshots) > self._retain:
                released.append(self._snapshots.pop(min(self._snapshots)))
            subscribers = list(self._subscribers)
        for old in released:
            # Out of the retained window: no new frame can resolve to this
            # snapshot anymore — free its pooled arena buffers now instead
            # of when the last thread that ever executed its plans dies.
            old.release_buffers()
        for notify in subscribers:
            notify(snapshot)
        return snapshot

    @contextlib.contextmanager
    def publish_barrier(self):
        """No publish can be in flight (or start) while this is held.

        Lets a caller register a preparer and synchronize external state
        with the current snapshot *atomically* with respect to publishes:
        without the barrier, a concurrent publish could read the preparer
        list before the registration and swap after the synchronization —
        invisible to both.  Do not call :meth:`publish` while holding it.
        """
        with self._publish_lock:
            yield

    def add_preparer(self, callback: Callable[[ServingSnapshot], None]) -> None:
        """Register a pre-swap publish hook (see :meth:`publish`)."""
        with self._lock:
            if callback not in self._preparers:
                self._preparers.append(callback)

    def remove_preparer(self, callback: Callable[[ServingSnapshot], None]
                        ) -> None:
        with self._lock:
            if callback in self._preparers:
                self._preparers.remove(callback)

    def subscribe(self, callback: Callable[[ServingSnapshot], None]) -> None:
        """Register a callback invoked after every successful publish."""
        with self._lock:
            if callback not in self._subscribers:
                self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[ServingSnapshot], None]) -> None:
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    # ------------------------------------------------------------------
    # Snapshot access
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Version of the current snapshot (0 before the first publish)."""
        with self._lock:
            return self._current.version if self._current is not None else 0

    def snapshot(self) -> ServingSnapshot:
        """The current snapshot; raises before the first publish."""
        with self._lock:
            current = self._current
        if current is None:
            raise RuntimeError("no zoo has been published to this "
                               "repository yet (call publish())")
        return current

    def names(self) -> List[str]:
        """Entry names of the current snapshot."""
        return self.snapshot().names()

    def serving_names(self) -> List[str]:
        """Entry names across every *retained* snapshot (sorted union).

        This is the name set a server's routing table must cover: an
        in-flight frame pinned to the previous snapshot may name an entry
        the current zoo dropped, and it can only reach its retained
        snapshot if the table still routes that name.  Fresh (unpinned)
        frames naming a dropped entry still fail cleanly — the router
        resolves them to the current snapshot, which raises ``KeyError``.
        """
        with self._lock:
            names = set()
            for snapshot in self._snapshots.values():
                names.update(snapshot.callables)
        return sorted(names)

    def _snapshot_for(self, name: str, meta: Mapping) -> ServingSnapshot:
        """The snapshot that must answer a frame for entry ``name``.

        A frame pinned (via :data:`SNAPSHOT_META_KEY`) to a retained
        snapshot that still serves ``name`` gets that snapshot; everything
        else — unpinned frames, evicted versions, renamed entries — gets
        the current one.
        """
        pinned_version = meta.get(SNAPSHOT_META_KEY)
        with self._lock:
            current = self._current
            pinned = (self._snapshots.get(pinned_version)
                      if pinned_version is not None else None)
        if current is None:
            raise RuntimeError("no zoo has been published to this "
                               "repository yet (call publish())")
        if pinned is not None and name in pinned.callables:
            return pinned
        return current

    @staticmethod
    def _entry(snapshot: ServingSnapshot, name: str) -> ServingCallables:
        serving = snapshot.callables.get(name)
        if serving is None:
            raise KeyError(f"no zoo entry named {name!r} in snapshot "
                           f"v{snapshot.version} (available: "
                           f"{snapshot.names()})")
        return serving

    # ------------------------------------------------------------------
    # Device side
    # ------------------------------------------------------------------
    def device_fn(self, name: str) -> Callable[[object], FrameState]:
        """Device callable for entry ``name``, following the current snapshot.

        Each frame executes wholly within one snapshot — resolved once at
        frame start — and its result metadata is stamped with that
        snapshot's version, so the edge side can answer it from the same
        snapshot even when a publish lands while the frame is on the wire.
        After a publish, the *next* frame automatically runs the new
        snapshot's device segment.
        """
        def device_fn(frame: object) -> FrameState:
            snapshot = self.snapshot()
            arrays, meta = self._entry(snapshot, name).device_fn(frame)
            meta = dict(meta)
            meta[SNAPSHOT_META_KEY] = snapshot.version
            return arrays, meta

        return device_fn

    # ------------------------------------------------------------------
    # Edge side: snapshot-routing callables for an EdgeServer table
    # ------------------------------------------------------------------
    def edge_router(self, name: str) -> Callable[[ArrayDict, Dict], FrameState]:
        def edge_fn(arrays: ArrayDict, meta: Dict) -> FrameState:
            snapshot = self._snapshot_for(name, meta)
            return self._entry(snapshot, name).edge_fn(arrays, meta)

        return edge_fn

    def batch_router(self, name: str
                      ) -> Callable[[Sequence[FrameState]], List[FrameState]]:
        def batch_fn(requests: Sequence[FrameState]) -> List[FrameState]:
            # Frames coalesced across a publish may pin different snapshot
            # versions; group them so each group executes wholly within one
            # snapshot — no frame is ever served by a half-swapped table.
            groups: Dict[int, List[int]] = {}
            snapshots: Dict[int, ServingSnapshot] = {}
            for index, (arrays, meta) in enumerate(requests):
                snapshot = self._snapshot_for(name, meta)
                groups.setdefault(snapshot.version, []).append(index)
                snapshots[snapshot.version] = snapshot
            results: List[Optional[FrameState]] = [None] * len(requests)
            for version, indices in groups.items():
                serving = self._entry(snapshots[version], name)
                outputs = serving.batch_fn([requests[i] for i in indices])
                if len(outputs) != len(indices):
                    raise RuntimeError(
                        f"batched callable of {name!r} (snapshot v{version}) "
                        f"returned {len(outputs)} results for "
                        f"{len(indices)} requests")
                for i, output in zip(indices, outputs):
                    results[i] = output
            return results  # fully populated: every index was grouped once

        return batch_fn

    def edge_fns(self) -> Dict[str, Callable[[ArrayDict, Dict], FrameState]]:
        """Per-entry edge routers, covering every retained snapshot's names."""
        return {name: self.edge_router(name) for name in self.serving_names()}

    def batch_fns(self) -> Dict[str, Callable[[Sequence[FrameState]],
                                              List[FrameState]]]:
        """Per-entry batched routers, covering every retained snapshot's names."""
        return {name: self.batch_router(name)
                for name in self.serving_names()}

    def select_for_meta(self, meta: Dict) -> Optional[str]:
        """Selector hook dispatching with the *current* snapshot's metrics."""
        return self.snapshot().dispatcher.select_for_meta(meta)
