"""Plain-text report formatting for tables and figure data.

The benchmark harness regenerates every table and figure of the paper as
text: aligned tables for Tables 1–3 and series listings for the figures.
Keeping the formatting here keeps the benchmark scripts small and uniform.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "", float_format: str = "{:.2f}") -> str:
    """Render an aligned plain-text table.

    Floats are formatted with ``float_format``; other values with ``str``.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(header).ljust(widths[i])
                             for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence,
                  x_label: str = "x", y_label: str = "y",
                  float_format: str = "{:.3f}") -> str:
    """Render a figure data series as aligned ``x -> y`` pairs."""
    lines = [f"{name} ({x_label} -> {y_label}):"]
    for x, y in zip(xs, ys):
        x_str = float_format.format(x) if isinstance(x, float) else str(x)
        y_str = float_format.format(y) if isinstance(y, float) else str(y)
        lines.append(f"  {x_str:>12} -> {y_str}")
    return "\n".join(lines)


def format_breakdown(title: str, breakdown: Dict[str, float],
                     unit: str = "ms") -> str:
    """Render a labelled breakdown (e.g. per-operation latency shares)."""
    total = sum(breakdown.values()) or 1.0
    lines = [title]
    for label, value in breakdown.items():
        share = 100.0 * value / total
        lines.append(f"  {label:<24} {value:10.3f} {unit}  ({share:5.1f}%)")
    lines.append(f"  {'total':<24} {total:10.3f} {unit}")
    return "\n".join(lines)


def format_architecture(description_lines: Iterable[str], title: str = "") -> str:
    """Render an architecture placement listing (used for Fig. 11)."""
    lines = [title] if title else []
    lines.extend(f"  {line}" for line in description_lines)
    return "\n".join(lines)


def paper_feature_table() -> str:
    """Reproduce the qualitative feature-support comparison of Table 1."""
    headers = ["Supported Features", "GCoDE", "HGNAS", "MaGNAS", "BRANCHY"]
    rows = [
        ["Design Automation", "yes", "yes", "yes", "no"],
        ["Architecture Exploration", "yes", "yes", "yes", "no"],
        ["Performance Awareness", "yes", "yes", "yes", "no"],
        ["  - Single Device", "yes", "yes", "no", "no"],
        ["  - Heterogeneous", "yes", "no", "yes", "no"],
        ["  - Heterogeneous Wireless Edge", "yes", "no", "no", "no"],
        ["Multi-Objective Optimization", "yes", "yes", "yes", "no"],
        ["Device-Edge Deployment", "yes", "no", "no", "yes"],
        ["Runtime Optimization", "yes", "no", "no", "no"],
    ]
    return format_table(headers, rows, title="Table 1: feature-support comparison")
