"""Evaluation helpers: comparison metrics, Pareto analysis, report formatting."""

from .metrics import speedup, energy_reduction, fps, MethodResult
from .pareto import pareto_front, dominates, hypervolume
from .reporting import (format_table, format_series, format_breakdown,
                        format_architecture, paper_feature_table)

__all__ = [
    "speedup", "energy_reduction", "fps", "MethodResult",
    "pareto_front", "dominates", "hypervolume",
    "format_table", "format_series", "format_breakdown", "format_architecture",
    "paper_feature_table",
]
