"""Pareto-front extraction for accuracy-vs-latency exploration plots (Fig. 8)."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def pareto_front(points: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Non-dominated subset of ``(latency, accuracy)`` points.

    A point dominates another when it is no slower *and* no less accurate,
    and strictly better in at least one of the two.  The returned front is
    sorted by latency ascending.
    """
    front: List[Tuple[float, float]] = []
    for latency, accuracy in points:
        dominated = False
        for other_latency, other_accuracy in points:
            if (other_latency, other_accuracy) == (latency, accuracy):
                continue
            if (other_latency <= latency and other_accuracy >= accuracy
                    and (other_latency < latency or other_accuracy > accuracy)):
                dominated = True
                break
        if not dominated:
            front.append((latency, accuracy))
    # Deduplicate while preserving ordering by latency.
    unique = sorted(set(front), key=lambda p: (p[0], -p[1]))
    return unique


def dominates(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    """Whether point ``a`` (latency, accuracy) Pareto-dominates ``b``."""
    return (a[0] <= b[0] and a[1] >= b[1]) and (a[0] < b[0] or a[1] > b[1])


def hypervolume(points: Sequence[Tuple[float, float]],
                reference: Tuple[float, float]) -> float:
    """2-D hypervolume (latency to minimize, accuracy to maximize).

    ``reference`` is the worst corner ``(max_latency, min_accuracy)``.  Used
    to compare how far different methods push the Pareto frontier.
    """
    front = pareto_front(points)
    front = [(lat, acc) for lat, acc in front
             if lat <= reference[0] and acc >= reference[1]]
    if not front:
        return 0.0
    # On a (min latency, max accuracy) front sorted by latency ascending, the
    # best accuracy achievable at any latency budget x in [lat_i, lat_{i+1})
    # is acc_i, so the dominated area decomposes into vertical slabs.
    front.sort(key=lambda p: p[0])
    volume = 0.0
    for index, (latency, accuracy) in enumerate(front):
        next_latency = front[index + 1][0] if index + 1 < len(front) else reference[0]
        width = min(next_latency, reference[0]) - latency
        height = accuracy - reference[1]
        if width > 0 and height > 0:
            volume += width * height
    return volume
