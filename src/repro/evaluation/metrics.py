"""Comparison metrics used in the paper's evaluation tables.

Table 2 reports, for every method and system configuration, the latency and
on-device energy together with the speedup and energy-reduction relative to
the DGCNN Device-Only reference; this module provides those derived metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


def speedup(reference_latency_ms: float, latency_ms: float) -> float:
    """Speedup factor of ``latency_ms`` relative to the reference (>1 is faster)."""
    if latency_ms <= 0:
        raise ValueError("latency must be positive")
    return reference_latency_ms / latency_ms


def energy_reduction(reference_energy_j: float, energy_j: float) -> float:
    """Fractional energy reduction relative to the reference (0.98 = 98% saved)."""
    if reference_energy_j <= 0:
        raise ValueError("reference energy must be positive")
    return 1.0 - energy_j / reference_energy_j


def fps(latency_ms: float) -> float:
    """Frames per second corresponding to a per-frame latency."""
    if latency_ms <= 0:
        raise ValueError("latency must be positive")
    return 1000.0 / latency_ms


@dataclass
class MethodResult:
    """One row of a comparison table: a method evaluated on one system."""

    method: str
    mode: str  # "D", "E" or "Co"
    accuracy: float
    balanced_accuracy: Optional[float]
    latency_ms: float
    device_energy_j: float

    def relative_to(self, reference: "MethodResult") -> Dict[str, float]:
        """Speedup and energy reduction against a reference row."""
        return {
            "speedup": speedup(reference.latency_ms, self.latency_ms),
            "energy_reduction": energy_reduction(reference.device_energy_j,
                                                 self.device_energy_j),
        }

    def as_dict(self) -> Dict:
        return {
            "method": self.method,
            "mode": self.mode,
            "accuracy": self.accuracy,
            "balanced_accuracy": self.balanced_accuracy,
            "latency_ms": self.latency_ms,
            "device_energy_j": self.device_energy_j,
        }
