"""Efficiency evaluators used during the architecture search.

Algorithm 1 calls ``Evaluate(Sys, Ops, f)`` to obtain the candidate's system
latency ``P_sys`` and on-device energy ``E_dev``.  Three interchangeable
evaluators are provided, matching the paper's performance-awareness options:

* :class:`SimulatorEvaluator` — queries the hardware simulator directly
  (stands in for on-testbed measurement; exact but the most "expensive");
* :class:`CostEstimatorEvaluator` — LUT accumulation, training-free and
  cheap, accurate in *relative* terms;
* :class:`PredictorEvaluator` — the trained GIN latency predictor, used when
  strict latency constraints demand accurate absolute estimates.

All evaluators estimate energy with the analytical device-energy model
(Sec. 3.5), since energy is a function of device busy/idle time and uplink
traffic rather than something the latency predictor outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Tuple

from ..hardware.workload import DataProfile
from ..system.simulator import CoInferenceSimulator, SystemConfig
from .architecture import Architecture
from .predictor.cost_estimation import CostEstimator
from .predictor.features import FeatureBuilder
from .predictor.gin_predictor import PredictorSample, PredictorTrainer


@dataclass(frozen=True)
class EfficiencyEstimate:
    """Latency / on-device energy estimate of one candidate architecture."""

    latency_ms: float
    device_energy_j: float


class EfficiencyEvaluator(Protocol):
    """Anything that can price a candidate architecture for the search."""

    def evaluate(self, arch: Architecture) -> EfficiencyEstimate:  # pragma: no cover
        ...


class SimulatorEvaluator:
    """Efficiency from the co-inference simulator (the "measurement" oracle)."""

    def __init__(self, simulator: CoInferenceSimulator, profile: DataProfile) -> None:
        self.simulator = simulator
        self.profile = profile
        self._cache: Dict[Tuple, EfficiencyEstimate] = {}

    def evaluate(self, arch: Architecture) -> EfficiencyEstimate:
        key = arch.signature()
        if key not in self._cache:
            perf = self.simulator.evaluate(arch.ops, self.profile,
                                           arch.classifier_hidden)
            self._cache[key] = EfficiencyEstimate(latency_ms=perf.latency_ms,
                                                  device_energy_j=perf.device_energy_j)
        return self._cache[key]


class CostEstimatorEvaluator:
    """Efficiency from LUT cost estimation (latency) + simulator energy model."""

    def __init__(self, estimator: CostEstimator,
                 simulator: CoInferenceSimulator, profile: DataProfile) -> None:
        self.estimator = estimator
        self.simulator = simulator
        self.profile = profile
        self._cache: Dict[Tuple, EfficiencyEstimate] = {}

    def evaluate(self, arch: Architecture) -> EfficiencyEstimate:
        key = arch.signature()
        if key not in self._cache:
            latency = self.estimator.estimate_latency_ms(arch)
            perf = self.simulator.evaluate(arch.ops, self.profile,
                                           arch.classifier_hidden)
            self._cache[key] = EfficiencyEstimate(latency_ms=latency,
                                                  device_energy_j=perf.device_energy_j)
        return self._cache[key]


class PredictorEvaluator:
    """Efficiency from the trained GIN latency predictor."""

    def __init__(self, trainer: PredictorTrainer, builder: FeatureBuilder,
                 simulator: CoInferenceSimulator, profile: DataProfile) -> None:
        self.trainer = trainer
        self.builder = builder
        self.simulator = simulator
        self.profile = profile
        self._cache: Dict[Tuple, EfficiencyEstimate] = {}

    def evaluate(self, arch: Architecture) -> EfficiencyEstimate:
        key = arch.signature()
        if key not in self._cache:
            features, edge_index = self.builder.build(arch)
            sample = PredictorSample(architecture=arch, node_features=features,
                                     edge_index=edge_index, latency_ms=0.0)
            latency = self.trainer.predict(sample)
            perf = self.simulator.evaluate(arch.ops, self.profile,
                                           arch.classifier_hidden)
            self._cache[key] = EfficiencyEstimate(latency_ms=latency,
                                                  device_energy_j=perf.device_energy_j)
        return self._cache[key]
