"""Top-level GCoDE framework API.

:class:`GCoDE` wires the framework components together the way the paper's
Fig. 5 describes: given the user requirements (application/data profile,
target device-edge pair, anticipated network speed, latency/energy
constraints), it trains the one-shot supernet, builds a system-performance
awareness method (LUT cost estimation or the GIN predictor), runs the
constraint-based random search, collects the results into an architecture
zoo and hands back deployable models plus a runtime dispatcher.

A typical session::

    gcode = GCoDE(profile=DataProfile.modelnet40(num_points=128, num_classes=10),
                  device=JETSON_TX2, edge=INTEL_I7, link=LINK_40MBPS)
    gcode.prepare(train_graphs, val_graphs, supernet_epochs=3)
    result = gcode.search(SearchConstraints(latency_ms=100.0, energy_j=1.0),
                          max_trials=300)
    entry = gcode.zoo.best("latency")
    model, training = gcode.deploy(entry, train_graphs, val_graphs)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph.data import GraphData
from ..hardware.device import DeviceSpec
from ..hardware.latency_lut import build_latency_lut
from ..hardware.network import WirelessLink, get_link
from ..hardware.workload import DataProfile
from ..system.simulator import CoInferenceSimulator, SystemConfig
from .architecture import Architecture
from .design_space import DesignSpace
from .dispatcher import RuntimeDispatcher
from .executor import ArchitectureModel, split_callables
from .performance import (CostEstimatorEvaluator, EfficiencyEvaluator,
                          PredictorEvaluator, SimulatorEvaluator)
from .predictor.cost_estimation import CostEstimator
from .predictor.dataset import generate_predictor_dataset, split_samples
from .predictor.features import FeatureBuilder
from .predictor.gin_predictor import LatencyPredictor, PredictorTrainer
from .search.common import SearchConstraints, SearchResult
from .search.random_search import ConstraintRandomSearch, RandomSearchConfig
from .supernet import AccuracyCache, SuperNet
from .trainer import TrainingConfig, TrainingResult, train_architecture
from .zoo import ArchitectureZoo


@dataclass
class GCoDEConfig:
    """Structural configuration of a GCoDE session."""

    num_layers: int = 8
    combine_widths: Tuple[int, ...] = (16, 32, 64, 128)
    k_choices: Tuple[int, ...] = (9, 20)
    max_communicates: int = 2
    classifier_hidden: int = 64
    supernet_hidden: int = 128
    seed: int = 0


class GCoDE:
    """Architecture-mapping co-design and deployment for one target system."""

    def __init__(self, profile: DataProfile, device: DeviceSpec, edge: DeviceSpec,
                 link, config: Optional[GCoDEConfig] = None) -> None:
        self.profile = profile
        self.config = config or GCoDEConfig()
        self.link: WirelessLink = get_link(link)
        self.system = SystemConfig(device=device, edge=edge, link=self.link)
        self.simulator = CoInferenceSimulator(self.system)
        self.space = DesignSpace(
            num_layers=self.config.num_layers,
            profile=profile,
            combine_widths=self.config.combine_widths,
            k_choices=self.config.k_choices,
            max_communicates=self.config.max_communicates,
            classifier_hidden=self.config.classifier_hidden,
        )
        self.device_lut = build_latency_lut(device, profile)
        self.edge_lut = build_latency_lut(edge, profile)
        self.cost_estimator = CostEstimator(self.device_lut, self.edge_lut,
                                            self.link, profile)
        self.supernet: Optional[SuperNet] = None
        self.accuracy_cache: Optional[AccuracyCache] = None
        self.predictor_trainer: Optional[PredictorTrainer] = None
        self.feature_builder = FeatureBuilder(self.device_lut, self.edge_lut,
                                              self.link, profile, mode="enhanced")
        self.zoo = ArchitectureZoo()
        self.last_result: Optional[SearchResult] = None
        self._in_dim = profile.feature_dim
        self._num_classes = profile.num_classes

    # ------------------------------------------------------------------
    # Preparation
    # ------------------------------------------------------------------
    def prepare(self, train_graphs: Sequence[GraphData],
                val_graphs: Sequence[GraphData], supernet_epochs: int = 3,
                batch_size: int = 16, lr: float = 1e-3,
                verbose: bool = False) -> List[float]:
        """Pre-train the one-shot supernet and set up accuracy evaluation."""
        self.supernet = SuperNet(self.space, self._in_dim, self._num_classes,
                                 hidden_dim=self.config.supernet_hidden,
                                 seed=self.config.seed)
        losses = self.supernet.pretrain(train_graphs, epochs=supernet_epochs,
                                        batch_size=batch_size, lr=lr,
                                        verbose=verbose)
        self.accuracy_cache = AccuracyCache(self.supernet, val_graphs,
                                            batch_size=batch_size)
        return losses

    def build_predictor(self, num_samples: int = 400, epochs: int = 30,
                        hidden_dim: int = 64, noise_std: float = 0.03,
                        verbose: bool = False) -> PredictorTrainer:
        """Train the GIN system-latency predictor for this target system."""
        samples = generate_predictor_dataset(self.space, self.simulator,
                                             self.feature_builder, num_samples,
                                             noise_std=noise_std,
                                             seed=self.config.seed)
        train, _ = split_samples(samples, train_fraction=0.7, seed=self.config.seed)
        predictor = LatencyPredictor(self.feature_builder.feature_dim,
                                     hidden_dim=hidden_dim, layer_type="gin",
                                     seed=self.config.seed)
        trainer = PredictorTrainer(predictor)
        trainer.fit(train, epochs=epochs, seed=self.config.seed, verbose=verbose)
        self.predictor_trainer = trainer
        return trainer

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _efficiency_evaluator(self, kind: str) -> EfficiencyEvaluator:
        if kind == "simulator":
            return SimulatorEvaluator(self.simulator, self.profile)
        if kind == "cost":
            return CostEstimatorEvaluator(self.cost_estimator, self.simulator,
                                          self.profile)
        if kind == "predictor":
            if self.predictor_trainer is None:
                raise RuntimeError("call build_predictor() before searching with "
                                   "the predictor evaluator")
            return PredictorEvaluator(self.predictor_trainer, self.feature_builder,
                                      self.simulator, self.profile)
        raise ValueError(f"unknown efficiency evaluator {kind!r}")

    def search(self, constraints: SearchConstraints, max_trials: int = 2000,
               tuning_trials: int = 10, evaluator: str = "cost",
               keep_top: int = 10, verbose: bool = False) -> SearchResult:
        """Run the constraint-based random search and populate the zoo."""
        if self.accuracy_cache is None:
            raise RuntimeError("call prepare() before search()")
        search = ConstraintRandomSearch(
            space=self.space,
            accuracy_fn=self.accuracy_cache,
            efficiency=self._efficiency_evaluator(evaluator),
            constraints=constraints,
            config=RandomSearchConfig(max_trials=max_trials,
                                      tuning_trials=tuning_trials,
                                      keep_top=keep_top,
                                      seed=self.config.seed))
        result = search.run(verbose=verbose)
        self.last_result = result
        self.zoo = ArchitectureZoo.from_search(result.candidates)
        return result

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(self, entry_or_architecture, train_graphs: Sequence[GraphData],
               val_graphs: Sequence[GraphData],
               training: Optional[TrainingConfig] = None
               ) -> Tuple[ArchitectureModel, TrainingResult]:
        """Train the selected architecture from scratch for deployment."""
        architecture = getattr(entry_or_architecture, "architecture",
                               entry_or_architecture)
        if not isinstance(architecture, Architecture):
            raise TypeError("deploy expects a ZooEntry or an Architecture")
        return train_architecture(architecture, train_graphs, val_graphs,
                                  self._in_dim, self._num_classes,
                                  config=training or TrainingConfig(
                                      seed=self.config.seed))

    def engine_callables(self, model: ArchitectureModel):
        """Device/edge callables for the socket co-inference engine."""
        return split_callables(model)

    def dispatcher(self) -> RuntimeDispatcher:
        """Runtime dispatcher over the current architecture zoo."""
        return RuntimeDispatcher(self.zoo)

    # ------------------------------------------------------------------
    def evaluate_architecture(self, architecture: Architecture):
        """Simulated system performance of an architecture on this system."""
        return self.simulator.evaluate(architecture.ops, self.profile,
                                       architecture.classifier_hidden)
