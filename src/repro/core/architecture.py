"""Architecture representation: operation sequence + implied device-edge mapping.

A GCoDE architecture is a linear sequence of :class:`~repro.gnn.operations.OpSpec`
between a fixed ``input`` and ``classifier`` book-end.  Because ``Communicate``
is an explicit operation, the mapping of every operation onto the device or
the edge is *derived* from the sequence itself: operations before the first
``Communicate`` run on the device, operations after it run on the edge, and a
second ``Communicate`` would hand execution back to the device (and so on).
Architectures with no ``Communicate`` run entirely on the device ("Device-
Only"); one whose first operation is ``Communicate`` effectively runs
"Edge-Only".

This module also implements the validity rules the paper's constraint-based
search uses to discard meaningless candidates (Sec. 3.4), e.g. consecutive
``Communicate`` operations or an ``Aggregate`` after ``Global Pooling``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..gnn.operations import DEFAULT_FUNCTIONS, OpSpec, OpType

DEVICE = "device"
EDGE = "edge"


@dataclass(frozen=True)
class Architecture:
    """A co-inference GNN architecture (operations + implied mapping).

    Attributes
    ----------
    ops:
        The searchable operation sequence (excluding input / classifier).
    name:
        Optional human-readable identifier (used by the architecture zoo).
    classifier_hidden:
        Hidden width of the final classifier MLP.
    """

    ops: Tuple[OpSpec, ...]
    name: str = ""
    classifier_hidden: int = 64

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))

    # -- basic accessors -------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    @property
    def num_communicates(self) -> int:
        return sum(1 for op in self.ops if op.op == OpType.COMMUNICATE)

    @property
    def is_co_inference(self) -> bool:
        """True when at least one Communicate appears (device-edge execution)."""
        return self.num_communicates > 0

    def mapping(self) -> List[str]:
        """Placement (``"device"`` or ``"edge"``) of each operation in ``ops``.

        A ``Communicate`` op itself is attributed to the link but listed with
        the side that *initiates* the transfer (the side executing before it).
        """
        placements: List[str] = []
        side = DEVICE
        for op in self.ops:
            placements.append(side)
            if op.op == OpType.COMMUNICATE:
                side = EDGE if side == DEVICE else DEVICE
        return placements

    def final_side(self) -> str:
        """Side on which the classifier executes."""
        side = DEVICE
        for op in self.ops:
            if op.op == OpType.COMMUNICATE:
                side = EDGE if side == DEVICE else DEVICE
        return side

    def device_ops(self) -> List[OpSpec]:
        """Operations mapped onto the device."""
        return [op for op, side in zip(self.ops, self.mapping()) if side == DEVICE]

    def edge_ops(self) -> List[OpSpec]:
        """Operations mapped onto the edge."""
        return [op for op, side in zip(self.ops, self.mapping()) if side == EDGE]

    def partition_segments(self) -> List[Tuple[str, List[OpSpec]]]:
        """Contiguous execution segments: ``[(side, [ops...]), ...]``.

        Communicate operations terminate a segment and are not included in
        either side's op list (they belong to the link).
        """
        segments: List[Tuple[str, List[OpSpec]]] = []
        side = DEVICE
        current: List[OpSpec] = []
        for op in self.ops:
            if op.op == OpType.COMMUNICATE:
                segments.append((side, current))
                current = []
                side = EDGE if side == DEVICE else DEVICE
            else:
                current.append(op)
        segments.append((side, current))
        return segments

    # -- feature-dimension bookkeeping ------------------------------------
    def feature_dims(self, input_dim: int) -> List[int]:
        """Output feature dimension after each operation, starting from ``input_dim``."""
        dims: List[int] = []
        dim = input_dim
        for op in self.ops:
            if op.op == OpType.AGGREGATE:
                dim = 2 * dim
            elif op.op == OpType.COMBINE:
                dim = int(op.function)
            elif op.op == OpType.GLOBAL_POOL and op.function == "max||mean":
                dim = 2 * dim
            dims.append(dim)
        return dims

    def output_dim(self, input_dim: int) -> int:
        """Feature dimension entering the classifier."""
        dims = self.feature_dims(input_dim)
        return dims[-1] if dims else input_dim

    # -- naming / serialization --------------------------------------------
    def describe(self) -> List[str]:
        """Readable per-operation description including the placement."""
        lines = []
        for op, side in zip(self.ops, self.mapping()):
            lines.append(f"{side:>6} | {op.short_name()}")
        lines.append(f"{self.final_side():>6} | classifier")
        return lines

    def signature(self) -> Tuple:
        """Hashable signature used for deduplication during search."""
        return tuple((op.op, op.function, op.k) for op in self.ops)

    def to_dict(self) -> Dict:
        """JSON-serializable representation (used by the architecture zoo)."""
        return {
            "name": self.name,
            "classifier_hidden": self.classifier_hidden,
            "ops": [{"op": op.op, "function": op.function, "k": op.k}
                    for op in self.ops],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Architecture":
        """Inverse of :meth:`to_dict`."""
        ops = tuple(OpSpec(op=entry["op"], function=entry["function"],
                           k=entry.get("k", 9)) for entry in payload["ops"])
        return cls(ops=ops, name=payload.get("name", ""),
                   classifier_hidden=payload.get("classifier_hidden", 64))

    def with_name(self, name: str) -> "Architecture":
        """Return a copy carrying ``name``."""
        return Architecture(ops=self.ops, name=name,
                            classifier_hidden=self.classifier_hidden)


# ----------------------------------------------------------------------
# Validity checking (paper Sec. 3.4: "Check(Ops)")
# ----------------------------------------------------------------------
@dataclass
class ValidityReport:
    """Outcome of a validity check with the reasons for rejection."""

    valid: bool
    reasons: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.valid


def check_validity(arch: Architecture, requires_sample: bool = True,
                   max_communicates: int = 3) -> ValidityReport:
    """Check the structural validity rules of the co-inference design space.

    Parameters
    ----------
    arch:
        Candidate architecture.
    requires_sample:
        When the input data has no pre-existing graph structure (point
        clouds), an ``Aggregate`` must be preceded by a ``Sample``; text
        graphs (MR) arrive with edges so this is relaxed.
    max_communicates:
        Upper bound on hand-offs; more than a few round trips is never
        beneficial and inflates the search space.
    """
    reasons: List[str] = []
    ops = arch.ops
    if not ops:
        reasons.append("architecture has no operations")
        return ValidityReport(False, reasons)

    has_structure = not requires_sample
    pooled = False
    prev_op: Optional[str] = None
    num_comm = 0
    has_compute = False

    for idx, op in enumerate(ops):
        if op.op == OpType.COMMUNICATE:
            num_comm += 1
            if prev_op == OpType.COMMUNICATE:
                reasons.append(f"consecutive communicate at position {idx}")
        if op.op == OpType.SAMPLE:
            if pooled:
                reasons.append(f"sample after global pooling at position {idx}")
            has_structure = True
        if op.op == OpType.AGGREGATE:
            if pooled:
                reasons.append(f"aggregate after global pooling at position {idx}")
            if not has_structure:
                reasons.append(f"aggregate without graph structure at position {idx}")
            has_compute = True
        if op.op == OpType.COMBINE:
            has_compute = True
        if op.op == OpType.GLOBAL_POOL:
            if pooled:
                reasons.append(f"repeated global pooling at position {idx}")
            pooled = True
        prev_op = op.op

    if not pooled:
        reasons.append("architecture never applies global pooling")
    if not has_compute:
        reasons.append("architecture has no trainable compute (combine/aggregate)")
    if num_comm > max_communicates:
        reasons.append(f"too many communicate operations ({num_comm} > {max_communicates})")
    if ops[-1].op == OpType.COMMUNICATE and arch.final_side() == DEVICE:
        # A trailing communicate that hands the (tiny) classifier input back
        # to the device is allowed; a trailing communicate to the edge is too.
        pass
    return ValidityReport(len(reasons) == 0, reasons)


def is_valid(arch: Architecture, requires_sample: bool = True,
             max_communicates: int = 3) -> bool:
    """Boolean convenience wrapper around :func:`check_validity`."""
    return bool(check_validity(arch, requires_sample=requires_sample,
                               max_communicates=max_communicates))
