"""Training-free cost estimation of co-inference latency.

GCoDE's cheaper performance-awareness option (Sec. 3.5) simply accumulates
the LUT latency of every operation in the architecture graph plus the
link-model latency of every Communicate.  It ignores runtime overheads (the
paper acknowledges this), so it under-estimates absolute latency but
preserves the *relative* ordering of candidates — which is what steers the
search.  The Fig. 10(b) ablation ("LUT") evaluates exactly this estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...gnn.operations import OpSpec, OpType
from ...hardware.latency_lut import LatencyLUT, build_latency_lut, communicate_latency_ms
from ...hardware.network import WirelessLink
from ...hardware.workload import DataProfile, input_bytes, trace_workloads
from ..architecture import Architecture


@dataclass
class CostEstimate:
    """Cost-estimation result split by contribution."""

    device_ms: float
    edge_ms: float
    comm_ms: float

    @property
    def total_ms(self) -> float:
        return self.device_ms + self.edge_ms + self.comm_ms


class CostEstimator:
    """LUT-accumulation latency estimator for one target system.

    Parameters
    ----------
    device_lut / edge_lut:
        Operation-latency LUTs for the device and edge platforms.
    link:
        Wireless link pricing the Communicate operations.
    profile:
        Data profile of the target application.
    """

    def __init__(self, device_lut: LatencyLUT, edge_lut: LatencyLUT,
                 link: WirelessLink, profile: DataProfile) -> None:
        self.device_lut = device_lut
        self.edge_lut = edge_lut
        self.link = link
        self.profile = profile

    @classmethod
    def for_system(cls, device, edge, link: WirelessLink,
                   profile: DataProfile) -> "CostEstimator":
        """Build the estimator (and its LUTs) directly from device specs."""
        return cls(device_lut=build_latency_lut(device, profile),
                   edge_lut=build_latency_lut(edge, profile),
                   link=link, profile=profile)

    # ------------------------------------------------------------------
    def estimate(self, arch: Architecture) -> CostEstimate:
        """Accumulated LUT latency of ``arch`` on the target system."""
        workloads = trace_workloads(arch.ops, self.profile, arch.classifier_hidden)
        mapping = arch.mapping()
        device_ms = 0.0
        edge_ms = 0.0
        comm_ms = 0.0
        prev_bytes = input_bytes(self.profile)
        for index, op in enumerate(arch.ops):
            workload = workloads[index]
            if op.op == OpType.COMMUNICATE:
                payload = workloads[index - 1].output_bytes if index > 0 else prev_bytes
                comm_ms += communicate_latency_ms(self.link, payload)
                continue
            lut = self.device_lut if mapping[index] == "device" else self.edge_lut
            latency = lut.lookup(op, workload.in_dim)
            if mapping[index] == "device":
                device_ms += latency
            else:
                edge_ms += latency
        classifier_workload = workloads[-1]
        classifier_lut = (self.device_lut if arch.final_side() == "device"
                          else self.edge_lut)
        classifier_ms = classifier_lut.lookup(OpSpec(OpType.CLASSIFIER, "mlp"),
                                              classifier_workload.in_dim)
        if arch.final_side() == "device":
            device_ms += classifier_ms
        else:
            edge_ms += classifier_ms
        return CostEstimate(device_ms=device_ms, edge_ms=edge_ms, comm_ms=comm_ms)

    def estimate_latency_ms(self, arch: Architecture) -> float:
        """Scalar total-latency estimate (the quantity used during search)."""
        return self.estimate(arch).total_ms
