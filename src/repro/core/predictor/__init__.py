"""System performance awareness: graph abstraction, features, predictors."""

from .graph_abstraction import ArchitectureGraph, abstract_architecture, NODE_TYPES
from .features import FeatureBuilder
from .gin_predictor import (LatencyPredictor, PredictorTrainer, PredictorSample,
                            error_bound_accuracy, ranking_accuracy,
                            PAPER_HIDDEN_DIM)
from .cost_estimation import CostEstimator, CostEstimate
from .dataset import (LabelledArchitecture, measure_architectures,
                      generate_predictor_dataset, split_samples)

__all__ = [
    "ArchitectureGraph", "abstract_architecture", "NODE_TYPES",
    "FeatureBuilder",
    "LatencyPredictor", "PredictorTrainer", "PredictorSample",
    "error_bound_accuracy", "ranking_accuracy", "PAPER_HIDDEN_DIM",
    "CostEstimator", "CostEstimate",
    "LabelledArchitecture", "measure_architectures",
    "generate_predictor_dataset", "split_samples",
]
