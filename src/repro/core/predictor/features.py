"""Node-feature construction for the system-performance predictor.

The paper's key predictor ingredient is the *enhanced* node feature: the
one-hot operation encoding of each architecture-graph node is concatenated
with the operation's latency on the platform it is mapped to, read from the
per-device latency LUT (Communicate latencies come from the link model), and
z-score-normalized so that large-magnitude operations do not dominate
(Sec. 3.5).  The plain one-hot variant — what HGNAS uses — is kept as the
ablation baseline of Fig. 10(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ...gnn.operations import OpSpec, OpType
from ...hardware.latency_lut import LatencyLUT, communicate_latency_ms
from ...hardware.network import WirelessLink
from ...hardware.workload import DataProfile, trace_workloads
from ..architecture import Architecture
from .graph_abstraction import ArchitectureGraph, NODE_TYPES, abstract_architecture


@dataclass
class FeatureBuilder:
    """Builds predictor node features for one target system configuration.

    Parameters
    ----------
    device_lut / edge_lut:
        Operation-latency LUTs of the device and edge platforms.
    link:
        Wireless link used to price Communicate nodes.
    profile:
        Data profile (drives the feature-dimension trace along the network).
    mode:
        ``"enhanced"`` (one-hot ‖ z-scored LUT latency, the GCoDE feature) or
        ``"one-hot"`` (HGNAS-style ablation baseline).
    """

    device_lut: LatencyLUT
    edge_lut: LatencyLUT
    link: WirelessLink
    profile: DataProfile
    mode: str = "enhanced"

    def __post_init__(self) -> None:
        if self.mode not in ("enhanced", "one-hot"):
            raise ValueError("mode must be 'enhanced' or 'one-hot'")
        # Latencies span several orders of magnitude across heterogeneous
        # platforms (sub-millisecond Combines vs hundreds-of-milliseconds KNNs
        # on a Raspberry Pi), so the z-score is computed in log space to keep
        # the feature scale comparable with the one-hot channels.
        stats = np.log1p(np.asarray(self.device_lut.values()
                                    + self.edge_lut.values(), dtype=np.float64))
        self._latency_mean = float(stats.mean()) if stats.size else 0.0
        self._latency_std = float(stats.std()) if stats.size else 1.0
        if self._latency_std == 0.0:
            self._latency_std = 1.0

    @property
    def feature_dim(self) -> int:
        return len(NODE_TYPES) + (1 if self.mode == "enhanced" else 0)

    # ------------------------------------------------------------------
    def _normalize(self, latency_ms: float) -> float:
        return (np.log1p(max(latency_ms, 0.0)) - self._latency_mean) / self._latency_std

    def _node_latencies(self, arch: Architecture,
                        graph: ArchitectureGraph) -> np.ndarray:
        """Per-node mapped-platform latency aligned with the graph nodes."""
        workloads = trace_workloads(arch.ops, self.profile, arch.classifier_hidden)
        mapping = arch.mapping()
        latencies = np.zeros(graph.num_nodes, dtype=np.float64)
        # graph nodes: [input, op_0 ... op_{n-1}, classifier, (global)]
        prev_bytes = workloads[0].output_bytes if workloads else 0
        for index, op in enumerate(arch.ops):
            node = index + 1
            workload = workloads[index]
            if op.op == OpType.COMMUNICATE:
                payload = workloads[index - 1].output_bytes if index > 0 else prev_bytes
                latencies[node] = communicate_latency_ms(self.link, payload)
                continue
            lut = self.device_lut if mapping[index] == "device" else self.edge_lut
            latencies[node] = lut.lookup(op, workload.in_dim)
        classifier_node = len(arch.ops) + 1
        classifier_workload = workloads[-1]
        classifier_lut = (self.device_lut if arch.final_side() == "device"
                          else self.edge_lut)
        latencies[classifier_node] = classifier_lut.lookup(
            OpSpec(OpType.CLASSIFIER, "mlp"), classifier_workload.in_dim)
        return latencies

    # ------------------------------------------------------------------
    def build(self, arch: Architecture) -> tuple:
        """Return ``(node_features, edge_index)`` for ``arch``."""
        graph = abstract_architecture(arch)
        one_hot = graph.one_hot()
        if self.mode == "one-hot":
            return one_hot, graph.edge_index
        latencies = self._node_latencies(arch, graph)
        normalized = np.asarray([self._normalize(value) for value in latencies])
        features = np.concatenate([one_hot, normalized[:, None]], axis=1)
        return features, graph.edge_index
