"""Labelled architecture datasets for predictor training and evaluation.

The paper trains its predictor on ~9K co-inference architectures whose
latencies were measured on the physical testbed.  Here the "measurement" is
the hardware simulator with runtime overheads and optional multiplicative
measurement noise — see DESIGN.md for the substitution rationale — but the
pipeline (sample valid architectures → label → 70/30 split → train with MAPE)
is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...hardware.workload import DataProfile
from ...system.simulator import CoInferenceSimulator, SystemConfig
from ..architecture import Architecture
from ..design_space import DesignSpace
from .features import FeatureBuilder
from .gin_predictor import PredictorSample


@dataclass
class LabelledArchitecture:
    """An architecture together with its measured system latency."""

    architecture: Architecture
    latency_ms: float
    device_energy_j: float


def measure_architectures(architectures: Sequence[Architecture],
                          simulator: CoInferenceSimulator, profile: DataProfile,
                          noise_std: float = 0.0,
                          seed: int = 0) -> List[LabelledArchitecture]:
    """Label architectures with simulated (optionally noisy) measurements."""
    rng = np.random.default_rng(seed)
    labelled: List[LabelledArchitecture] = []
    for arch in architectures:
        perf = simulator.evaluate(arch.ops, profile, arch.classifier_hidden)
        latency = perf.latency_ms
        if noise_std > 0:
            latency *= float(1.0 + rng.normal(0.0, noise_std))
            latency = max(latency, 1e-3)
        labelled.append(LabelledArchitecture(architecture=arch, latency_ms=latency,
                                             device_energy_j=perf.device_energy_j))
    return labelled


def generate_predictor_dataset(space: DesignSpace, simulator: CoInferenceSimulator,
                               builder: FeatureBuilder, num_samples: int,
                               noise_std: float = 0.03, seed: int = 0,
                               ) -> List[PredictorSample]:
    """Sample, label and featurize ``num_samples`` valid architectures."""
    rng = np.random.default_rng(seed)
    seen = set()
    architectures: List[Architecture] = []
    attempts = 0
    max_attempts = num_samples * 50
    while len(architectures) < num_samples and attempts < max_attempts:
        attempts += 1
        arch = space.sample_valid(rng)
        signature = arch.signature()
        if signature in seen:
            continue
        seen.add(signature)
        architectures.append(arch)
    labelled = measure_architectures(architectures, simulator, space.profile,
                                     noise_std=noise_std, seed=seed + 1)
    samples: List[PredictorSample] = []
    for entry in labelled:
        features, edge_index = builder.build(entry.architecture)
        samples.append(PredictorSample(architecture=entry.architecture,
                                       node_features=features,
                                       edge_index=edge_index,
                                       latency_ms=entry.latency_ms))
    return samples


def split_samples(samples: Sequence[PredictorSample], train_fraction: float = 0.7,
                  seed: int = 0) -> Tuple[List[PredictorSample], List[PredictorSample]]:
    """70/30-style train/validation split of predictor samples."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(samples))
    cut = max(1, int(round(train_fraction * len(samples))))
    train = [samples[i] for i in order[:cut]]
    val = [samples[i] for i in order[cut:]]
    return train, val
