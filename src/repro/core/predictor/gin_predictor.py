"""GIN-based system-latency predictor (and its GCN ablation variant).

The paper's predictor (Fig. 7) stacks three GIN layers with mean aggregation
over the architecture graph, extracts a graph embedding with Global Sum
Pooling and regresses the end-to-end co-inference latency; it is trained with
the MAPE loss for 200 epochs on ~9K labelled architectures.  The same class
also hosts the GCN variant used in the Fig. 10(b) ablation (``layer_type=
"gcn"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ... import nn
from ...gnn.layers import GCNConv, GINConv
from ..architecture import Architecture
from .features import FeatureBuilder

#: Hidden width used by the paper's predictor (three GIN layers, 1024 wide).
PAPER_HIDDEN_DIM = 1024


class LatencyPredictor(nn.Module):
    """GNN regressor mapping an architecture graph to a latency estimate.

    Parameters
    ----------
    feature_dim:
        Node-feature dimensionality produced by the :class:`FeatureBuilder`.
    hidden_dim:
        Width of the GNN layers (1024 in the paper; smaller values train
        faster and are sufficient at this reproduction's scale).
    num_layers:
        Number of message-passing layers (3 in the paper).
    layer_type:
        ``"gin"`` (paper default) or ``"gcn"`` (ablation baseline).
    """

    def __init__(self, feature_dim: int, hidden_dim: int = 64, num_layers: int = 3,
                 layer_type: str = "gin", seed: int = 0) -> None:
        super().__init__()
        if layer_type not in ("gin", "gcn"):
            raise ValueError("layer_type must be 'gin' or 'gcn'")
        rng = np.random.default_rng(seed)
        self.layer_type = layer_type
        self.hidden_dim = hidden_dim
        self._layers: List[nn.Module] = []
        dim = feature_dim
        for index in range(num_layers):
            if layer_type == "gin":
                layer = GINConv(dim, hidden_dim, reducer="mean", rng=rng)
            else:
                layer = GCNConv(dim, hidden_dim, rng=rng)
            self.add_module(f"layer{index}", layer)
            self._layers.append(layer)
            dim = hidden_dim
        self.head = nn.MLP([hidden_dim, hidden_dim // 2, 1], rng=rng)

    def forward(self, node_features: np.ndarray, edge_index: np.ndarray) -> nn.Tensor:
        """Predict the latency (scalar tensor) of one architecture graph."""
        x = nn.Tensor(node_features)
        for layer in self._layers:
            x = layer(x, edge_index)
            if self.layer_type == "gcn":
                x = x.relu()
        num_nodes = node_features.shape[0]
        pooled = nn.global_pool(x, np.zeros(num_nodes, dtype=np.int64), 1, mode="sum")
        return self.head(pooled).reshape(1)


@dataclass
class PredictorSample:
    """One labelled training example for the latency predictor."""

    architecture: Architecture
    node_features: np.ndarray
    edge_index: np.ndarray
    latency_ms: float


class PredictorTrainer:
    """Fits a :class:`LatencyPredictor` on labelled architecture samples.

    Training minimizes MAPE (the paper's loss); latencies are additionally
    scaled by their training-set mean for numeric stability.
    """

    def __init__(self, predictor: LatencyPredictor, lr: float = 1e-3) -> None:
        self.predictor = predictor
        self.optimizer = nn.Adam(predictor.parameters(), lr=lr)
        self._scale = 1.0

    def fit(self, samples: Sequence[PredictorSample], epochs: int = 50,
            seed: int = 0, verbose: bool = False) -> List[float]:
        """Train for ``epochs`` passes; returns per-epoch mean MAPE."""
        if not samples:
            raise ValueError("cannot train a predictor on an empty sample set")
        rng = np.random.default_rng(seed)
        latencies = np.asarray([s.latency_ms for s in samples])
        self._scale = float(latencies.mean()) or 1.0
        history: List[float] = []
        self.predictor.train()
        for epoch in range(epochs):
            order = rng.permutation(len(samples))
            losses: List[float] = []
            for index in order:
                sample = samples[index]
                prediction = self.predictor(sample.node_features, sample.edge_index)
                target = np.asarray([sample.latency_ms / self._scale])
                loss = nn.mape_loss(prediction, target)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                losses.append(loss.item())
            history.append(float(np.mean(losses)))
            if verbose:
                print(f"[predictor] epoch {epoch + 1}/{epochs} MAPE={history[-1]:.4f}")
        return history

    def predict(self, sample: PredictorSample) -> float:
        """Predicted latency (ms) of one sample."""
        self.predictor.eval()
        with nn.no_grad():
            value = self.predictor(sample.node_features, sample.edge_index)
        return float(value.data.reshape(-1)[0]) * self._scale

    def predict_many(self, samples: Sequence[PredictorSample]) -> np.ndarray:
        """Vector of predicted latencies for a list of samples."""
        return np.asarray([self.predict(sample) for sample in samples])


# ----------------------------------------------------------------------
# Predictor quality metrics (paper Fig. 9 and Fig. 10b)
# ----------------------------------------------------------------------
def error_bound_accuracy(predicted: np.ndarray, measured: np.ndarray,
                         bound: float = 0.10) -> float:
    """Fraction of predictions within ``bound`` relative error of the truth."""
    predicted = np.asarray(predicted, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if predicted.shape != measured.shape:
        raise ValueError("prediction/measurement shape mismatch")
    if predicted.size == 0:
        return 0.0
    relative = np.abs(predicted - measured) / np.maximum(np.abs(measured), 1e-9)
    return float((relative <= bound).mean())


def ranking_accuracy(predicted: np.ndarray, measured: np.ndarray,
                     max_pairs: Optional[int] = 20000, seed: int = 0) -> float:
    """Pairwise relative-latency ordering accuracy (paper Fig. 9b metric).

    For every sampled pair of architectures, checks whether the predictor
    orders them the same way the measurement does; ties in the measurement
    are skipped.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    n = predicted.shape[0]
    if n < 2:
        return 0.0
    rng = np.random.default_rng(seed)
    pairs: List[Tuple[int, int]] = []
    total_pairs = n * (n - 1) // 2
    if max_pairs is None or total_pairs <= max_pairs:
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    else:
        first = rng.integers(0, n, size=max_pairs)
        second = rng.integers(0, n, size=max_pairs)
        pairs = [(int(i), int(j)) for i, j in zip(first, second) if i != j]
    correct = 0
    counted = 0
    for i, j in pairs:
        if measured[i] == measured[j]:
            continue
        counted += 1
        if (predicted[i] < predicted[j]) == (measured[i] < measured[j]):
            correct += 1
    return correct / counted if counted else 0.0
