"""Graph abstraction of co-inference architectures.

The system-performance predictor treats an architecture as a small directed
graph (paper Sec. 3.5, Fig. 7): every operation — including the fixed input
and classifier book-ends — becomes a node, edges follow the data flow,
self-connections are added, and a *global node* connected to every operation
node improves connectivity so that three GIN layers can see the whole
architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ...gnn.operations import OpSpec, OpType
from ..architecture import Architecture

#: Order of node-type channels in the one-hot encoding.
NODE_TYPES: Tuple[str, ...] = (
    OpType.INPUT,
    OpType.SAMPLE,
    OpType.AGGREGATE,
    OpType.COMBINE,
    OpType.GLOBAL_POOL,
    OpType.IDENTITY,
    OpType.COMMUNICATE,
    OpType.CLASSIFIER,
    "global",
)


@dataclass
class ArchitectureGraph:
    """Directed graph view of an architecture.

    Attributes
    ----------
    node_types:
        Node type name per node (index aligned with ``specs``).
    specs:
        The :class:`OpSpec` of each node; synthetic nodes (input, classifier,
        global) carry placeholder specs.
    edge_index:
        COO edge index including data-flow edges, self-loops and global-node
        edges.
    """

    node_types: List[str]
    specs: List[OpSpec]
    edge_index: np.ndarray

    @property
    def num_nodes(self) -> int:
        return len(self.node_types)

    def one_hot(self) -> np.ndarray:
        """One-hot node-type encoding (the HGNAS-style baseline features)."""
        encoding = np.zeros((self.num_nodes, len(NODE_TYPES)), dtype=np.float64)
        for row, node_type in enumerate(self.node_types):
            encoding[row, NODE_TYPES.index(node_type)] = 1.0
        return encoding


def abstract_architecture(arch: Architecture,
                          add_global_node: bool = True,
                          add_self_loops: bool = True) -> ArchitectureGraph:
    """Build the predictor's graph abstraction of ``arch``.

    Node order: ``input``, each operation in sequence, ``classifier`` and —
    when enabled — one trailing ``global`` node.
    """
    node_types: List[str] = [OpType.INPUT]
    specs: List[OpSpec] = [OpSpec(OpType.INPUT, "input")]
    for op in arch.ops:
        node_types.append(op.op)
        specs.append(op)
    node_types.append(OpType.CLASSIFIER)
    specs.append(OpSpec(OpType.CLASSIFIER, "mlp"))

    sources: List[int] = []
    targets: List[int] = []
    num_sequence_nodes = len(node_types)
    for i in range(num_sequence_nodes - 1):
        sources.append(i)
        targets.append(i + 1)

    if add_self_loops:
        for i in range(num_sequence_nodes):
            sources.append(i)
            targets.append(i)

    if add_global_node:
        global_index = num_sequence_nodes
        node_types.append("global")
        specs.append(OpSpec(OpType.IDENTITY, "skip"))
        for i in range(num_sequence_nodes):
            sources.append(i)
            targets.append(global_index)
            sources.append(global_index)
            targets.append(i)
        if add_self_loops:
            sources.append(global_index)
            targets.append(global_index)

    edge_index = np.stack([np.asarray(sources, dtype=np.int64),
                           np.asarray(targets, dtype=np.int64)], axis=0)
    return ArchitectureGraph(node_types=node_types, specs=specs,
                             edge_index=edge_index)
