"""Runtime dispatcher.

At deployment time the device's latency and energy headroom fluctuate (other
workloads, battery state, varying network throughput).  GCoDE's runtime
dispatcher (Sec. 3.6) reacts by switching the deployed architecture to the
zoo entry that best fits the *current* constraints: the most accurate
architecture that still meets the latency and energy budgets, falling back to
the fastest / most frugal entry when nothing qualifies.

The dispatcher also plugs into the serving engine
(:mod:`repro.system.engine`): a :class:`DeviceClient` announces its
:class:`RuntimeConditions` as a plain dict in message metadata, and
:meth:`RuntimeDispatcher.select_for_meta` — installed as the
``EdgeServer`` ``selector`` — maps each request to the matching zoo entry.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from .zoo import ArchitectureZoo, ZooEntry

#: Decisions kept in :attr:`RuntimeDispatcher.history`; a serving process
#: dispatches once per request, so the log must be bounded.
HISTORY_LIMIT = 1024


@dataclass
class RuntimeConditions:
    """Current operating conditions reported by the device at runtime."""

    latency_budget_ms: Optional[float] = None
    energy_budget_j: Optional[float] = None
    #: Measured uplink bandwidth relative to the bandwidth assumed at search
    #: time (1.0 = as planned, 0.5 = link twice as slow).  Latency estimates
    #: of co-inference entries are rescaled pessimistically by this factor.
    bandwidth_factor: float = 1.0

    def to_dict(self) -> Dict:
        """Plain-dict form suitable for engine message metadata."""
        payload: Dict = {"bandwidth_factor": self.bandwidth_factor}
        if self.latency_budget_ms is not None:
            payload["latency_budget_ms"] = self.latency_budget_ms
        if self.energy_budget_j is not None:
            payload["energy_budget_j"] = self.energy_budget_j
        return payload


def conditions_from_meta(meta: Dict) -> RuntimeConditions:
    """Rebuild :class:`RuntimeConditions` from engine message metadata.

    The engine transports conditions as the plain dict under
    ``meta["conditions"]`` (see :meth:`RuntimeConditions.to_dict`); missing
    or empty metadata means unconstrained conditions.
    """
    payload = meta.get("conditions") or {}
    latency = payload.get("latency_budget_ms")
    energy = payload.get("energy_budget_j")
    return RuntimeConditions(
        latency_budget_ms=None if latency is None else float(latency),
        energy_budget_j=None if energy is None else float(energy),
        bandwidth_factor=float(payload.get("bandwidth_factor", 1.0)))


class RuntimeDispatcher:
    """Selects the architecture to execute for the current conditions.

    Selection is thread-safe so one dispatcher instance can serve the
    concurrent connection handlers of an :class:`~repro.system.engine.EdgeServer`.
    """

    def __init__(self, zoo: ArchitectureZoo) -> None:
        if len(zoo) == 0:
            raise ValueError("cannot dispatch from an empty architecture zoo")
        self.zoo = zoo
        self._history: Deque[str] = deque(maxlen=HISTORY_LIMIT)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _effective_latency(self, entry: ZooEntry,
                           conditions: RuntimeConditions) -> float:
        factor = max(conditions.bandwidth_factor, 1e-3)
        if entry.architecture.is_co_inference and factor < 1.0:
            # Pessimistically inflate the whole latency by the slowdown of the
            # link; only co-inference entries are affected by the network.
            return entry.latency_ms / factor
        return entry.latency_ms

    def select(self, conditions: Optional[RuntimeConditions] = None) -> ZooEntry:
        """Pick the most accurate entry that satisfies the current budgets.

        When nothing qualifies the dispatcher degrades gracefully instead of
        refusing service: if the latency budget is attainable and only the
        energy budget disqualified everything, it falls back to the most
        frugal (lowest device energy) of the latency-feasible entries;
        otherwise it falls back to the fastest (lowest effective latency)
        entry overall.
        """
        conditions = conditions or RuntimeConditions()
        meets_latency: List[ZooEntry] = []
        feasible: List[ZooEntry] = []
        for entry in self.zoo:
            latency = self._effective_latency(entry, conditions)
            if (conditions.latency_budget_ms is not None
                    and latency > conditions.latency_budget_ms):
                continue
            meets_latency.append(entry)
            if (conditions.energy_budget_j is not None
                    and entry.device_energy_j > conditions.energy_budget_j):
                continue
            feasible.append(entry)
        if feasible:
            chosen = max(feasible, key=lambda e: (e.accuracy, -e.latency_ms))
        elif meets_latency:
            # Only the energy budget was violated: most frugal entry that
            # still meets the latency budget.
            chosen = min(meets_latency, key=lambda e: e.device_energy_j)
        else:
            chosen = min(self.zoo,
                         key=lambda e: self._effective_latency(e, conditions))
        with self._lock:
            self._history.append(chosen.name)
        return chosen

    def select_for_meta(self, meta: Dict) -> str:
        """Name of the entry for engine metadata (``EdgeServer`` selector hook)."""
        return self.select(conditions_from_meta(meta)).name

    @property
    def history(self) -> List[str]:
        """Names of the entries selected so far (most recent last).

        Bounded to the latest :data:`HISTORY_LIMIT` decisions so a
        long-running serving process does not grow it without limit.
        """
        with self._lock:
            return list(self._history)
