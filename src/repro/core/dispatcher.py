"""Runtime dispatcher.

At deployment time the device's latency and energy headroom fluctuate (other
workloads, battery state, varying network throughput).  GCoDE's runtime
dispatcher (Sec. 3.6) reacts by switching the deployed architecture to the
zoo entry that best fits the *current* constraints: the most accurate
architecture that still meets the latency and energy budgets, falling back to
the fastest / most frugal entry when nothing qualifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .zoo import ArchitectureZoo, ZooEntry


@dataclass
class RuntimeConditions:
    """Current operating conditions reported by the device at runtime."""

    latency_budget_ms: Optional[float] = None
    energy_budget_j: Optional[float] = None
    #: Measured uplink bandwidth relative to the bandwidth assumed at search
    #: time (1.0 = as planned, 0.5 = link twice as slow).  Latency estimates
    #: of co-inference entries are rescaled pessimistically by this factor.
    bandwidth_factor: float = 1.0


class RuntimeDispatcher:
    """Selects the architecture to execute for the current conditions."""

    def __init__(self, zoo: ArchitectureZoo) -> None:
        if len(zoo) == 0:
            raise ValueError("cannot dispatch from an empty architecture zoo")
        self.zoo = zoo
        self._history: List[str] = []

    # ------------------------------------------------------------------
    def _effective_latency(self, entry: ZooEntry,
                           conditions: RuntimeConditions) -> float:
        factor = max(conditions.bandwidth_factor, 1e-3)
        if entry.architecture.is_co_inference and factor < 1.0:
            # Pessimistically inflate the whole latency by the slowdown of the
            # link; only co-inference entries are affected by the network.
            return entry.latency_ms / factor
        return entry.latency_ms

    def select(self, conditions: Optional[RuntimeConditions] = None) -> ZooEntry:
        """Pick the most accurate entry that satisfies the current budgets.

        Falls back to the lowest-latency entry when no entry satisfies the
        constraints (degraded but still-functional service).
        """
        conditions = conditions or RuntimeConditions()
        feasible: List[ZooEntry] = []
        for entry in self.zoo:
            latency = self._effective_latency(entry, conditions)
            if (conditions.latency_budget_ms is not None
                    and latency > conditions.latency_budget_ms):
                continue
            if (conditions.energy_budget_j is not None
                    and entry.device_energy_j > conditions.energy_budget_j):
                continue
            feasible.append(entry)
        if feasible:
            chosen = max(feasible, key=lambda e: (e.accuracy, -e.latency_ms))
        else:
            chosen = min(self.zoo,
                         key=lambda e: self._effective_latency(e, conditions))
        self._history.append(chosen.name)
        return chosen

    @property
    def history(self) -> List[str]:
        """Names of the entries selected so far (most recent last)."""
        return list(self._history)
