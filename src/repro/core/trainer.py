"""Training utilities for stand-alone architecture models.

Besides the one-shot supernet used during the search, the final architectures
selected for deployment are trained from scratch as stand-alone
:class:`~repro.core.executor.ArchitectureModel` instances.  This module
provides that training loop together with accuracy evaluation (OA and mAcc,
the two metrics reported in the paper's Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..graph.data import DataLoader, GraphData
from .architecture import Architecture
from .executor import ArchitectureModel


@dataclass
class TrainingConfig:
    """Hyper-parameters for stand-alone architecture training."""

    epochs: int = 20
    batch_size: int = 16
    lr: float = 1e-3
    weight_decay: float = 0.0
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainingResult:
    """Loss curve and final accuracies of one training run."""

    train_losses: List[float]
    val_accuracy: float
    val_balanced_accuracy: float


def evaluate_model(model: ArchitectureModel, graphs: Sequence[GraphData],
                   batch_size: int = 32) -> Tuple[float, float]:
    """Overall and balanced accuracy of ``model`` on ``graphs``."""
    model.eval()
    loader = DataLoader(graphs, batch_size=batch_size, shuffle=False)
    predictions: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    with nn.no_grad():
        for batch in loader:
            logits = model(batch)
            predictions.append(logits.data.argmax(axis=-1))
            labels.append(batch.y)
    if not predictions:
        return 0.0, 0.0
    preds = np.concatenate(predictions)
    target = np.concatenate(labels)
    overall = float((preds == target).mean()) if target.size else 0.0
    per_class = [float((preds[target == cls] == cls).mean())
                 for cls in np.unique(target)]
    balanced = float(np.mean(per_class)) if per_class else 0.0
    return overall, balanced


def train_architecture(architecture: Architecture, train_graphs: Sequence[GraphData],
                       val_graphs: Sequence[GraphData], in_dim: int,
                       num_classes: int,
                       config: Optional[TrainingConfig] = None
                       ) -> Tuple[ArchitectureModel, TrainingResult]:
    """Train ``architecture`` from scratch and report validation accuracy."""
    config = config or TrainingConfig()
    model = ArchitectureModel(architecture, in_dim, num_classes, seed=config.seed)
    optimizer = nn.Adam(model.parameters(), lr=config.lr,
                        weight_decay=config.weight_decay)
    loader = DataLoader(train_graphs, batch_size=config.batch_size, shuffle=True,
                        seed=config.seed)
    losses: List[float] = []
    model.train()
    for epoch in range(config.epochs):
        epoch_losses: List[float] = []
        for batch in loader:
            logits = model(batch)
            loss = nn.cross_entropy(logits, batch.y)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        losses.append(float(np.mean(epoch_losses)) if epoch_losses else 0.0)
        if config.verbose:
            print(f"[train] epoch {epoch + 1}/{config.epochs} "
                  f"loss={losses[-1]:.4f}")
    overall, balanced = evaluate_model(model, val_graphs,
                                       batch_size=config.batch_size)
    return model, TrainingResult(train_losses=losses, val_accuracy=overall,
                                 val_balanced_accuracy=balanced)
