"""One-shot supernet with weight sharing over the co-inference design space.

GCoDE decouples training from searching: a supernet covering the whole design
space is pre-trained once, and every candidate sampled during the search is
scored with the *shared* supernet weights instead of being trained from
scratch (paper Sec. 3.3).  Following the paper's note that "linear layers are
used to align the dimensions of all operations within the same layer", the
supernet keeps a fixed internal width ``hidden_dim``:

* the input is projected to ``hidden_dim``;
* each layer slot owns a shared Combine weight (whose narrower function
  choices are realized by masking output channels), plus alignment layers
  that map the widened outputs of Aggregate (2×) and ``max||mean`` pooling
  back to ``hidden_dim``;
* a single shared classifier head consumes the pooled representation.

Training uses the standard single-path one-shot recipe: every step samples a
random *valid* architecture and updates only the weights it touches.
Candidate accuracy during the search is then a cheap forward pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..graph.data import Batch, DataLoader, GraphData
from ..gnn.operations import ExecState, OpSpec, OpType, SampleOp
from .architecture import Architecture
from .design_space import DesignSpace


class SuperNet(nn.Module):
    """Weight-sharing supernet over a :class:`DesignSpace`.

    Parameters
    ----------
    space:
        The design space whose layer count and choices this supernet covers.
    in_dim:
        Input feature dimensionality of the target dataset.
    num_classes:
        Number of classes of the target dataset.
    hidden_dim:
        Internal (maximum) width; Combine choices narrower than this are
        realized by channel masking.
    """

    def __init__(self, space: DesignSpace, in_dim: int, num_classes: int,
                 hidden_dim: int = 128, seed: int = 0) -> None:
        super().__init__()
        self.space = space
        self.in_dim = in_dim
        self.num_classes = num_classes
        self.hidden_dim = hidden_dim
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.input_proj = nn.Linear(in_dim, hidden_dim, rng=rng)
        for position in range(space.num_layers):
            self.add_module(f"combine{position}",
                            nn.Linear(hidden_dim, hidden_dim, rng=rng))
            self.add_module(f"agg_align{position}",
                            nn.Linear(2 * hidden_dim, hidden_dim, rng=rng))
            self.add_module(f"pool_align{position}",
                            nn.Linear(2 * hidden_dim, hidden_dim, rng=rng))
        self.classifier = nn.MLP([hidden_dim, space.classifier_hidden, num_classes],
                                 rng=rng)
        self._sample_rng = np.random.default_rng(seed + 1)

    # ------------------------------------------------------------------
    # Execution of one sampled architecture with shared weights
    # ------------------------------------------------------------------
    def _combine_mask(self, width: int) -> Optional[np.ndarray]:
        if width >= self.hidden_dim:
            return None
        mask = np.zeros(self.hidden_dim)
        mask[:width] = 1.0
        return mask

    def forward_architecture(self, arch: Architecture, batch: Batch) -> nn.Tensor:
        """Class logits of ``batch`` under ``arch`` using the shared weights."""
        state = ExecState(
            x=self.input_proj(nn.Tensor(batch.x)).relu(),
            batch=batch.batch.copy(),
            num_graphs=batch.num_graphs,
            edge_index=None if batch.edge_index is None else batch.edge_index.copy(),
            pos=None if batch.pos is None else batch.pos.copy(),
        )
        for position, spec in enumerate(arch.ops):
            state = self._apply(position, spec, state)
        if not state.pooled:
            state.x = nn.global_pool(state.x, state.batch, state.num_graphs,
                                     mode="mean")
            state.pooled = True
        return self.classifier(state.x)

    def _apply(self, position: int, spec: OpSpec, state: ExecState) -> ExecState:
        if spec.op in (OpType.IDENTITY, OpType.COMMUNICATE):
            return state
        if spec.op == OpType.SAMPLE:
            SampleOp(spec, seed=self.seed + position)(state)
            return state
        if spec.op == OpType.AGGREGATE:
            if state.edge_index is None or state.edge_index.size == 0 or state.pooled:
                return state  # structurally invalid paths degrade to identity
            src, dst = state.edge_index[0], state.edge_index[1]
            centres = state.x.gather_rows(dst)
            neighbours = state.x.gather_rows(src)
            messages = nn.concat([centres, neighbours - centres], axis=-1)
            aggregated = nn.scatter(messages, dst, state.num_nodes,
                                    reduce=str(spec.function))
            align = getattr(self, f"agg_align{position}")
            state.x = align(aggregated).relu()
            return state
        if spec.op == OpType.COMBINE:
            combine = getattr(self, f"combine{position}")
            out = combine(state.x).relu()
            mask = self._combine_mask(int(spec.function))
            if mask is not None:
                out = out * nn.Tensor(mask)
            state.x = out
            return state
        if spec.op == OpType.GLOBAL_POOL:
            if state.pooled:
                return state
            pooled = nn.global_pool(state.x, state.batch, state.num_graphs,
                                    mode=str(spec.function))
            if spec.function == "max||mean":
                align = getattr(self, f"pool_align{position}")
                pooled = align(pooled).relu()
            state.x = pooled
            state.batch = np.arange(state.num_graphs, dtype=np.int64)
            state.edge_index = None
            state.pos = None
            state.pooled = True
            return state
        raise ValueError(f"supernet cannot apply operation {spec.op!r}")

    # ------------------------------------------------------------------
    # Pre-training (single-path one-shot)
    # ------------------------------------------------------------------
    def pretrain(self, train_graphs: Sequence[GraphData], epochs: int = 5,
                 batch_size: int = 16, lr: float = 1e-3,
                 architectures_per_step: int = 1,
                 verbose: bool = False) -> List[float]:
        """Pre-train shared weights by sampling a random valid path per batch.

        Returns the per-epoch mean training loss.
        """
        optimizer = nn.Adam(self.parameters(), lr=lr)
        losses: List[float] = []
        loader = DataLoader(train_graphs, batch_size=batch_size, shuffle=True,
                            seed=self.seed)
        self.train()
        for epoch in range(epochs):
            epoch_losses: List[float] = []
            for batch in loader:
                for _ in range(max(1, architectures_per_step)):
                    arch = self.space.sample_valid(self._sample_rng)
                    logits = self.forward_architecture(arch, batch)
                    loss = nn.cross_entropy(logits, batch.y)
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
                    epoch_losses.append(loss.item())
            losses.append(float(np.mean(epoch_losses)) if epoch_losses else 0.0)
            if verbose:
                print(f"[supernet] epoch {epoch + 1}/{epochs} "
                      f"loss={losses[-1]:.4f}")
        return losses

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------
    def evaluate(self, arch: Architecture, graphs: Sequence[GraphData],
                 batch_size: int = 32) -> Tuple[float, float]:
        """Overall and balanced accuracy of ``arch`` with the shared weights."""
        self.eval()
        loader = DataLoader(graphs, batch_size=batch_size, shuffle=False)
        predictions: List[np.ndarray] = []
        labels: List[np.ndarray] = []
        with nn.no_grad():
            for batch in loader:
                logits = self.forward_architecture(arch, batch)
                predictions.append(logits.data.argmax(axis=-1))
                labels.append(batch.y)
        preds = np.concatenate(predictions)
        target = np.concatenate(labels)
        overall = float((preds == target).mean()) if target.size else 0.0
        per_class = []
        for cls in np.unique(target):
            mask = target == cls
            per_class.append(float((preds[mask] == cls).mean()))
        balanced = float(np.mean(per_class)) if per_class else 0.0
        return overall, balanced


class AccuracyCache:
    """Memoizes supernet accuracy evaluations by architecture signature."""

    def __init__(self, supernet: SuperNet, graphs: Sequence[GraphData],
                 batch_size: int = 32) -> None:
        self.supernet = supernet
        self.graphs = list(graphs)
        self.batch_size = batch_size
        self._cache: Dict[Tuple, Tuple[float, float]] = {}

    def __call__(self, arch: Architecture) -> Tuple[float, float]:
        key = arch.signature()
        if key not in self._cache:
            self._cache[key] = self.supernet.evaluate(arch, self.graphs,
                                                      self.batch_size)
        return self._cache[key]

    def __len__(self) -> int:
        return len(self._cache)
