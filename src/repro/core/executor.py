"""Executable form of a co-inference architecture.

:class:`ArchitectureModel` turns an :class:`~repro.core.architecture.Architecture`
into a trainable model built from the executable operation modules of
:mod:`repro.gnn.operations`, so that sampled architectures can be trained and
their validation accuracy measured (the ``acc_val`` term of the paper's
objective).  :func:`split_callables` additionally slices a trained model at
its ``Communicate`` point into the device-side and edge-side callables
consumed by the socket co-inference engine.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..graph.data import Batch
from ..gnn.operations import (ClassifierOp, ExecState, Operation, OpSpec, OpType,
                              build_operation)
from .architecture import Architecture
from .zoo import ArchitectureZoo


class ArchitectureModel(nn.Module):
    """Trainable model realizing one co-inference architecture.

    Parameters
    ----------
    architecture:
        The operation sequence to realize.
    in_dim:
        Input node-feature dimensionality.
    num_classes:
        Number of output classes of the final classifier.
    seed:
        Seed for weight initialization and random-sampling operations.
    """

    def __init__(self, architecture: Architecture, in_dim: int, num_classes: int,
                 seed: int = 0) -> None:
        super().__init__()
        self.architecture = architecture
        self.in_dim = in_dim
        self.num_classes = num_classes
        rng = np.random.default_rng(seed)
        self._operations: List[Operation] = []
        dim = in_dim
        for index, spec in enumerate(architecture.ops):
            operation = build_operation(spec, dim, rng=rng, seed=seed + index)
            self.add_module(f"op{index}", operation)
            self._operations.append(operation)
            dim = operation.output_dim(dim)
        classifier_spec = OpSpec(OpType.CLASSIFIER, "mlp")
        self.classifier = ClassifierOp(classifier_spec, dim, num_classes,
                                       hidden_dim=architecture.classifier_hidden,
                                       rng=rng)

    # ------------------------------------------------------------------
    @staticmethod
    def initial_state(batch: Batch) -> ExecState:
        """Build the execution state for a batch of graphs."""
        return ExecState(
            x=nn.Tensor(batch.x),
            batch=batch.batch.copy(),
            num_graphs=batch.num_graphs,
            edge_index=None if batch.edge_index is None else batch.edge_index.copy(),
            pos=None if batch.pos is None else batch.pos.copy(),
        )

    def run_segment(self, state: ExecState, start: int, end: Optional[int] = None,
                    include_classifier: bool = False) -> ExecState:
        """Execute operations ``start:end`` (communicates are no-ops here)."""
        end = len(self._operations) if end is None else end
        for operation in self._operations[start:end]:
            state = operation(state)
        if include_classifier:
            state = self.classifier(state)
        return state

    def forward(self, batch: Batch) -> nn.Tensor:
        """Full forward pass returning class logits, one row per graph."""
        state = self.run_segment(self.initial_state(batch), 0, None,
                                 include_classifier=True)
        return state.x

    # ------------------------------------------------------------------
    def num_operations(self) -> int:
        return len(self._operations)

    def first_communicate_index(self) -> Optional[int]:
        """Index of the first Communicate operation, or ``None``."""
        for index, operation in enumerate(self._operations):
            if operation.spec.op == OpType.COMMUNICATE:
                return index
        return None


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
ArrayDict = Dict[str, np.ndarray]


def _state_to_arrays(state: ExecState) -> Tuple[ArrayDict, Dict]:
    arrays: ArrayDict = {"x": state.x.data, "batch": state.batch}
    if state.edge_index is not None:
        arrays["edge_index"] = state.edge_index
    if state.pos is not None:
        arrays["pos"] = state.pos
    meta = {"num_graphs": state.num_graphs, "pooled": state.pooled}
    return arrays, meta


def _arrays_to_state(arrays: ArrayDict, meta: Dict) -> ExecState:
    return ExecState(
        x=nn.Tensor(arrays["x"]),
        batch=np.asarray(arrays["batch"], dtype=np.int64),
        num_graphs=int(meta["num_graphs"]),
        edge_index=np.asarray(arrays["edge_index"], dtype=np.int64)
        if "edge_index" in arrays else None,
        pos=arrays.get("pos"),
        pooled=bool(meta["pooled"]),
    )


def split_callables(model: ArchitectureModel
                    ) -> Tuple[Callable[[Batch], Tuple[ArrayDict, Dict]],
                               Callable[[ArrayDict, Dict], Tuple[ArrayDict, Dict]]]:
    """Split a trained model into engine callables at its Communicate point.

    Returns ``(device_fn, edge_fn)``: the device function executes every
    operation before the first ``Communicate`` and serializes the state; the
    edge function executes the remaining operations and the classifier and
    returns the logits.  Architectures without a Communicate run everything
    on the device and the edge function merely echoes the logits back, so the
    same engine code path covers Device-Only deployments.
    """
    split = model.first_communicate_index()

    def device_fn(batch: Batch) -> Tuple[ArrayDict, Dict]:
        state = model.initial_state(batch)
        with nn.no_grad():
            if split is None:
                state = model.run_segment(state, 0, None, include_classifier=True)
                arrays, meta = _state_to_arrays(state)
                meta["finished"] = True
                return arrays, meta
            state = model.run_segment(state, 0, split)
        arrays, meta = _state_to_arrays(state)
        meta["finished"] = False
        return arrays, meta

    def edge_fn(arrays: ArrayDict, meta: Dict) -> Tuple[ArrayDict, Dict]:
        if meta.get("finished"):
            return {"logits": arrays["x"]}, {"num_graphs": meta["num_graphs"]}
        state = _arrays_to_state(arrays, meta)
        start = (split + 1) if split is not None else 0
        with nn.no_grad():
            state = model.run_segment(state, start, None, include_classifier=True)
        return {"logits": state.x.data}, {"num_graphs": state.num_graphs}

    return device_fn, edge_fn


def zoo_callables(zoo: ArchitectureZoo, in_dim: int,
                  num_classes: int, seed: int = 0
                  ) -> Dict[str, Tuple[Callable[[Batch], Tuple[ArrayDict, Dict]],
                                       Callable[[ArrayDict, Dict], Tuple[ArrayDict, Dict]]]]:
    """Build ``(device_fn, edge_fn)`` pairs for every entry of a zoo.

    This is the multi-model serving companion of :func:`split_callables`: the
    returned mapping hands the edge side of every pair to one
    :class:`~repro.system.engine.EdgeServer` (its ``edge_fns``), while each
    device keeps the matching device segment, so a runtime dispatcher can
    route every request to the zoo entry fitting its announced conditions.

    Models are freshly initialized from ``seed``; pass entries whose
    architectures were trained elsewhere through :func:`split_callables`
    directly if trained weights are needed.

    Both callables of an entry share one per-entry lock:
    :class:`ArchitectureModel` is not thread-safe (its operations share one
    random generator), so nothing may run the *same* model concurrently —
    whether two server threads serving the same entry or, in a single-process
    demo, one client's device segment overlapping another's edge segment.
    Distinct entries still execute in parallel, and in a real deployment the
    device callable runs on another machine where its lock never contends.
    """
    pairs: Dict[str, Tuple[Callable, Callable]] = {}
    for entry in zoo:
        model = ArchitectureModel(entry.architecture, in_dim=in_dim,
                                  num_classes=num_classes, seed=seed)
        lock = threading.Lock()
        device_fn, edge_fn = split_callables(model)
        pairs[entry.name] = (_serialized(device_fn, lock),
                             _serialized(edge_fn, lock))
    return pairs


def _serialized(fn: Callable, lock: threading.Lock) -> Callable:
    def locked_fn(*args):
        with lock:
            return fn(*args)

    return locked_fn


def zoo_edge_fns(zoo: ArchitectureZoo, in_dim: int,
                 num_classes: int, seed: int = 0
                 ) -> Dict[str, Callable[[ArrayDict, Dict], Tuple[ArrayDict, Dict]]]:
    """Edge-side callables only, keyed by entry name (``EdgeServer`` ``edge_fns``)."""
    return {name: pair[1]
            for name, pair in zoo_callables(zoo, in_dim, num_classes, seed).items()}
