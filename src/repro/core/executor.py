"""Executable form of a co-inference architecture.

:class:`ArchitectureModel` turns an :class:`~repro.core.architecture.Architecture`
into a trainable model built from the executable operation modules of
:mod:`repro.gnn.operations`, so that sampled architectures can be trained and
their validation accuracy measured (the ``acc_val`` term of the paper's
objective).  :func:`split_callables` additionally slices a trained model at
its ``Communicate`` point into the device-side and edge-side callables
consumed by the socket co-inference engine.

Compiled serving runtime
------------------------
The engine callables built here default to the compiled inference runtime
(:mod:`repro.runtime`): :func:`split_callables`, :func:`batched_edge_fn` and
the :mod:`repro.serving` facade builders (every public constructor routes
through the internal :func:`_build_callables`) compile the model once into
an autograd-free
:class:`~repro.runtime.plan.InferencePlan` — fused linear+bias+activation
kernels, EdgeConv specialized per reducer, destination-sorted edge lists,
and a per-entry buffer arena reusing output buffers across frames — and run
plans instead of eager segments (``runtime="eager"`` restores the old path;
``runtime="auto"`` falls back to eager only when the model contains a
construct plans do not support).  Training, search and the simulator keep
eager autograd execution; compiled results match eager within float64
round-off (see ``tests/test_runtime_plans.py``).

Batched serving
---------------
The edge side of a split model can also execute many frames in one call:
:func:`collate_arrays` merges the serialized states of several frames into a
single multi-graph state (concatenated features, batch vector shifted by the
graph offset, edge index shifted by the node offset), :func:`batched_edge_fn`
resumes the architecture once over the merged state, and
:func:`split_results` scatters the pooled per-graph outputs back to the
originating frames.  This is what the engine's
:class:`~repro.system.engine.MicroBatcher` calls to amortize one engine
invocation across concurrent clients; the result is numerically equivalent
to running the frames one by one (every operation reduces strictly within
the batch vector's graph boundaries).
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..graph.data import Batch
from ..gnn.operations import (ClassifierOp, ExecState, Operation, OpSpec, OpType,
                              build_operation)
from ..runtime import InferencePlan, PlanCompileError, compile_plan
from .architecture import Architecture
from .zoo import ArchitectureZoo


class ArchitectureModel(nn.Module):
    """Trainable model realizing one co-inference architecture.

    Parameters
    ----------
    architecture:
        The operation sequence to realize.
    in_dim:
        Input node-feature dimensionality.
    num_classes:
        Number of output classes of the final classifier.
    seed:
        Seed for weight initialization and random-sampling operations.
    """

    def __init__(self, architecture: Architecture, in_dim: int, num_classes: int,
                 seed: int = 0) -> None:
        super().__init__()
        self.architecture = architecture
        self.in_dim = in_dim
        self.num_classes = num_classes
        rng = np.random.default_rng(seed)
        self._operations: List[Operation] = []
        dim = in_dim
        for index, spec in enumerate(architecture.ops):
            operation = build_operation(spec, dim, rng=rng, seed=seed + index)
            self.add_module(f"op{index}", operation)
            self._operations.append(operation)
            dim = operation.output_dim(dim)
        classifier_spec = OpSpec(OpType.CLASSIFIER, "mlp")
        self.classifier = ClassifierOp(classifier_spec, dim, num_classes,
                                       hidden_dim=architecture.classifier_hidden,
                                       rng=rng)

    # ------------------------------------------------------------------
    @staticmethod
    def initial_state(batch: Batch) -> ExecState:
        """Build the execution state for a batch of graphs."""
        return ExecState(
            x=nn.Tensor(batch.x),
            batch=batch.batch.copy(),
            num_graphs=batch.num_graphs,
            edge_index=None if batch.edge_index is None else batch.edge_index.copy(),
            pos=None if batch.pos is None else batch.pos.copy(),
        )

    def run_segment(self, state: ExecState, start: int, end: Optional[int] = None,
                    include_classifier: bool = False) -> ExecState:
        """Execute operations ``start:end`` (communicates are no-ops here)."""
        end = len(self._operations) if end is None else end
        for operation in self._operations[start:end]:
            state = operation(state)
        if include_classifier:
            state = self.classifier(state)
        return state

    def forward(self, batch: Batch) -> nn.Tensor:
        """Full forward pass returning class logits, one row per graph."""
        state = self.run_segment(self.initial_state(batch), 0, None,
                                 include_classifier=True)
        return state.x

    # ------------------------------------------------------------------
    def num_operations(self) -> int:
        return len(self._operations)

    def first_communicate_index(self) -> Optional[int]:
        """Index of the first Communicate operation, or ``None``."""
        for index, operation in enumerate(self._operations):
            if operation.spec.op == OpType.COMMUNICATE:
                return index
        return None


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
ArrayDict = Dict[str, np.ndarray]


def _state_to_arrays(state: ExecState) -> Tuple[ArrayDict, Dict]:
    arrays: ArrayDict = {"x": state.x.data, "batch": state.batch}
    if state.edge_index is not None:
        arrays["edge_index"] = state.edge_index
    if state.pos is not None:
        arrays["pos"] = state.pos
    meta = {"num_graphs": state.num_graphs, "pooled": state.pooled}
    return arrays, meta


def _arrays_to_state(arrays: ArrayDict, meta: Dict) -> ExecState:
    return ExecState(
        x=nn.Tensor(arrays["x"]),
        batch=np.asarray(arrays["batch"], dtype=np.int64),
        num_graphs=int(meta["num_graphs"]),
        edge_index=np.asarray(arrays["edge_index"], dtype=np.int64)
        if "edge_index" in arrays else None,
        pos=arrays.get("pos"),
        pooled=bool(meta["pooled"]),
    )


#: How serving callables execute the model.  ``"compiled"`` requires the
#: compiled runtime (raises :class:`~repro.runtime.plan.PlanCompileError` on
#: unsupported models), ``"eager"`` forces the autograd path under
#: ``no_grad``, and ``"auto"`` — the default — compiles when possible and
#: silently falls back to eager otherwise.  The fallback only exists for the
#: default ``float64`` dtype: eager execution cannot honor any other dtype,
#: so ``"auto"`` with e.g. ``float32`` re-raises the compile error instead
#: of silently changing the requested precision.
RUNTIMES = ("auto", "compiled", "eager")


def _as_runtime_config(runtime: str, dtype) -> "RuntimeConfig":
    """Wrap the legacy ``runtime=``/``dtype=`` knob pair into a config.

    The import is deferred: :mod:`repro.serving.config` imports this module
    for the :data:`RUNTIMES` vocabulary, so a module-level import here would
    be circular.
    """
    from ..serving.config import RuntimeConfig
    return RuntimeConfig(runtime=runtime,
                         dtype=None if dtype is None else np.dtype(dtype).name)


def _resolve_plan(model: ArchitectureModel, config,
                  segments: Sequence[str],
                  precision: Optional[str] = None,
                  calibration=None) -> Optional[InferencePlan]:
    """Compile ``model`` according to ``config`` (None = run eagerly).

    ``config`` is a :class:`repro.serving.RuntimeConfig`; ``segments``
    limits compilation to the plan segments the caller will run, so e.g. a
    batched edge callable never builds device/full step lists it cannot
    execute.  ``precision`` is the entry's resolved precision (see
    ``RuntimeConfig.precision_for``); for ``"int8"`` the caller passes the
    matching ``calibration`` and the plan compiles on the quantized path
    with a float32 carrier.
    """
    runtime = config.runtime
    if runtime not in RUNTIMES:
        raise ValueError(f"unknown runtime {runtime!r} (expected one of "
                         f"{RUNTIMES})")
    if precision is None:
        precision = np.dtype(np.float64 if config.dtype is None
                             else config.dtype).name
    quantized = precision == "int8"
    dtype = np.dtype(np.float32 if quantized else precision)
    if runtime == "eager":
        if dtype != np.float64 or quantized:
            raise ValueError(
                "the eager runtime computes in float64 only; use "
                "runtime='compiled' for a different compute dtype or "
                "precision")
        return None
    backend = getattr(config, "backend", None)
    try:
        return compile_plan(model, dtype=dtype, segments=segments,
                            backend=backend,
                            calibration=calibration if quantized else None)
    except PlanCompileError:
        if runtime == "compiled":
            raise
        if dtype != np.float64 or quantized:
            raise  # no eager fallback can honor a non-float64 precision
        return None


def _run_to_arrays(run) -> Tuple[ArrayDict, Dict]:
    """Wire-schema arrays/meta of a compiled run (twin of ``_state_to_arrays``)."""
    arrays: ArrayDict = {"x": run.x, "batch": run.batch}
    if run.edge_index is not None:
        arrays["edge_index"] = run.edge_index
    if run.pos is not None:
        arrays["pos"] = run.pos
    meta = {"num_graphs": run.num_graphs, "pooled": run.pooled}
    return arrays, meta


def split_callables(model: ArchitectureModel, runtime: str = "auto",
                    dtype=None
                    ) -> Tuple[Callable[[Batch], Tuple[ArrayDict, Dict]],
                               Callable[[ArrayDict, Dict], Tuple[ArrayDict, Dict]]]:
    """Split a trained model into engine callables at its Communicate point.

    Returns ``(device_fn, edge_fn)``: the device function executes every
    operation before the first ``Communicate`` and serializes the state; the
    edge function executes the remaining operations and the classifier and
    returns the logits.  Architectures without a Communicate run everything
    on the device and the edge function merely echoes the logits back, so the
    same engine code path covers Device-Only deployments.

    By default both callables execute a compiled
    :class:`~repro.runtime.plan.InferencePlan` instead of the eager autograd
    segments (see ``runtime``), resolving weights at call time so later
    ``load_state_dict`` calls are honored.  ``dtype`` selects the compiled
    compute/wire dtype (default ``float64``); with ``float32`` the device
    callable emits float32 arrays, halving the bytes every frame puts on the
    wire at ~1e-4 relative logit error (pinned by the equivalence tests).
    A non-``float64`` dtype requires the compiled runtime: ``runtime="auto"``
    then propagates a :class:`~repro.runtime.plan.PlanCompileError` rather
    than silently falling back to float64 eager execution.
    """
    serving = _build_callables(model, _as_runtime_config(runtime, dtype),
                               batched=False)
    return serving.device_fn, serving.edge_fn


def _split_callables_plan(model: ArchitectureModel, plan: InferencePlan
                          ) -> Tuple[Callable[[Batch], Tuple[ArrayDict, Dict]],
                                     Callable[[ArrayDict, Dict], Tuple[ArrayDict, Dict]]]:
    """Compiled-plan engine callables (twin of :func:`_split_callables_eager`)."""
    split = plan.split
    edge_segment = plan.edge  # aliases the full architecture when split=None

    def device_fn(batch: Batch) -> Tuple[ArrayDict, Dict]:
        run = plan.device.execute_out(batch.x, batch.batch, batch.num_graphs,
                                      edge_index=batch.edge_index,
                                      pos=batch.pos)
        arrays, meta = _run_to_arrays(run)
        meta["finished"] = split is None
        return arrays, meta

    def edge_fn(arrays: ArrayDict, meta: Dict) -> Tuple[ArrayDict, Dict]:
        if meta.get("finished"):
            return {"logits": arrays["x"]}, {"num_graphs": meta["num_graphs"]}
        run = edge_segment.execute_out(
            arrays["x"], arrays["batch"], int(meta["num_graphs"]),
            edge_index=arrays.get("edge_index"), pos=arrays.get("pos"),
            pooled=bool(meta.get("pooled", False)))
        return {"logits": run.x}, {"num_graphs": run.num_graphs}

    return device_fn, edge_fn


def _split_callables_eager(model: ArchitectureModel
                           ) -> Tuple[Callable[[Batch], Tuple[ArrayDict, Dict]],
                                      Callable[[ArrayDict, Dict], Tuple[ArrayDict, Dict]]]:
    """Eager (autograd under ``no_grad``) engine callables."""
    split = model.first_communicate_index()

    def device_fn(batch: Batch) -> Tuple[ArrayDict, Dict]:
        state = model.initial_state(batch)
        with nn.no_grad():
            if split is None:
                state = model.run_segment(state, 0, None, include_classifier=True)
                arrays, meta = _state_to_arrays(state)
                meta["finished"] = True
                return arrays, meta
            state = model.run_segment(state, 0, split)
        arrays, meta = _state_to_arrays(state)
        meta["finished"] = False
        return arrays, meta

    def edge_fn(arrays: ArrayDict, meta: Dict) -> Tuple[ArrayDict, Dict]:
        if meta.get("finished"):
            return {"logits": arrays["x"]}, {"num_graphs": meta["num_graphs"]}
        state = _arrays_to_state(arrays, meta)
        start = (split + 1) if split is not None else 0
        with nn.no_grad():
            state = model.run_segment(state, start, None, include_classifier=True)
        return {"logits": state.x.data}, {"num_graphs": state.num_graphs}

    return device_fn, edge_fn


# ----------------------------------------------------------------------
# Batched edge execution (micro-batching support)
# ----------------------------------------------------------------------
#: One frame's serialized engine state: ``(arrays, meta)`` as produced by the
#: device callable and consumed by the edge callable.
FrameState = Tuple[ArrayDict, Dict]
#: Edge callable executing many frames in one engine call.
BatchedEdgeFn = Callable[[Sequence[FrameState]], List[FrameState]]


def collate_arrays(requests: Sequence[FrameState],
                   dtype=np.float64) -> Tuple[ArrayDict, Dict, List[int]]:
    """Merge the serialized states of several frames into one multi-graph state.

    Each request is an ``(arrays, meta)`` pair in the wire schema of
    :func:`split_callables` (``x``/``batch`` plus optional ``edge_index`` /
    ``pos`` arrays; ``num_graphs`` / ``pooled`` metadata).  Node rows are
    concatenated, each frame's batch vector is shifted by the number of
    graphs collated before it and its edge index by the number of node rows,
    exactly like :meth:`~repro.graph.data.Batch.from_graphs` builds a
    disjoint union — so one resumed engine call treats the coalesced frames
    as independent graphs of a single batch.

    Returns ``(arrays, meta, graph_counts)`` where ``graph_counts`` records
    how many graphs each frame contributed, in order — the bookkeeping
    :func:`split_results` needs to scatter results back per frame.
    ``dtype`` is the float dtype the collated ``x``/``pos`` arrays are cast
    to (the compiled runtime collates in its compute dtype so a float32
    micro-batch is never round-tripped through float64).
    """
    dtype = np.dtype(dtype)
    if not requests:
        raise ValueError("cannot collate an empty batch of frames")
    pooled = bool(requests[0][1].get("pooled", False))
    has_edges = all("edge_index" in arrays for arrays, _ in requests)
    has_pos = all("pos" in arrays for arrays, _ in requests)
    xs: List[np.ndarray] = []
    batches: List[np.ndarray] = []
    edges: List[np.ndarray] = []
    poss: List[np.ndarray] = []
    graph_counts: List[int] = []
    row_offset = 0
    graph_offset = 0
    for arrays, meta in requests:
        if bool(meta.get("pooled", False)) != pooled:
            raise ValueError("cannot collate pooled and unpooled frames into "
                             "one batch")
        x = np.asarray(arrays["x"], dtype=dtype)
        num_graphs = int(meta["num_graphs"])
        xs.append(x)
        batches.append(np.asarray(arrays["batch"], dtype=np.int64) + graph_offset)
        if has_edges:
            edges.append(np.asarray(arrays["edge_index"], dtype=np.int64)
                         + row_offset)
        if has_pos:
            poss.append(np.asarray(arrays["pos"], dtype=dtype))
        graph_counts.append(num_graphs)
        row_offset += int(x.shape[0])
        graph_offset += num_graphs
    collated: ArrayDict = {"x": np.concatenate(xs, axis=0),
                           "batch": np.concatenate(batches)}
    if has_edges:
        collated["edge_index"] = np.concatenate(edges, axis=1)
    if has_pos:
        collated["pos"] = np.concatenate(poss, axis=0)
    meta = {"num_graphs": graph_offset, "pooled": pooled}
    return collated, meta, graph_counts


def split_results(arrays: ArrayDict, meta: Dict,
                  graph_counts: Sequence[int]) -> List[FrameState]:
    """Split a batched per-graph result back into per-frame results.

    Every array in ``arrays`` is expected to carry one row per graph (the
    state after global pooling / classification) and is sliced along axis 0
    according to ``graph_counts``.  The inverse of :func:`collate_arrays`
    after the architecture has pooled.
    """
    total = int(sum(graph_counts))
    for name, array in arrays.items():
        if int(np.asarray(array).shape[0]) != total:
            raise ValueError(
                f"batched result array {name!r} has {np.asarray(array).shape[0]} "
                f"rows but the batch holds {total} graphs")
    results: List[FrameState] = []
    offset = 0
    for count in graph_counts:
        frame_arrays = {name: np.ascontiguousarray(array[offset:offset + count])
                        for name, array in arrays.items()}
        results.append((frame_arrays, {"num_graphs": int(count)}))
        offset += count
    return results


def batched_edge_fn(model: ArchitectureModel, runtime: str = "auto",
                    dtype=None) -> BatchedEdgeFn:
    """Edge-side callable executing a whole micro-batch in one engine call.

    The batched counterpart of the ``edge_fn`` returned by
    :func:`split_callables`: the per-frame states are collated into one
    multi-graph state, the post-``Communicate`` segment and the classifier
    run once over it, and the pooled logits are split back per frame.
    Because every operation reduces strictly within graph boundaries (the
    batch vector), the returned logits are numerically equivalent to calling
    the per-frame edge function once per request.

    ``runtime``/``dtype`` mirror :func:`split_callables`: by default the
    micro-batch resumes through the compiled plan (whose buffer arena then
    holds batch-shaped buffers, reused across steady-state batches).

    Frames of an architecture without a ``Communicate`` (``finished`` on the
    device) are echoed back per frame, mirroring the per-frame edge function.
    """
    serving = _build_callables(model, _as_runtime_config(runtime, dtype),
                               split=False)
    return serving.batch_fn


def _batched_edge_fn_impl(model: ArchitectureModel,
                          plan: Optional[InferencePlan]) -> BatchedEdgeFn:
    """Batched edge callable over a resolved plan (``None`` = eager)."""
    split = model.first_communicate_index()

    def batch_fn(requests: Sequence[FrameState]) -> List[FrameState]:
        if not requests:
            return []
        if split is None or all(meta.get("finished") for _, meta in requests):
            return [({"logits": arrays["x"]}, {"num_graphs": meta["num_graphs"]})
                    for arrays, meta in requests]
        if plan is not None:
            arrays, meta, graph_counts = collate_arrays(requests,
                                                        dtype=plan.dtype)
            run = plan.edge.execute_out(
                arrays["x"], arrays["batch"], int(meta["num_graphs"]),
                edge_index=arrays.get("edge_index"), pos=arrays.get("pos"),
                pooled=bool(meta.get("pooled", False)))
            return split_results({"logits": run.x},
                                 {"num_graphs": run.num_graphs}, graph_counts)
        arrays, meta, graph_counts = collate_arrays(requests)
        state = _arrays_to_state(arrays, meta)
        with nn.no_grad():
            state = model.run_segment(state, split + 1, None,
                                      include_classifier=True)
        return split_results({"logits": state.x.data},
                             {"num_graphs": state.num_graphs}, graph_counts)

    return batch_fn


@dataclass(frozen=True)
class ServingCallables:
    """The three engine callables of one zoo entry, sharing one model.

    ``device_fn`` runs the pre-``Communicate`` segment on the device,
    ``edge_fn`` resumes one frame on the edge, and ``batch_fn`` resumes a
    whole micro-batch in one call (see :func:`batched_edge_fn`).  When built
    for a zoo, all three are serialized through one per-entry lock because
    they share the same (non-thread-safe) :class:`ArchitectureModel`; a
    field is ``None`` when its callable was not requested from the builder.

    ``plans`` holds the compiled :class:`~repro.runtime.plan.InferencePlan`
    objects behind the callables (empty for eager callables) so owners can
    observe and release their buffer arenas — see :meth:`release_buffers`.
    """

    device_fn: Optional[Callable[[Batch], FrameState]] = None
    edge_fn: Optional[Callable[[ArrayDict, Dict], FrameState]] = None
    batch_fn: Optional[BatchedEdgeFn] = None
    plans: Tuple[InferencePlan, ...] = ()

    def release_buffers(self) -> int:
        """Release the pooled arena buffers of every compiled plan.

        Returns the number of bytes freed.  The teardown hook for serving
        tables: per-thread arenas accumulate one buffer set per thread that
        ever executed a plan, and nothing else frees them before the plan
        itself dies — a retired snapshot must release explicitly.  The
        callables stay usable afterwards (buffers reallocate on demand).
        """
        return sum(plan.release_buffers() for plan in self.plans)

    def arena_nbytes(self) -> int:
        """Bytes currently pooled by this entry's plans across all threads."""
        return sum(plan.arena_nbytes() for plan in self.plans)


def _build_callables(model: ArchitectureModel, config, *,
                     lock: Optional[threading.Lock] = None,
                     split: bool = True, batched: bool = True,
                     entry_name: Optional[str] = None,
                     calibration_frames: Optional[Sequence] = None
                     ) -> ServingCallables:
    """The one internal builder every serving constructor routes through.

    ``config`` is a :class:`repro.serving.RuntimeConfig`; this is the single
    place its ``runtime``/``dtype``/``segments``/``precision``/``backend``
    knobs are resolved into engine callables, so no public builder
    re-threads them.  ``split`` / ``batched`` select which callables to
    build (each compiles its own plan with its own arena: the per-frame
    arena keeps stable single-frame buffer shapes while the batched arena
    tracks the realized micro-batch shapes).  When ``lock`` is given, every
    built callable is serialized through it — :class:`ArchitectureModel` is
    not thread-safe (its operations share one random generator), so nothing
    may run the *same* model concurrently.

    ``entry_name`` selects the per-entry precision from the config's
    ``precision_policy``.  For int8 entries, activation scales come from one
    calibration pass over ``calibration_frames`` — or, when none are given,
    over deterministic seeded synthetic frames, which is what keeps shard
    and cluster replicas (rebuilt from config alone) bit-identical to the
    parent process.
    """
    precision = (config.precision_for(entry_name)
                 if hasattr(config, "precision_for")
                 else np.dtype(np.float64 if config.dtype is None
                               else config.dtype).name)
    calibration = None
    if precision == "int8" and config.runtime != "eager":
        from ..runtime import calibrate, synthetic_calibration_frames
        segments = set()
        if split:
            segments.update(config.segments or ("device", "edge"))
        if batched:
            segments.add("edge")
        frames = calibration_frames
        if not frames:
            frames = synthetic_calibration_frames(model.in_dim, seed=0)
        calibration = calibrate(model, frames,
                                segments=tuple(sorted(segments)))
    device_fn = edge_fn = batch_fn = None
    plans: List[InferencePlan] = []
    if split:
        segments = config.segments or ("device", "edge")
        plan = _resolve_plan(model, config, segments=segments,
                             precision=precision, calibration=calibration)
        if plan is not None:
            plans.append(plan)
        device_fn, edge_fn = (_split_callables_eager(model) if plan is None
                              else _split_callables_plan(model, plan))
    if batched:
        batch_plan = _resolve_plan(model, config, segments=("edge",),
                                   precision=precision,
                                   calibration=calibration)
        if batch_plan is not None:
            plans.append(batch_plan)
        batch_fn = _batched_edge_fn_impl(model, batch_plan)
    if lock is not None:
        device_fn = _serialized(device_fn, lock) if device_fn else None
        edge_fn = _serialized(edge_fn, lock) if edge_fn else None
        batch_fn = _serialized(batch_fn, lock) if batch_fn else None
    return ServingCallables(device_fn=device_fn, edge_fn=edge_fn,
                            batch_fn=batch_fn, plans=tuple(plans))


def _serialized(fn: Callable, lock: threading.Lock) -> Callable:
    def locked_fn(*args):
        with lock:
            return fn(*args)

    return locked_fn


# ----------------------------------------------------------------------
# Deprecated zoo builders (use the repro.serving facade)
# ----------------------------------------------------------------------
class ZooBuilderDeprecationWarning(DeprecationWarning):
    """Warning category of the deprecated ``zoo_*`` builder shims.

    A dedicated subclass so CI can escalate exactly these warnings to
    errors (``-W error::repro.core.executor.ZooBuilderDeprecationWarning``)
    without breaking on unrelated third-party deprecations.
    """


def _deprecated_zoo_builder(name: str) -> None:
    warnings.warn(
        f"{name} is deprecated; build serving callables through the "
        "repro.serving facade instead (build_zoo_callables, ModelRepository "
        "or serve)", ZooBuilderDeprecationWarning, stacklevel=3)


def zoo_serving_callables(zoo: ArchitectureZoo, in_dim: int,
                          num_classes: int, seed: int = 0,
                          runtime: str = "auto", dtype=None
                          ) -> Dict[str, ServingCallables]:
    """Deprecated: use :func:`repro.serving.build_zoo_callables`.

    Thin shim kept for one release so existing callers keep working: emits a
    :class:`DeprecationWarning` and delegates to the facade builder, which
    returns the identical per-entry :class:`ServingCallables` (same locking
    contract, same two-plan compilation).
    """
    _deprecated_zoo_builder("zoo_serving_callables")
    from ..serving import build_zoo_callables
    return build_zoo_callables(zoo, in_dim=in_dim, num_classes=num_classes,
                               config=_as_runtime_config(runtime, dtype),
                               seed=seed)


def zoo_callables(zoo: ArchitectureZoo, in_dim: int,
                  num_classes: int, seed: int = 0,
                  runtime: str = "auto", dtype=None
                  ) -> Dict[str, Tuple[Callable[[Batch], Tuple[ArrayDict, Dict]],
                                       Callable[[ArrayDict, Dict], Tuple[ArrayDict, Dict]]]]:
    """Deprecated: use :func:`repro.serving.build_zoo_callables`.

    Emits a :class:`DeprecationWarning` and delegates to the facade; the
    returned mapping still holds the ``(device_fn, edge_fn)`` pair of every
    zoo entry.
    """
    _deprecated_zoo_builder("zoo_callables")
    from ..serving import build_zoo_callables
    return {name: (serving.device_fn, serving.edge_fn)
            for name, serving in build_zoo_callables(
                zoo, in_dim=in_dim, num_classes=num_classes,
                config=_as_runtime_config(runtime, dtype), seed=seed).items()}


def zoo_edge_fns(zoo: ArchitectureZoo, in_dim: int,
                 num_classes: int, seed: int = 0,
                 runtime: str = "auto", dtype=None
                 ) -> Dict[str, Callable[[ArrayDict, Dict], Tuple[ArrayDict, Dict]]]:
    """Deprecated: use :func:`repro.serving.build_zoo_callables`.

    Emits a :class:`DeprecationWarning` and delegates to the facade; the
    returned mapping still holds the edge-side callable of every zoo entry.
    """
    _deprecated_zoo_builder("zoo_edge_fns")
    from ..serving import build_zoo_callables
    return {name: serving.edge_fn
            for name, serving in build_zoo_callables(
                zoo, in_dim=in_dim, num_classes=num_classes,
                config=_as_runtime_config(runtime, dtype), seed=seed).items()}
