"""GCoDE core: design space, supernet, search, performance awareness, deployment."""

from .architecture import (Architecture, ValidityReport, check_validity, is_valid,
                           DEVICE, EDGE)
from .design_space import DesignSpace
from .executor import (ArchitectureModel, ServingCallables, batched_edge_fn,
                       collate_arrays, split_callables, split_results,
                       zoo_callables, zoo_edge_fns, zoo_serving_callables)
from .supernet import SuperNet, AccuracyCache
from .performance import (EfficiencyEstimate, SimulatorEvaluator,
                          CostEstimatorEvaluator, PredictorEvaluator)
from .search import (SearchConstraints, ScoredArchitecture, SearchResult,
                     ConstraintRandomSearch, RandomSearchConfig,
                     EvolutionarySearch, EvolutionarySearchConfig, FAILED_SCORE)
from .predictor import (FeatureBuilder, LatencyPredictor, PredictorTrainer,
                        PredictorSample, CostEstimator, CostEstimate,
                        abstract_architecture, ArchitectureGraph,
                        error_bound_accuracy, ranking_accuracy,
                        generate_predictor_dataset, split_samples,
                        measure_architectures, LabelledArchitecture)
from .trainer import TrainingConfig, TrainingResult, train_architecture, evaluate_model
from .zoo import ArchitectureZoo, ZooEntry
from .dispatcher import RuntimeDispatcher, RuntimeConditions, conditions_from_meta
from .gcode import GCoDE, GCoDEConfig

__all__ = [
    "Architecture", "ValidityReport", "check_validity", "is_valid", "DEVICE", "EDGE",
    "DesignSpace",
    "ArchitectureModel", "ServingCallables", "batched_edge_fn", "collate_arrays",
    "split_callables", "split_results", "zoo_callables", "zoo_edge_fns",
    "zoo_serving_callables",
    "SuperNet", "AccuracyCache",
    "EfficiencyEstimate", "SimulatorEvaluator", "CostEstimatorEvaluator",
    "PredictorEvaluator",
    "SearchConstraints", "ScoredArchitecture", "SearchResult",
    "ConstraintRandomSearch", "RandomSearchConfig",
    "EvolutionarySearch", "EvolutionarySearchConfig", "FAILED_SCORE",
    "FeatureBuilder", "LatencyPredictor", "PredictorTrainer", "PredictorSample",
    "CostEstimator", "CostEstimate", "abstract_architecture", "ArchitectureGraph",
    "error_bound_accuracy", "ranking_accuracy",
    "generate_predictor_dataset", "split_samples", "measure_architectures",
    "LabelledArchitecture",
    "TrainingConfig", "TrainingResult", "train_architecture", "evaluate_model",
    "ArchitectureZoo", "ZooEntry",
    "RuntimeDispatcher", "RuntimeConditions", "conditions_from_meta",
    "GCoDE", "GCoDEConfig",
]
