"""The GCoDE co-inference design space.

The design space (paper Fig. 6) is a supernet of ``num_layers`` slots, each
of which can hold one of the six operations with one of its function
choices.  Because ``Communicate`` is one of the choices, every sampled
architecture carries its own device-edge mapping — this fusion of the
architecture and mapping spaces is the paper's central idea.

:class:`DesignSpace` owns the choice lists and provides random sampling of
valid architectures, neighbourhood mutation (used by the evolutionary-search
ablation) and function scale-down (used by stage 2 of the search).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..gnn.operations import DEFAULT_FUNCTIONS, OpSpec, OpType
from ..hardware.workload import DataProfile
from .architecture import Architecture, check_validity


@dataclass
class DesignSpace:
    """Searchable co-inference architecture space.

    Parameters
    ----------
    num_layers:
        Number of searchable operation slots.
    profile:
        Data profile of the target application; point clouds (no incoming
        edges) force a ``Sample`` before the first ``Aggregate`` during
        validity checking.
    combine_widths:
        Allowed Combine output widths (the *function* choices of Combine).
    k_choices:
        Allowed neighbourhood sizes for Sample operations.
    max_communicates:
        Maximum number of Communicate operations per architecture.
    """

    num_layers: int = 8
    profile: DataProfile = field(default_factory=DataProfile.modelnet40)
    op_choices: Tuple[str, ...] = OpType.SEARCHABLE
    combine_widths: Tuple[int, ...] = (16, 32, 64, 128)
    aggregate_functions: Tuple[str, ...] = ("add", "mean", "max")
    pool_functions: Tuple[str, ...] = ("sum", "mean", "max", "max||mean")
    sample_functions: Tuple[str, ...] = ("knn", "random")
    k_choices: Tuple[int, ...] = (9, 20)
    max_communicates: int = 2
    classifier_hidden: int = 64

    # ------------------------------------------------------------------
    @property
    def requires_sample(self) -> bool:
        """Whether the input data arrives without graph structure."""
        return not self.profile.has_edges

    def function_choices(self, op: str) -> Tuple:
        """Function choices available for operation type ``op``."""
        if op == OpType.SAMPLE:
            return self.sample_functions
        if op == OpType.AGGREGATE:
            return self.aggregate_functions
        if op == OpType.COMBINE:
            return self.combine_widths
        if op == OpType.GLOBAL_POOL:
            return self.pool_functions
        if op == OpType.IDENTITY:
            return ("skip",)
        if op == OpType.COMMUNICATE:
            return ("uplink",)
        raise ValueError(f"unknown searchable op {op!r}")

    def num_candidate_ops(self) -> int:
        """Number of distinct (op, function, k) choices per layer slot."""
        total = 0
        for op in self.op_choices:
            choices = len(self.function_choices(op))
            if op == OpType.SAMPLE:
                choices *= len(self.k_choices)
            total += choices
        return total

    def size(self) -> int:
        """Total number of (not necessarily valid) architectures in the space."""
        return self.num_candidate_ops() ** self.num_layers

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def random_opspec(self, rng: np.random.Generator,
                      op: Optional[str] = None) -> OpSpec:
        """Sample one operation (uniform over op types, then over functions)."""
        op = op or str(rng.choice(list(self.op_choices)))
        functions = self.function_choices(op)
        function = functions[int(rng.integers(len(functions)))]
        k = int(rng.choice(list(self.k_choices))) if op == OpType.SAMPLE else 9
        return OpSpec(op=op, function=function, k=k)

    def random_architecture(self, rng: np.random.Generator) -> Architecture:
        """Sample one architecture uniformly (may be invalid)."""
        ops = tuple(self.random_opspec(rng) for _ in range(self.num_layers))
        return Architecture(ops=ops, classifier_hidden=self.classifier_hidden)

    def sample_valid(self, rng: np.random.Generator,
                     max_attempts: int = 200) -> Architecture:
        """Rejection-sample until a structurally valid architecture is found.

        This implements the ``while Check(Ops)`` loop of Algorithm 1.  The
        number of attempts is bounded; with the default space roughly one in
        a few dozen uniform samples is valid, so 200 attempts practically
        never fails.
        """
        for _ in range(max_attempts):
            arch = self.random_architecture(rng)
            if self.is_valid(arch):
                return arch
        raise RuntimeError("could not sample a valid architecture; the design-"
                           "space configuration is likely over-constrained")

    def is_valid(self, arch: Architecture) -> bool:
        """Validity under this space's data profile and communicate budget."""
        return bool(check_validity(arch, requires_sample=self.requires_sample,
                                   max_communicates=self.max_communicates))

    # ------------------------------------------------------------------
    # Mutation / scale-down
    # ------------------------------------------------------------------
    def mutate(self, arch: Architecture, rng: np.random.Generator,
               num_mutations: int = 1) -> Architecture:
        """Replace ``num_mutations`` random slots with freshly sampled ops."""
        ops = list(arch.ops)
        for _ in range(max(1, num_mutations)):
            position = int(rng.integers(len(ops)))
            ops[position] = self.random_opspec(rng)
        return Architecture(ops=tuple(ops), name=arch.name,
                            classifier_hidden=arch.classifier_hidden)

    def crossover(self, parent_a: Architecture, parent_b: Architecture,
                  rng: np.random.Generator) -> Architecture:
        """Single-point crossover between two parents (evolutionary baseline)."""
        if len(parent_a.ops) != len(parent_b.ops):
            raise ValueError("parents must have the same number of layers")
        point = int(rng.integers(1, len(parent_a.ops)))
        ops = parent_a.ops[:point] + parent_b.ops[point:]
        return Architecture(ops=ops, classifier_hidden=parent_a.classifier_hidden)

    def scale_down(self, arch: Architecture, rng: np.random.Generator) -> Architecture:
        """Randomly shrink one Combine width (stage-2 function tuning).

        The paper's second search stage keeps the operation set fixed and
        explores cheaper function settings, e.g. reducing Combine dimensions.
        """
        combine_positions = [i for i, op in enumerate(arch.ops)
                             if op.op == OpType.COMBINE]
        if not combine_positions:
            return arch
        position = int(rng.choice(combine_positions))
        current = int(arch.ops[position].function)
        smaller = [w for w in self.combine_widths if w < current]
        if not smaller:
            return arch
        new_width = int(rng.choice(smaller))
        ops = list(arch.ops)
        ops[position] = replace(ops[position], function=new_width)
        return Architecture(ops=tuple(ops), name=arch.name,
                            classifier_hidden=arch.classifier_hidden)

    # ------------------------------------------------------------------
    def describe(self) -> Dict:
        """Summary of the space configuration (used in reports)."""
        return {
            "num_layers": self.num_layers,
            "profile": self.profile.name,
            "ops_per_slot": self.num_candidate_ops(),
            "space_size": self.size(),
            "combine_widths": list(self.combine_widths),
            "k_choices": list(self.k_choices),
            "max_communicates": self.max_communicates,
        }
