"""Architecture search strategies: constraint-based random search and EA baseline."""

from .common import (SearchConstraints, ScoredArchitecture, SearchResult,
                     FAILED_SCORE)
from .random_search import ConstraintRandomSearch, RandomSearchConfig
from .evolutionary import EvolutionarySearch, EvolutionarySearchConfig

__all__ = [
    "SearchConstraints", "ScoredArchitecture", "SearchResult", "FAILED_SCORE",
    "ConstraintRandomSearch", "RandomSearchConfig",
    "EvolutionarySearch", "EvolutionarySearchConfig",
]
