"""Constraint-based random search (paper Algorithm 1).

Stage 1 repeatedly samples *valid* operation sets, prices them with the
efficiency evaluator, discards candidates violating the latency/energy
constraints (without paying for an accuracy evaluation), scores the
survivors as ``acc_val − λ·(P̂_sys + Ê_dev)`` and keeps the running best
set.  Stage 2 ("function scale-down tuning") keeps the best operation sets
fixed and tries cheaper function settings — narrower Combine widths — keeping
a change only when accuracy does not degrade beyond a small tolerance.

Random search is deliberately preferred over evolutionary search here: in a
space where most mutations produce invalid architectures, EA spends its
budget repairing validity (Fig. 10a ablation, :mod:`.evolutionary`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..architecture import Architecture
from ..design_space import DesignSpace
from ..performance import EfficiencyEvaluator
from .common import (FAILED_SCORE, ScoredArchitecture, SearchConstraints,
                     SearchResult)

AccuracyFn = Callable[[Architecture], Tuple[float, float]]


@dataclass
class RandomSearchConfig:
    """Hyper-parameters of the constraint-based random search."""

    max_trials: int = 2000
    tuning_trials: int = 10
    keep_top: int = 20
    #: Accuracy drop (absolute) tolerated when accepting a scaled-down variant.
    scale_down_tolerance: float = 0.005
    seed: int = 0


class ConstraintRandomSearch:
    """Runs Algorithm 1 over a design space.

    Parameters
    ----------
    space:
        The co-inference design space to explore.
    accuracy_fn:
        Callable returning ``(overall_acc, balanced_acc)`` of a candidate —
        normally an :class:`~repro.core.supernet.AccuracyCache`.
    efficiency:
        Efficiency evaluator providing ``P_sys`` / ``E_dev`` estimates.
    constraints:
        Latency/energy constraints and the λ trade-off factor.
    config:
        Trial budget and related knobs.
    """

    def __init__(self, space: DesignSpace, accuracy_fn: AccuracyFn,
                 efficiency: EfficiencyEvaluator,
                 constraints: SearchConstraints,
                 config: Optional[RandomSearchConfig] = None) -> None:
        self.space = space
        self.accuracy_fn = accuracy_fn
        self.efficiency = efficiency
        self.constraints = constraints
        self.config = config or RandomSearchConfig()
        self._latency_scale = 1.0
        self._energy_scale = 1.0

    # ------------------------------------------------------------------
    def _score(self, accuracy: float, estimate) -> float:
        cost = self.constraints.normalized_cost(estimate, self._latency_scale,
                                                self._energy_scale)
        return accuracy - self.constraints.tradeoff_lambda * cost

    def _evaluate_candidate(self, arch: Architecture,
                            trial: int) -> Tuple[Optional[ScoredArchitecture], float, bool]:
        """Price one candidate; returns (scored-or-None, score, violated)."""
        estimate = self.efficiency.evaluate(arch)
        self._latency_scale = max(self._latency_scale, estimate.latency_ms)
        self._energy_scale = max(self._energy_scale, estimate.device_energy_j)
        if not self.constraints.satisfied_by(estimate):
            return None, FAILED_SCORE, True
        overall, balanced = self.accuracy_fn(arch)
        score = self._score(overall, estimate)
        scored = ScoredArchitecture(
            architecture=arch, accuracy=overall, balanced_accuracy=balanced,
            latency_ms=estimate.latency_ms,
            device_energy_j=estimate.device_energy_j, score=score, trial=trial)
        return scored, score, False

    # ------------------------------------------------------------------
    def run(self, verbose: bool = False) -> SearchResult:
        """Execute stage 1 (operation search) and stage 2 (scale-down tuning)."""
        rng = np.random.default_rng(self.config.seed)
        result = SearchResult(best=None)
        seen = set()

        # ----- Stage 1: operation search --------------------------------
        for trial in range(self.config.max_trials):
            try:
                arch = self.space.sample_valid(rng)
            except RuntimeError:
                result.num_invalid += 1
                result.score_history.append(FAILED_SCORE)
                continue
            signature = arch.signature()
            if signature in seen:
                result.score_history.append(FAILED_SCORE)
                continue
            seen.add(signature)
            scored, score, violated = self._evaluate_candidate(arch, trial)
            result.score_history.append(score)
            if violated:
                result.num_constraint_violations += 1
                continue
            result.candidates.append(scored)
            if result.best is None or scored.score > result.best.score:
                result.best = scored
                if verbose:
                    print(f"[search] trial {trial}: new best score "
                          f"{scored.score:.4f} (acc={scored.accuracy:.3f}, "
                          f"lat={scored.latency_ms:.1f}ms)")
        result.candidates = result.top_k(self.config.keep_top, "score")

        # ----- Stage 2: function scale-down tuning ------------------------
        tuned: List[ScoredArchitecture] = []
        for candidate in result.candidates:
            best_variant = candidate
            for tuning_trial in range(self.config.tuning_trials):
                variant = self.space.scale_down(best_variant.architecture, rng)
                if variant.signature() == best_variant.architecture.signature():
                    continue
                if not self.space.is_valid(variant):
                    continue
                scored, _, violated = self._evaluate_candidate(
                    variant, self.config.max_trials + tuning_trial)
                if violated or scored is None:
                    continue
                accuracy_drop = best_variant.accuracy - scored.accuracy
                if (scored.score >= best_variant.score
                        or accuracy_drop <= self.config.scale_down_tolerance):
                    if scored.latency_ms <= best_variant.latency_ms:
                        best_variant = scored
            tuned.append(best_variant)
        result.candidates = sorted(tuned, key=lambda c: -c.score)
        if result.candidates:
            result.best = result.candidates[0]
        return result
