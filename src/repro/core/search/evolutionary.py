"""Evolutionary-search baseline for the Fig. 10(a) ablation.

The paper compares its constraint-based random search against a standard
evolutionary algorithm (tournament selection, crossover, mutation) and
observes that the EA "gets stuck in a cycle of identifying valid
architectures": because most offspring of valid parents are structurally
invalid in the fused architecture-mapping space, the EA wastes its budget.
This module implements that baseline, including the "valid initial
population" variant the paper also evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..architecture import Architecture
from ..design_space import DesignSpace
from ..performance import EfficiencyEvaluator
from .common import (FAILED_SCORE, ScoredArchitecture, SearchConstraints,
                     SearchResult)

AccuracyFn = Callable[[Architecture], Tuple[float, float]]


@dataclass
class EvolutionarySearchConfig:
    """Hyper-parameters of the evolutionary baseline."""

    max_trials: int = 2000
    population_size: int = 20
    tournament_size: int = 4
    mutation_probability: float = 0.6
    crossover_probability: float = 0.4
    #: Seed the initial population with valid architectures ("EA+Valid initial").
    valid_initial_population: bool = False
    keep_top: int = 20
    seed: int = 0


class EvolutionarySearch:
    """Tournament EA over the co-inference design space."""

    def __init__(self, space: DesignSpace, accuracy_fn: AccuracyFn,
                 efficiency: EfficiencyEvaluator, constraints: SearchConstraints,
                 config: Optional[EvolutionarySearchConfig] = None) -> None:
        self.space = space
        self.accuracy_fn = accuracy_fn
        self.efficiency = efficiency
        self.constraints = constraints
        self.config = config or EvolutionarySearchConfig()
        self._latency_scale = 1.0
        self._energy_scale = 1.0

    # ------------------------------------------------------------------
    def _score_architecture(self, arch: Architecture,
                            trial: int) -> Tuple[Optional[ScoredArchitecture], float]:
        """Score one individual; invalid or violating candidates score -1."""
        if not self.space.is_valid(arch):
            return None, FAILED_SCORE
        estimate = self.efficiency.evaluate(arch)
        self._latency_scale = max(self._latency_scale, estimate.latency_ms)
        self._energy_scale = max(self._energy_scale, estimate.device_energy_j)
        if not self.constraints.satisfied_by(estimate):
            return None, FAILED_SCORE
        overall, balanced = self.accuracy_fn(arch)
        cost = self.constraints.normalized_cost(estimate, self._latency_scale,
                                                self._energy_scale)
        score = overall - self.constraints.tradeoff_lambda * cost
        return ScoredArchitecture(architecture=arch, accuracy=overall,
                                  balanced_accuracy=balanced,
                                  latency_ms=estimate.latency_ms,
                                  device_energy_j=estimate.device_energy_j,
                                  score=score, trial=trial), score

    def _tournament(self, population: List[Tuple[Architecture, float]],
                    rng: np.random.Generator) -> Architecture:
        indices = rng.integers(0, len(population), size=self.config.tournament_size)
        best_index = max(indices, key=lambda i: population[i][1])
        return population[best_index][0]

    # ------------------------------------------------------------------
    def run(self, verbose: bool = False) -> SearchResult:
        """Run the EA for ``max_trials`` fitness evaluations."""
        rng = np.random.default_rng(self.config.seed)
        config = self.config
        result = SearchResult(best=None)
        population: List[Tuple[Architecture, float]] = []
        trial = 0

        # ----- initial population ---------------------------------------
        while len(population) < config.population_size and trial < config.max_trials:
            if config.valid_initial_population:
                arch = self.space.sample_valid(rng)
            else:
                arch = self.space.random_architecture(rng)
            scored, score = self._score_architecture(arch, trial)
            result.score_history.append(score)
            if scored is not None:
                result.candidates.append(scored)
                if result.best is None or scored.score > result.best.score:
                    result.best = scored
            else:
                result.num_invalid += 1
            population.append((arch, score))
            trial += 1

        # ----- generational loop -----------------------------------------
        while trial < config.max_trials:
            parent_a = self._tournament(population, rng)
            if rng.random() < config.crossover_probability:
                parent_b = self._tournament(population, rng)
                child = self.space.crossover(parent_a, parent_b, rng)
            else:
                child = parent_a
            if rng.random() < config.mutation_probability:
                child = self.space.mutate(child, rng)
            scored, score = self._score_architecture(child, trial)
            result.score_history.append(score)
            if scored is not None:
                result.candidates.append(scored)
                if result.best is None or scored.score > result.best.score:
                    result.best = scored
                    if verbose:
                        print(f"[ea] trial {trial}: new best {scored.score:.4f}")
            else:
                result.num_invalid += 1
            # Replace the weakest member of the population.
            weakest = min(range(len(population)), key=lambda i: population[i][1])
            if score > population[weakest][1]:
                population[weakest] = (child, score)
            trial += 1

        result.candidates = result.top_k(config.keep_top, "score")
        return result
