"""Shared containers for the architecture-search strategies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..architecture import Architecture
from ..performance import EfficiencyEstimate

#: Score assigned to invalid / constraint-violating candidates (Alg. 1 line 12).
FAILED_SCORE = -1.0


@dataclass(frozen=True)
class SearchConstraints:
    """User requirements driving the constraint-based search.

    Attributes
    ----------
    latency_ms:
        Latency constraint ``C_lat``; ``None`` disables the check.
    energy_j:
        On-device energy constraint ``C_e``; ``None`` disables the check.
    tradeoff_lambda:
        The scaling factor λ weighting efficiency against accuracy in the
        score.  Smaller values favour accuracy, larger values favour speed
        (paper Sec. 4.2, "Accuracy vs. Latency").
    """

    latency_ms: Optional[float] = None
    energy_j: Optional[float] = None
    tradeoff_lambda: float = 0.1

    def satisfied_by(self, estimate: EfficiencyEstimate) -> bool:
        """Whether an efficiency estimate meets both constraints."""
        if self.latency_ms is not None and estimate.latency_ms >= self.latency_ms:
            return False
        if self.energy_j is not None and estimate.device_energy_j >= self.energy_j:
            return False
        return True

    def normalized_cost(self, estimate: EfficiencyEstimate,
                        latency_scale: float, energy_scale: float) -> float:
        """Normalized ``P_sys + E_dev`` term of the score."""
        latency_ref = self.latency_ms if self.latency_ms else latency_scale
        energy_ref = self.energy_j if self.energy_j else energy_scale
        latency_term = estimate.latency_ms / max(latency_ref, 1e-9)
        energy_term = estimate.device_energy_j / max(energy_ref, 1e-9)
        return latency_term + energy_term


@dataclass
class ScoredArchitecture:
    """One evaluated candidate with all the quantities behind its score."""

    architecture: Architecture
    accuracy: float
    balanced_accuracy: float
    latency_ms: float
    device_energy_j: float
    score: float
    trial: int

    def summary(self) -> Dict[str, float]:
        return {
            "accuracy": self.accuracy,
            "balanced_accuracy": self.balanced_accuracy,
            "latency_ms": self.latency_ms,
            "device_energy_j": self.device_energy_j,
            "score": self.score,
            "trial": self.trial,
        }


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best: Optional[ScoredArchitecture]
    candidates: List[ScoredArchitecture] = field(default_factory=list)
    #: Score of every trial in order (``FAILED_SCORE`` for rejected trials);
    #: this is the trajectory plotted in the paper's Fig. 10(a).
    score_history: List[float] = field(default_factory=list)
    num_invalid: int = 0
    num_constraint_violations: int = 0

    @property
    def num_trials(self) -> int:
        return len(self.score_history)

    def best_score_curve(self) -> List[float]:
        """Running maximum of the score history (the Fig. 10a curve)."""
        best = float("-inf")
        curve: List[float] = []
        for score in self.score_history:
            best = max(best, score)
            curve.append(best)
        return curve

    def top_k(self, k: int, objective: str = "score") -> List[ScoredArchitecture]:
        """Top-``k`` candidates under a given objective.

        Objectives: ``"score"`` (default), ``"accuracy"``, ``"latency"``
        (ascending) and ``"energy"`` (ascending).
        """
        if objective == "score":
            key: Callable[[ScoredArchitecture], float] = lambda c: -c.score
        elif objective == "accuracy":
            key = lambda c: -c.accuracy
        elif objective == "latency":
            key = lambda c: c.latency_ms
        elif objective == "energy":
            key = lambda c: c.device_energy_j
        else:
            raise ValueError(f"unknown objective {objective!r}")
        return sorted(self.candidates, key=key)[:k]
