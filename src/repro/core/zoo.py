"""GNN architecture zoo.

The search produces several Pareto-interesting architectures in a single run
(lowest latency, lowest device energy, highest accuracy, best overall score);
GCoDE keeps them all in an *architecture zoo* so the runtime dispatcher can
switch between them as conditions change (paper Sec. 3.6), without re-running
the search.  The zoo is JSON-serializable for on-disk deployment bundles.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .architecture import Architecture
from .search.common import ScoredArchitecture


@dataclass
class ZooEntry:
    """One deployable architecture together with its expected metrics."""

    name: str
    architecture: Architecture
    accuracy: float
    latency_ms: float
    device_energy_j: float
    tags: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "architecture": self.architecture.to_dict(),
            "accuracy": self.accuracy,
            "latency_ms": self.latency_ms,
            "device_energy_j": self.device_energy_j,
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ZooEntry":
        return cls(name=payload["name"],
                   architecture=Architecture.from_dict(payload["architecture"]),
                   accuracy=float(payload["accuracy"]),
                   latency_ms=float(payload["latency_ms"]),
                   device_energy_j=float(payload["device_energy_j"]),
                   tags=list(payload.get("tags", [])))


class ArchitectureZoo:
    """Collection of searched architectures keyed by name."""

    def __init__(self, entries: Optional[Sequence[ZooEntry]] = None) -> None:
        self._entries: Dict[str, ZooEntry] = {}
        for entry in entries or []:
            self.add(entry)

    # ------------------------------------------------------------------
    def add(self, entry: ZooEntry) -> None:
        """Insert or replace an entry (keyed by its name)."""
        self._entries[entry.name] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ZooEntry]:
        return iter(self._entries.values())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def get(self, name: str) -> ZooEntry:
        if name not in self._entries:
            raise KeyError(f"no architecture named {name!r} in the zoo")
        return self._entries[name]

    def names(self) -> List[str]:
        return list(self._entries)

    def items(self) -> List[Tuple[str, ZooEntry]]:
        """``(name, entry)`` pairs, insertion-ordered (serving-table friendly)."""
        return list(self._entries.items())

    def tagged(self, tag: str) -> List[ZooEntry]:
        """Entries carrying ``tag`` (e.g. the ``best-latency`` champion)."""
        return [entry for entry in self if tag in entry.tags]

    # ------------------------------------------------------------------
    def best(self, objective: str = "latency") -> ZooEntry:
        """Best entry under ``objective`` (latency/energy ascending, accuracy descending)."""
        if not self._entries:
            raise ValueError("the architecture zoo is empty")
        if objective == "latency":
            return min(self, key=lambda e: e.latency_ms)
        if objective == "energy":
            return min(self, key=lambda e: e.device_energy_j)
        if objective == "accuracy":
            return max(self, key=lambda e: e.accuracy)
        raise ValueError(f"unknown objective {objective!r}")

    def filter(self, latency_ms: Optional[float] = None,
               energy_j: Optional[float] = None) -> List[ZooEntry]:
        """Entries meeting the given latency/energy budgets."""
        selected = []
        for entry in self:
            if latency_ms is not None and entry.latency_ms > latency_ms:
                continue
            if energy_j is not None and entry.device_energy_j > energy_j:
                continue
            selected.append(entry)
        return selected

    # ------------------------------------------------------------------
    @classmethod
    def from_search(cls, candidates: Sequence[ScoredArchitecture],
                    prefix: str = "gcode") -> "ArchitectureZoo":
        """Build a zoo from search candidates, tagging the per-objective champions."""
        zoo = cls()
        if not candidates:
            return zoo
        for index, candidate in enumerate(candidates):
            zoo.add(ZooEntry(
                name=f"{prefix}-{index}",
                architecture=candidate.architecture.with_name(f"{prefix}-{index}"),
                accuracy=candidate.accuracy,
                latency_ms=candidate.latency_ms,
                device_energy_j=candidate.device_energy_j))
        for objective in ("latency", "energy", "accuracy"):
            champion = zoo.best(objective)
            if f"best-{objective}" not in champion.tags:
                champion.tags.append(f"best-{objective}")
        return zoo

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the zoo to a JSON file."""
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"entries": [entry.to_dict() for entry in self]}, handle,
                      indent=2)

    @classmethod
    def load(cls, path: str) -> "ArchitectureZoo":
        """Load a zoo previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls([ZooEntry.from_dict(entry) for entry in payload["entries"]])
