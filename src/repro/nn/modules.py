"""Neural-network module system for the mini framework.

Provides the :class:`Module` base class (parameter registration, train/eval
mode, state-dict (de)serialization) plus the concrete layers that the GNN
substrate builds on: :class:`Linear`, :class:`MLP`, :class:`Sequential`,
:class:`ReLU`, :class:`Dropout`, :class:`BatchNorm1d` and :class:`LayerNorm`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import init as initializers
from .ops import dropout as dropout_fn
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for :meth:`parameters`,
    :meth:`state_dict` and mode switching.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # -- attribute registration ----------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the module state."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal ------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its children."""
        params: List[Parameter] = list(self._parameters.values())
        for child in self._modules.values():
            params.extend(child.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix + child_name + ".")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.size for p in self.parameters()))

    # -- train / eval ----------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # -- state dict -------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """Return a flat mapping of qualified names to parameter/buffer arrays."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[prefix + name] = param.data.copy()
        for name, buffer in self._buffers.items():
            state[prefix + name] = np.asarray(buffer).copy()
        for child_name, child in self._modules.items():
            state.update(child.state_dict(prefix + child_name + "."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "",
                        strict: bool = True) -> None:
        """Load parameter/buffer values previously produced by :meth:`state_dict`."""
        for name, param in self._parameters.items():
            key = prefix + name
            if key in state:
                value = np.asarray(state[key], dtype=np.float64)
                if value.shape != param.data.shape:
                    raise ValueError(f"shape mismatch for {key}: "
                                     f"{value.shape} vs {param.data.shape}")
                param.data = value.copy()
            elif strict:
                raise KeyError(f"missing parameter in state dict: {key}")
        for name in list(self._buffers):
            key = prefix + name
            if key in state:
                self._buffers[name] = np.asarray(state[key], dtype=np.float64).copy()
                object.__setattr__(self, name, self._buffers[name])
            elif strict:
                raise KeyError(f"missing buffer in state dict: {key}")
        for child_name, child in self._modules.items():
            child.load_state_dict(state, prefix + child_name + ".", strict=strict)

    # -- call protocol ----------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Identity(Module):
    """A module that returns its input unchanged."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class ReLU(Module):
    """Rectified-linear activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Leaky ReLU activation with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Dropout(Module):
    """Inverted dropout with probability ``p`` (active only in training mode)."""

    def __init__(self, p: float = 0.5,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.p, self.training, rng=self._rng)


class Linear(Module):
    """Affine transform ``y = x W + b`` over the last dimension."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            initializers.kaiming_uniform((in_features, out_features), rng=rng),
            name="weight")
        if bias:
            self.bias = Parameter(
                initializers.uniform_bias(in_features, out_features, rng=rng),
                name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for i, module in enumerate(modules):
            self.add_module(str(i), module)
            self._layers.append(module)

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._layers)), module)
        self._layers.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x


class BatchNorm1d(Module):
    """Batch normalization over the first axis of an ``(N, F)`` tensor."""

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.data.mean(axis=0)
            var = x.data.var(axis=0)
            self._buffers["running_mean"] = (
                (1 - self.momentum) * self._buffers["running_mean"]
                + self.momentum * mean)
            self._buffers["running_var"] = (
                (1 - self.momentum) * self._buffers["running_var"]
                + self.momentum * var)
        else:
            mean = self._buffers["running_mean"]
            var = self._buffers["running_var"]
        normalized = (x - Tensor(mean)) / Tensor(np.sqrt(var + self.eps))
        return normalized * self.gamma + self.beta


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (var + self.eps) ** 0.5
        return normalized * self.gamma + self.beta


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between linear layers.

    Parameters
    ----------
    dims:
        Sequence of layer widths, e.g. ``[64, 128, 40]`` builds two linear
        layers ``64 -> 128 -> 40``.
    activate_last:
        Apply the activation after the final linear layer as well.
    batch_norm:
        Insert :class:`BatchNorm1d` after every hidden linear layer.
    dropout:
        Dropout probability applied after each hidden activation.
    """

    def __init__(self, dims: Sequence[int], activate_last: bool = False,
                 batch_norm: bool = False, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output width")
        rng = rng or np.random.default_rng()
        layers: List[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng=rng))
            is_last = i == len(dims) - 2
            if not is_last or activate_last:
                if batch_norm:
                    layers.append(BatchNorm1d(d_out))
                layers.append(ReLU())
                if dropout > 0:
                    layers.append(Dropout(dropout, rng=rng))
        self.net = Sequential(*layers)
        self.dims = list(dims)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    @property
    def out_features(self) -> int:
        return self.dims[-1]
