"""Functional operations for the mini neural-network framework.

These free functions complement :mod:`repro.nn.tensor` with the composite
operations used by the GNN substrate: numerically stable softmax /
log-softmax, dropout, one-hot encoding, and the scatter (segment) reductions
that implement message-passing aggregation over graphs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, as_tensor, is_grad_enabled


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return as_tensor(x).relu()


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero each element with probability ``p``.

    At evaluation time (``training=False``) the input is returned unchanged.
    """
    if not training or p <= 0.0:
        return as_tensor(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    rng = rng or np.random.default_rng()
    x = as_tensor(x)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a dense one-hot encoding of integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size and (indices.min() < 0 or indices.max() >= num_classes):
        raise ValueError("one_hot indices out of range "
                         f"[0, {num_classes}): min={indices.min()}, max={indices.max()}")
    out = np.zeros((indices.shape[0], num_classes), dtype=np.float64)
    out[np.arange(indices.shape[0]), indices] = 1.0
    return out


# ----------------------------------------------------------------------
# Scatter (segment) reductions used for message-passing aggregation
# ----------------------------------------------------------------------
def _sorted_segment_reduce(ufunc: np.ufunc, src: np.ndarray, index: np.ndarray,
                           num_segments: int) -> Optional[np.ndarray]:
    """Per-segment ``ufunc`` reduction for an already-sorted ``index``.

    ``ufunc.at`` visits source elements one by one in C, which made the
    scatter reductions the hot spot of message passing.  KNN/random edge
    lists arrive grouped by destination node, so the common case reduces
    each segment as one contiguous block via ``ufunc.reduceat`` — the
    feature axis stays fully vectorized.  Returns ``None`` when ``index`` is
    unsorted (caller falls back to ``ufunc.at``); empty segments are zeroed,
    matching the fallback's semantics.
    """
    if src.shape[0] == 0 or num_segments == 0:
        return None
    if np.any(np.diff(index) < 0):
        return None
    if index[0] < 0 or index[-1] >= num_segments:
        # Out-of-range segments (e.g. a corrupt batch vector deserialized
        # off the wire) must keep the fallback's behavior — IndexError for
        # too-large, python-style wrapping for negative — not be silently
        # folded into the wrong segment.
        return None
    starts = np.searchsorted(index, np.arange(num_segments))
    # ``starts`` is non-decreasing, so boundaries at len(src) — segments past
    # the last populated one — form a suffix; reduceat forbids them and they
    # hold no elements anyway.
    num_valid = int(np.count_nonzero(starts < src.shape[0]))
    data = np.zeros((num_segments,) + src.shape[1:], dtype=np.float64)
    if num_valid:
        data[:num_valid] = ufunc.reduceat(src, starts[:num_valid], axis=0)
    empty = np.bincount(index, minlength=num_segments) == 0
    if empty.any():
        # reduceat yields src[starts[i]] for an empty segment squeezed
        # between populated ones; zero them like the element-wise fallback.
        data[empty] = 0.0
    return data


def scatter_add(src: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``src`` into ``num_segments`` buckets given by ``index``.

    ``src`` has shape ``(E, F)`` and ``index`` has shape ``(E,)``; the output
    has shape ``(num_segments, F)`` with ``out[i] = sum_{j: index[j]==i} src[j]``.
    """
    src = as_tensor(src)
    index = np.asarray(index, dtype=np.int64)
    if index.shape[0] != src.shape[0]:
        raise ValueError("index length must match the first dimension of src")
    data = _sorted_segment_reduce(np.add, src.data, index, num_segments)
    if data is None:
        data = np.zeros((num_segments,) + src.data.shape[1:], dtype=np.float64)
        np.add.at(data, index, src.data)

    def backward(grad: np.ndarray) -> None:
        src._accumulate(grad[index])

    return Tensor._make(data, (src,), backward)


def scatter_mean(src: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Average rows of ``src`` per segment; empty segments produce zeros."""
    src = as_tensor(src)
    index = np.asarray(index, dtype=np.int64)
    counts = np.bincount(index, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    summed = scatter_add(src, index, num_segments)
    return summed / Tensor(counts.reshape((-1,) + (1,) * (src.ndim - 1)))


def scatter_max(src: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Per-segment maximum of rows of ``src``; empty segments produce zeros.

    The gradient flows only to the element that attained the maximum in each
    segment (ties broken towards the first occurrence).
    """
    src = as_tensor(src)
    index = np.asarray(index, dtype=np.int64)
    if index.shape[0] != src.shape[0]:
        raise ValueError("index length must match the first dimension of src")
    feature_shape = src.data.shape[1:]
    data = _sorted_segment_reduce(np.maximum, src.data, index, num_segments)
    if data is None:
        data = np.full((num_segments,) + feature_shape, -np.inf,
                       dtype=np.float64)
        np.maximum.at(data, index, src.data)
        empty = ~np.isfinite(data)
        data = np.where(empty, 0.0, data)

    # Identify, per (segment, feature), the source row realizing the maximum.
    # This bookkeeping exists only for the backward pass; the inference path
    # (no_grad serving, evaluation) skips it — it costs a Python loop over
    # every source row and dominated edge-side serving profiles.
    argmax = np.full((num_segments,) + feature_shape, -1, dtype=np.int64)
    needs_grad = is_grad_enabled() and src.requires_grad
    if needs_grad and src.data.size:
        gathered = data[index]
        is_max = (src.data == gathered)
        # Iterate rows in reverse so that the *first* maximal row wins ties.
        for row in range(src.data.shape[0] - 1, -1, -1):
            seg = index[row]
            mask = is_max[row]
            argmax[seg] = np.where(mask, row, argmax[seg])

    def backward(grad: np.ndarray) -> None:
        if not src.requires_grad:
            return
        full = np.zeros_like(src.data)
        valid = argmax >= 0
        seg_idx, *feat_idx = np.nonzero(valid)
        rows = argmax[valid]
        if rows.size:
            full[(rows, *feat_idx)] += grad[(seg_idx, *feat_idx)]
        src._accumulate(full)

    return Tensor._make(data, (src,), backward)


def scatter(src: Tensor, index: np.ndarray, num_segments: int,
            reduce: str = "add") -> Tensor:
    """Dispatch to :func:`scatter_add`, :func:`scatter_mean` or :func:`scatter_max`."""
    if reduce in ("add", "sum"):
        return scatter_add(src, index, num_segments)
    if reduce == "mean":
        return scatter_mean(src, index, num_segments)
    if reduce == "max":
        return scatter_max(src, index, num_segments)
    raise ValueError(f"unknown scatter reduction: {reduce!r}")


def gather_rows(src: Tensor, index: np.ndarray) -> Tensor:
    """Row gather ``src[index]`` (alias of :meth:`Tensor.gather_rows`)."""
    return as_tensor(src).gather_rows(index)


def global_pool(x: Tensor, batch: np.ndarray, num_graphs: int,
                mode: str = "mean") -> Tensor:
    """Pool node features into per-graph features.

    Supported modes: ``sum``, ``mean``, ``max`` and ``max||mean`` (the
    concatenation of max- and mean-pooled features used by DGCNN-style
    classifiers and by the paper's searched architectures).
    """
    if mode in ("sum", "add"):
        return scatter_add(x, batch, num_graphs)
    if mode == "mean":
        return scatter_mean(x, batch, num_graphs)
    if mode == "max":
        return scatter_max(x, batch, num_graphs)
    if mode in ("max||mean", "maxmean"):
        from .tensor import concat
        return concat([scatter_max(x, batch, num_graphs),
                       scatter_mean(x, batch, num_graphs)], axis=-1)
    raise ValueError(f"unknown global pooling mode: {mode!r}")
