"""Weight initialization schemes for the mini NN framework."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, int], gain: float = 1.0,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a 2-D weight matrix."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = shape
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: Tuple[int, int], a: float = np.sqrt(5.0),
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He/Kaiming uniform initialization (matches the PyTorch Linear default)."""
    rng = rng or np.random.default_rng()
    fan_in = shape[0]
    gain = np.sqrt(2.0 / (1.0 + a ** 2))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization."""
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-ones initialization."""
    return np.ones(shape)


def uniform_bias(fan_in: int, size: int,
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Uniform bias initialization ``U(-1/sqrt(fan_in), 1/sqrt(fan_in))``."""
    rng = rng or np.random.default_rng()
    bound = 1.0 / np.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=size)
