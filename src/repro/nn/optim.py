"""Gradient-based optimizers for the mini NN framework."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .modules import Parameter


class Optimizer:
    """Base optimizer: holds parameters and provides ``zero_grad``/``step``."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, float]:
        return {"lr": self.lr}


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(param.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(param.data)
                self._v[i] = np.zeros_like(param.data)
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad ** 2
            m_hat = self._m[i] / (1 - self.beta1 ** t)
            v_hat = self._v[i] / (1 - self.beta2 ** t)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Step learning-rate scheduler: multiply ``lr`` by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch and decay the learning rate when due."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    @property
    def last_lr(self) -> float:
        return self.optimizer.lr
