"""Loss functions used for supernet training and predictor fitting."""

from __future__ import annotations

import numpy as np

from .ops import log_softmax
from .tensor import Tensor, as_tensor


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,)."""
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("targets length must match the logits batch size")
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(targets.shape[0]), targets]
    return -picked.mean()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error between predictions and targets."""
    pred = as_tensor(pred)
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean absolute error between predictions and targets."""
    pred = as_tensor(pred)
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return diff.abs().mean()


def mape_loss(pred: Tensor, target: np.ndarray, eps: float = 1e-8) -> Tensor:
    """Mean absolute percentage error, the predictor loss used by GCoDE.

    ``MAPE = mean(|pred - target| / max(|target|, eps))``.  The paper trains
    its GIN latency predictor with MAPE for 200 epochs (Sec. 4.1).
    """
    pred = as_tensor(pred)
    target = np.asarray(target, dtype=np.float64)
    denom = np.maximum(np.abs(target), eps)
    diff = (pred - Tensor(target)).abs()
    return (diff / Tensor(denom)).mean()


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Classification accuracy of argmax predictions (overall accuracy, OA)."""
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    preds = logits.data.argmax(axis=-1)
    if targets.size == 0:
        return 0.0
    return float((preds == targets).mean())


def balanced_accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Class-balanced (mean per-class) accuracy — the paper's mAcc metric."""
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    preds = logits.data.argmax(axis=-1)
    accs = []
    for cls in np.unique(targets):
        mask = targets == cls
        accs.append(float((preds[mask] == cls).mean()))
    return float(np.mean(accs)) if accs else 0.0
