"""Minimal numpy-based neural-network framework used by the GCoDE reproduction.

The public surface mirrors a small subset of PyTorch: :class:`Tensor` with
reverse-mode autograd, :class:`Module`-based layers, optimizers and loss
functions.  It exists because the original paper builds on PyTorch /
PyTorch Geometric, which are not available in this environment; see
DESIGN.md for the substitution rationale.
"""

from .tensor import Tensor, as_tensor, concat, stack, where, maximum, no_grad, is_grad_enabled
from .ops import (softmax, log_softmax, relu, dropout, one_hot,
                  scatter, scatter_add, scatter_mean, scatter_max,
                  gather_rows, global_pool)
from .modules import (Module, Parameter, Identity, ReLU, LeakyReLU, Dropout,
                      Linear, Sequential, BatchNorm1d, LayerNorm, MLP)
from .losses import (cross_entropy, mse_loss, mae_loss, mape_loss,
                     accuracy, balanced_accuracy)
from .optim import Optimizer, SGD, Adam, StepLR
from .serialization import save_state_dict, load_state_dict, save_module, load_module
from . import init

__all__ = [
    "Tensor", "as_tensor", "concat", "stack", "where", "maximum", "no_grad",
    "is_grad_enabled",
    "softmax", "log_softmax", "relu", "dropout", "one_hot",
    "scatter", "scatter_add", "scatter_mean", "scatter_max", "gather_rows",
    "global_pool",
    "Module", "Parameter", "Identity", "ReLU", "LeakyReLU", "Dropout",
    "Linear", "Sequential", "BatchNorm1d", "LayerNorm", "MLP",
    "cross_entropy", "mse_loss", "mae_loss", "mape_loss",
    "accuracy", "balanced_accuracy",
    "Optimizer", "SGD", "Adam", "StepLR",
    "save_state_dict", "load_state_dict", "save_module", "load_module",
    "init",
]
