"""Saving and loading model parameters.

State dicts are plain ``{name: ndarray}`` mappings, stored with
``numpy.savez`` so no pickling of custom classes is involved.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .modules import Module


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a state dict to ``path`` (``.npz``), creating parent directories."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **{key: np.asarray(value) for key, value in state.items()})


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state_dict`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def save_module(module: Module, path: str) -> None:
    """Serialize ``module.state_dict()`` to ``path``."""
    save_state_dict(module.state_dict(), path)


def load_module(module: Module, path: str, strict: bool = True) -> Module:
    """Load parameters from ``path`` into ``module`` (in place) and return it."""
    module.load_state_dict(load_state_dict(path), strict=strict)
    return module
