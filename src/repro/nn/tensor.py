"""Reverse-mode automatic differentiation on top of numpy.

This module provides the :class:`Tensor` class, a light-weight replacement
for the parts of ``torch.Tensor`` that the GCoDE reproduction needs: it wraps
a ``numpy.ndarray``, records the computation graph when ``requires_grad`` is
set, and supports reverse-mode differentiation through the arithmetic,
reduction, indexing and scatter operations used by the GNN substrate.

The implementation is intentionally simple and vectorized: every operation
creates a new :class:`Tensor` whose ``_backward`` closure knows how to push
gradients to its parents.  Calling :meth:`Tensor.backward` performs a
topological sort of the recorded graph and accumulates gradients.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

# Gradient recording is a per-thread mode (as in torch): the serving engine
# runs inference under no_grad on several handler threads concurrently while
# another thread may be training.
_grad_state = threading.local()


def _grad_enabled() -> bool:
    return getattr(_grad_state, "enabled", True)


class no_grad:
    """Context manager that disables gradient recording in the current thread.

    Mirrors ``torch.no_grad``: inside the block, newly created tensors do not
    record the computation graph even if their inputs require gradients.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _grad_enabled()
        _grad_state.enabled = False
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        _grad_state.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return ``True`` when gradient recording is enabled in this thread."""
    return _grad_enabled()


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype and np.issubdtype(value.dtype, np.floating):
            return value.astype(dtype)
        if np.issubdtype(value.dtype, np.integer) or value.dtype == np.bool_:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it matches ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like holding the tensor values.  Stored as ``float64``.
    requires_grad:
        When ``True`` and gradients are globally enabled, operations on this
        tensor are recorded so that :meth:`backward` can compute gradients.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: str = "") -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached copy of this tensor."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        parents = tuple(parents)
        requires = _grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1`` for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without an explicit gradient is "
                                 "only supported for scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        # Topological sort of the graph reachable from ``self``.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product ``self @ other`` with gradients for both operands."""
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)
        data = self.data * scale

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * scale)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        input_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, input_shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        data = self.data.mean(axis=axis, keepdims=keepdims)
        input_shape = self.data.shape
        count = self.data.size if axis is None else np.prod(
            [input_shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))])

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, input_shape) / count)

        return Tensor._make(data, (self,), backward)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if axis is None:
                mask = (self.data == self.data.max())
                mask = mask / mask.sum()
                self._accumulate(grad * mask)
                return
            expanded = data if keepdims else np.expand_dims(data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            self._accumulate(mask * g)

        return Tensor._make(data, (self,), backward)

    def min(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = axes if axes else None
        data = self.data.transpose(axes_t)

        def backward(grad: np.ndarray) -> None:
            if axes_t is None:
                self._accumulate(grad.transpose())
            else:
                inverse = np.argsort(axes_t)
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(shape, dtype=np.float64)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Select rows ``self[index]`` where ``index`` is an integer array."""
        index = np.asarray(index, dtype=np.int64)
        data = self.data[index]
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(shape, dtype=np.float64)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, requires_grad: bool = False,
              rng: Optional[np.random.Generator] = None) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


# ----------------------------------------------------------------------
# Free functions mirroring the Tensor methods (functional flavour)
# ----------------------------------------------------------------------
def as_tensor(value: ArrayLike) -> Tensor:
    """Return ``value`` unchanged if it already is a Tensor, else wrap it."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad: np.ndarray) -> None:
        start = 0
        for tensor, size in zip(tensors, sizes):
            slicer = [slice(None)] * grad.ndim
            slicer[axis if axis >= 0 else grad.ndim + axis] = slice(start, start + size)
            tensor._accumulate(grad[tuple(slicer)])
            start += size

    return Tensor._make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new dimension ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select ``a`` where ``condition`` else ``b``."""
    a, b = as_tensor(a), as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * condition)
        b._accumulate(grad * (~condition))

    return Tensor._make(data, (a, b), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum with gradient routed to the larger operand."""
    a, b = as_tensor(a), as_tensor(b)
    return where(a.data >= b.data, a, b)
