"""Co-inference system simulator.

Given an operation sequence (with explicit ``Communicate`` hand-offs), a data
profile and a system configuration (device, edge, wireless link), the
simulator produces the end-to-end inference latency, the per-side busy times,
the uplink traffic and the on-device energy — i.e. the quantities ``P_sys``
and ``E_dev`` of the paper's optimization objective.  It also reports the
pipelined throughput achieved by the co-inference engine (the device starts
the next frame while the edge processes the previous one), which is what the
paper's "inference speed (fps)" axis in Fig. 1 measures.

The simulator is purely analytical (no tensors are executed); the executable
path lives in :mod:`repro.core.executor` and :mod:`repro.system.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..gnn.operations import OpSpec, OpType
from ..hardware.device import DeviceSpec
from ..hardware.energy import EnergyBreakdown, estimate_device_energy
from ..hardware.network import WirelessLink, get_link
from ..hardware.workload import (DataProfile, OpWorkload, input_bytes,
                                 trace_workloads)

DEVICE = "device"
EDGE = "edge"


@dataclass(frozen=True)
class SystemConfig:
    """A device-edge pairing plus the wireless link between them."""

    device: DeviceSpec
    edge: DeviceSpec
    link: WirelessLink

    @property
    def name(self) -> str:
        return f"{self.device.name}->{self.edge.name}@{self.link.bandwidth_mbps:g}Mbps"


@dataclass
class OpTimelineEntry:
    """Timing of a single operation (or transfer) in the simulated execution."""

    label: str
    side: str
    latency_ms: float
    bytes_transferred: int = 0


@dataclass
class SystemPerformance:
    """Simulated performance of one architecture on one system configuration."""

    latency_ms: float
    device_busy_ms: float
    edge_busy_ms: float
    comm_ms: float
    uploaded_bytes: float
    downloaded_bytes: float
    energy: EnergyBreakdown
    timeline: List[OpTimelineEntry] = field(default_factory=list)

    @property
    def device_energy_j(self) -> float:
        return self.energy.total_j

    @property
    def fps(self) -> float:
        """Sequential (non-pipelined) frames per second."""
        return 1000.0 / self.latency_ms if self.latency_ms > 0 else float("inf")

    @property
    def pipelined_fps(self) -> float:
        """Throughput when device compute, transfer and edge compute overlap.

        The co-inference engine processes frame ``t+1`` on the device while
        frame ``t`` is in flight or on the edge, so steady-state throughput is
        limited by the slowest pipeline stage rather than the total latency.
        """
        bottleneck = max(self.device_busy_ms, self.edge_busy_ms, self.comm_ms, 1e-9)
        return 1000.0 / bottleneck

    def summary(self) -> Dict[str, float]:
        return {
            "latency_ms": self.latency_ms,
            "device_busy_ms": self.device_busy_ms,
            "edge_busy_ms": self.edge_busy_ms,
            "comm_ms": self.comm_ms,
            "uploaded_kb": self.uploaded_bytes / 1024.0,
            "device_energy_j": self.device_energy_j,
            "fps": self.fps,
            "pipelined_fps": self.pipelined_fps,
        }


class CoInferenceSimulator:
    """Analytical simulator for device-edge co-inference of GNN architectures.

    Parameters
    ----------
    config:
        The device-edge-link system configuration.
    runtime_overhead_ms:
        Fixed per-segment runtime cost of the co-inference engine (thread
        hand-off, (de)serialization) added on top of the pure operation
        latencies.  The paper's cost-estimation baseline ignores runtime
        overheads; setting this to a non-zero value reproduces that gap.
    """

    def __init__(self, config: SystemConfig, runtime_overhead_ms: float = 1.0) -> None:
        self.config = config
        self.runtime_overhead_ms = runtime_overhead_ms

    # ------------------------------------------------------------------
    def evaluate(self, ops: Sequence[OpSpec], profile: DataProfile,
                 classifier_hidden: int = 64,
                 initial_side: str = DEVICE) -> SystemPerformance:
        """Simulate one inference of ``ops`` over ``profile``-shaped data.

        ``initial_side`` selects where execution starts: ``"device"`` for the
        normal co-inference / device-only flow, ``"edge"`` for an Edge-Only
        deployment (the raw input is uploaded first).
        """
        if initial_side not in (DEVICE, EDGE):
            raise ValueError("initial_side must be 'device' or 'edge'")
        device, edge, link = self.config.device, self.config.edge, self.config.link
        workloads = trace_workloads(ops, profile, classifier_hidden)

        timeline: List[OpTimelineEntry] = []
        device_busy = 0.0
        edge_busy = 0.0
        comm_ms = 0.0
        uploaded = 0.0
        downloaded = 0.0
        side = initial_side
        segments = 1

        if initial_side == EDGE:
            payload = input_bytes(profile)
            transfer = link.transfer_time_ms(payload)
            comm_ms += transfer
            uploaded += payload
            timeline.append(OpTimelineEntry("upload-input", "link", transfer, payload))

        prev_output_bytes = input_bytes(profile)
        for workload in workloads:
            spec = workload.spec
            if spec.op == OpType.COMMUNICATE:
                transfer = link.transfer_time_ms(int(prev_output_bytes))
                comm_ms += transfer
                if side == DEVICE:
                    uploaded += prev_output_bytes
                else:
                    downloaded += prev_output_bytes
                timeline.append(OpTimelineEntry("communicate", "link", transfer,
                                                int(prev_output_bytes)))
                side = EDGE if side == DEVICE else DEVICE
                segments += 1
                continue
            platform = device if side == DEVICE else edge
            latency = platform.op_latency_ms(workload, classifier_hidden)
            if side == DEVICE:
                device_busy += latency
            else:
                edge_busy += latency
            timeline.append(OpTimelineEntry(spec.short_name(), side, latency))
            prev_output_bytes = workload.output_bytes

        # If the classifier finished on the edge, the (tiny) result returns
        # to the device so the application can act on it.
        if side == EDGE:
            result_bytes = workloads[-1].output_bytes
            transfer = link.transfer_time_ms(int(result_bytes))
            comm_ms += transfer
            downloaded += result_bytes
            timeline.append(OpTimelineEntry("return-result", "link", transfer,
                                            int(result_bytes)))

        overhead = self.runtime_overhead_ms * segments
        latency_total = device_busy + edge_busy + comm_ms + overhead
        energy = estimate_device_energy(
            device=device, link=link,
            device_busy_ms=device_busy,
            device_idle_ms=edge_busy + overhead,
            uploaded_bytes=uploaded)
        return SystemPerformance(
            latency_ms=latency_total,
            device_busy_ms=device_busy,
            edge_busy_ms=edge_busy,
            comm_ms=comm_ms,
            uploaded_bytes=uploaded,
            downloaded_bytes=downloaded,
            energy=energy,
            timeline=timeline,
        )

    # ------------------------------------------------------------------
    def evaluate_device_only(self, ops: Sequence[OpSpec], profile: DataProfile,
                             classifier_hidden: int = 64) -> SystemPerformance:
        """Simulate the architecture with every operation on the device."""
        stripped = [op for op in ops if op.op != OpType.COMMUNICATE]
        return self.evaluate(stripped, profile, classifier_hidden, initial_side=DEVICE)

    def evaluate_edge_only(self, ops: Sequence[OpSpec], profile: DataProfile,
                           classifier_hidden: int = 64) -> SystemPerformance:
        """Simulate the architecture with every operation on the edge."""
        stripped = [op for op in ops if op.op != OpType.COMMUNICATE]
        return self.evaluate(stripped, profile, classifier_hidden, initial_side=EDGE)

    def profile_operations(self, ops: Sequence[OpSpec], profile: DataProfile,
                           side: str = DEVICE,
                           classifier_hidden: int = 64) -> List[Tuple[OpSpec, float, int]]:
        """Per-operation latency and output payload on a single platform.

        This is the data behind the paper's Fig. 2 (per-operation latency and
        transfer-size profile of DGCNN on a single device).
        """
        platform = self.config.device if side == DEVICE else self.config.edge
        result = []
        for workload in trace_workloads(ops, profile, classifier_hidden):
            if workload.spec.op == OpType.COMMUNICATE:
                continue
            latency = platform.op_latency_ms(workload, classifier_hidden)
            result.append((workload.spec, latency, workload.output_bytes))
        return result


def make_system(device: DeviceSpec, edge: DeviceSpec, link) -> SystemConfig:
    """Convenience constructor accepting a link object, name or bandwidth."""
    return SystemConfig(device=device, edge=edge, link=get_link(link))
