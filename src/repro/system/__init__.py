"""Co-inference system layer: simulator, partitioning, wire format, transport,
scheduling, engine."""

from .simulator import (SystemConfig, SystemPerformance, CoInferenceSimulator,
                        OpTimelineEntry, make_system, DEVICE, EDGE)
from .partition import (PartitionResult, insert_partition, candidate_partitions,
                        evaluate_partitions, best_partition)
from .messages import (Message, serialize_message, deserialize_message,
                       compressed_size, WIRE_FORMAT_RAW, WIRE_FORMAT_ZLIB,
                       WIRE_FORMATS)
from .transport import FRONTEND_ASYNC, FRONTEND_THREADED, FRONTENDS
from .scheduler import (BackpressureError, FrameExpiredError, QosPolicy,
                        Scheduler, SchedulerSnapshot)
from .engine import (EdgeServer, DeviceClient, FrameResult, MicroBatcher,
                     PipelineStats, RequestRejectedError, ServingSession,
                     ServingTable, EdgeServerStats, run_co_inference)

__all__ = [
    "SystemConfig", "SystemPerformance", "CoInferenceSimulator",
    "OpTimelineEntry", "make_system", "DEVICE", "EDGE",
    "PartitionResult", "insert_partition", "candidate_partitions",
    "evaluate_partitions", "best_partition",
    "Message", "serialize_message", "deserialize_message", "compressed_size",
    "WIRE_FORMAT_RAW", "WIRE_FORMAT_ZLIB", "WIRE_FORMATS",
    "FRONTEND_ASYNC", "FRONTEND_THREADED", "FRONTENDS",
    "BackpressureError", "FrameExpiredError", "QosPolicy", "Scheduler",
    "SchedulerSnapshot",
    "EdgeServer", "DeviceClient", "FrameResult", "MicroBatcher",
    "PipelineStats", "RequestRejectedError", "ServingSession", "ServingTable",
    "EdgeServerStats", "run_co_inference",
]
