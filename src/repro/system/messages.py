"""Wire format of the co-inference engine.

Intermediate GNN states are exchanged between the device and the edge as
length-prefixed, zlib-compressed messages containing named numpy arrays plus
a small JSON metadata header — mirroring the paper's engine, which is built
on Python sockets and compresses all transmitted data with zlib.
"""

from __future__ import annotations

import io
import json
import socket
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

#: 4-byte big-endian unsigned length prefix.
_LENGTH_FORMAT = ">I"
_LENGTH_SIZE = struct.calcsize(_LENGTH_FORMAT)


@dataclass
class Message:
    """One unit of device↔edge communication.

    Attributes
    ----------
    kind:
        Message type: ``"hello"`` (connection handshake: the client announces
        its name and runtime conditions, the server acknowledges with the
        available models and, when a dispatcher is attached, the entry chosen
        for those conditions), ``"frame"`` (intermediate state), ``"result"``
        (classifier output), ``"error"`` (edge-side execution failure,
        carrying the remote traceback in ``meta``), ``"stop"`` (end of
        stream).
    frame_id:
        Sequence number of the inference frame this message belongs to.
    arrays:
        Named numpy arrays (node features, batch vector, edge index, ...).
    meta:
        Small JSON-serializable metadata (e.g. which segment to execute).
    batch_index:
        Position of this frame inside the micro-batch the edge coalesced it
        into (``None`` for per-frame serving).  Carried on ``"result"`` and
        ``"error"`` replies so a failure isolates to the one offending frame
        of a batch instead of discrediting the whole batch, and so clients
        can observe the realized coalescing.
    wire_bytes:
        Size of the compressed frame as received from the socket; filled in
        by :func:`recv_message` (0 for locally constructed messages).
    """

    kind: str
    frame_id: int = 0
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    meta: Dict = field(default_factory=dict)
    batch_index: Optional[int] = None
    wire_bytes: int = 0


def serialize_message(message: Message, compress_level: int = 6) -> bytes:
    """Encode a message to compressed bytes (without the length prefix)."""
    buffer = io.BytesIO()
    header = {
        "kind": message.kind,
        "frame_id": message.frame_id,
        "meta": message.meta,
        "arrays": list(message.arrays.keys()),
    }
    if message.batch_index is not None:
        header["batch_index"] = int(message.batch_index)
    header_bytes = json.dumps(header).encode("utf-8")
    buffer.write(struct.pack(_LENGTH_FORMAT, len(header_bytes)))
    buffer.write(header_bytes)
    for name in header["arrays"]:
        array_buffer = io.BytesIO()
        np.save(array_buffer, np.ascontiguousarray(message.arrays[name]),
                allow_pickle=False)
        payload = array_buffer.getvalue()
        buffer.write(struct.pack(_LENGTH_FORMAT, len(payload)))
        buffer.write(payload)
    return zlib.compress(buffer.getvalue(), compress_level)


def deserialize_message(blob: bytes) -> Message:
    """Decode bytes produced by :func:`serialize_message`."""
    raw = zlib.decompress(blob)
    view = io.BytesIO(raw)
    (header_len,) = struct.unpack(_LENGTH_FORMAT, view.read(_LENGTH_SIZE))
    header = json.loads(view.read(header_len).decode("utf-8"))
    arrays: Dict[str, np.ndarray] = {}
    for name in header["arrays"]:
        (size,) = struct.unpack(_LENGTH_FORMAT, view.read(_LENGTH_SIZE))
        arrays[name] = np.load(io.BytesIO(view.read(size)), allow_pickle=False)
    return Message(kind=header["kind"], frame_id=header["frame_id"],
                   arrays=arrays, meta=header["meta"],
                   batch_index=header.get("batch_index"))


def send_payload(sock: socket.socket, blob: bytes) -> int:
    """Send an already-serialized message blob; returns bytes sent.

    Lets callers serialize inside their own error handling (serialization
    failures must not be conflated with connection failures) and then ship
    the frame atomically.
    """
    sock.sendall(struct.pack(_LENGTH_FORMAT, len(blob)) + blob)
    return len(blob) + _LENGTH_SIZE


def send_message(sock: socket.socket, message: Message) -> int:
    """Send one framed message over a connected socket; returns bytes sent."""
    return send_payload(sock, serialize_message(message))


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    """Read exactly ``size`` bytes.

    Returns ``None`` when the peer closed before sending *any* byte (a clean
    end of stream) and raises :class:`ConnectionError` when the stream ends
    part-way through — the two cases must stay distinguishable so a dropped
    frame is never mistaken for an orderly shutdown.
    """
    chunks = []
    received = 0
    while received < size:
        chunk = sock.recv(size - received)
        if not chunk:
            if received == 0:
                return None
            raise ConnectionError(
                f"connection closed mid-frame: received {received} of "
                f"{size} expected bytes")
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Message]:
    """Receive one framed message.

    Returns ``None`` on a clean peer close (the stream ended on a frame
    boundary) and raises :class:`ConnectionError` when the stream is
    truncated mid-frame — a length prefix or payload cut short by a dying
    peer must surface as an error instead of silently dropping the frame.
    """
    prefix = _recv_exact(sock, _LENGTH_SIZE)
    if prefix is None:
        return None
    (length,) = struct.unpack(_LENGTH_FORMAT, prefix)
    blob = _recv_exact(sock, length)
    if blob is None:
        raise ConnectionError(
            f"connection closed mid-frame: length prefix announced {length} "
            "bytes but no payload followed")
    message = deserialize_message(blob)
    message.wire_bytes = length + _LENGTH_SIZE
    return message


def compressed_size(arrays: Dict[str, np.ndarray], compress_level: int = 6) -> int:
    """Size in bytes of a frame holding ``arrays`` after compression.

    Useful for validating the simulator's compression-ratio assumption
    against the real wire format.
    """
    return len(serialize_message(Message(kind="frame", arrays=dict(arrays)),
                                 compress_level))
