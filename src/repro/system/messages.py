"""Wire format of the co-inference engine.

Intermediate GNN states are exchanged between the device and the edge as
length-prefixed messages containing named numpy arrays plus a small JSON
metadata header.  Two framings share the wire:

``"zlib"`` (default)
    The paper-faithful format: the header and ``np.save``-encoded arrays are
    zlib-compressed as one blob, mirroring the paper's engine, which is
    built on Python sockets and compresses all transmitted data with zlib.

``"raw"``
    A zero-copy-receive framing for serving deployments where link
    bandwidth is not the bottleneck: a 2-byte magic/version, the JSON
    header (now carrying each array's dtype and shape) and the arrays' raw
    C-contiguous bytes (``ndarray.tobytes``).  The send side does one plain
    memory copy per array (``tobytes``) but no compression or ``np.save``
    encoding pass; the receive side reconstructs every array with
    ``np.frombuffer`` directly over the received payload — zero per-array
    copies on receive.

The two formats are distinguished by their first byte (zlib streams always
begin with ``0x78``; raw frames begin with the reserved magic ``0xAB``
followed by a version byte), so :func:`deserialize_message` — and therefore
every receiver — handles both transparently.  The raw format is versioned
for wire compatibility: bumping the layout bumps the version byte, and an
unknown version raises instead of desyncing the stream.
"""

from __future__ import annotations

import io
import json
import math
import socket
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

#: 4-byte big-endian unsigned length prefix.
_LENGTH_FORMAT = ">I"
_LENGTH_SIZE = struct.calcsize(_LENGTH_FORMAT)

#: Upper bound on a single framed message accepted off a socket.  The
#: length prefix is peer-controlled, so the receiver must never allocate
#: the declared size blindly — a 4-byte prefix can claim up to 4 GiB and
#: ``socket.recv`` allocates its buffer up front.  256 MiB is far above
#: any real frame (the largest benchmarked raw frames are single-digit
#: megabytes) while keeping a malicious or corrupted prefix harmless.
MAX_MESSAGE_BYTES = 256 * 1024 * 1024

#: Wire framing identifiers (``Message.wire_format`` / ``serialize_message``).
WIRE_FORMAT_ZLIB = "zlib"
WIRE_FORMAT_RAW = "raw"
WIRE_FORMATS = (WIRE_FORMAT_ZLIB, WIRE_FORMAT_RAW)

# ----------------------------------------------------------------------
# Base protocol kinds
# ----------------------------------------------------------------------
# Every module that produces or dispatches a ``Message.kind`` must use
# these named constants — never the string literal — so a typo'd kind
# cannot compile and silently never match on the other end of the socket
# (enforced by the ``message-kinds`` checker of ``tools/reprolint``).

#: Client -> server session opener (``meta`` selects model/options); the
#: server answers with a ``hello`` ack carrying the serving table.
KIND_HELLO = "hello"
#: A request envelope: input arrays + metadata for one inference frame.
KIND_FRAME = "frame"
#: Server -> client reply carrying the frame's output arrays.
KIND_RESULT = "result"
#: Server -> client (or shard/node -> parent) failure reply;
#: ``meta["error"]`` describes what went wrong.
KIND_ERROR = "error"
#: Orderly end of a session/worker: the peer stops reading after this.
KIND_STOP = "stop"

#: Server -> client reply kind for a frame shed by admission control: the
#: frame was *not* executed (queue bound hit, fairness share exceeded, or
#: its deadline already passed).  The reply's ``meta`` carries the
#: rejection ``"reason"`` and a ``"retry_after_ms"`` hint — an explicit
#: answer, so a shed frame never looks like a timeout to the client.
KIND_REJECTED = "rejected"

#: Every kind of the base socket protocol (shard/node control kinds extend
#: this set — see ``SHARD_CONTROL_KINDS`` / ``NODE_CONTROL_KINDS``).
BASE_KINDS = (KIND_HELLO, KIND_FRAME, KIND_RESULT, KIND_ERROR, KIND_STOP,
              KIND_REJECTED)

#: Frame metadata key: relative per-frame deadline in milliseconds.  The
#: server stamps an absolute expiry at admission and never executes a
#: frame whose deadline passed while it queued (see
#: :mod:`repro.system.scheduler`).
DEADLINE_MS_META_KEY = "deadline_ms"
#: Frame metadata key: priority class — an integer level (0 = highest) or
#: a symbolic name resolved through ``QosPolicy.priority_map``.
PRIORITY_META_KEY = "priority"
#: ``rejected``-reply metadata key: suggested client backoff in ms.
RETRY_AFTER_MS_META_KEY = "retry_after_ms"
#: ``rejected``-reply metadata key: why the frame was shed
#: (``"capacity"`` / ``"fairness"`` / ``"deadline"``).
REJECT_REASON_META_KEY = "reason"

#: First byte of a raw frame.  zlib streams produced by ``zlib.compress``
#: always start with ``0x78`` (deflate, 32K window), so this magic makes the
#: two framings self-describing on receive.
_RAW_MAGIC = 0xAB
#: Current raw-format layout version.
_RAW_VERSION = 1

# ----------------------------------------------------------------------
# Shard control envelope (process-parallel serving)
# ----------------------------------------------------------------------
# The shard transport (:mod:`repro.runtime.shard`) moves whole ``Message``
# envelopes across the process boundary in the *raw* framing above — the
# same versioned layout the socket wire speaks, so a frame crosses into a
# shard with zero serialization work beyond the JSON header (no pickling,
# no re-encoding; array payloads are straight memcpys).  Beyond the socket
# kinds (``"frame"``/``"result"``/``"error"``/``"stop"``), shards speak the
# control kinds below; ``Message.frame_id`` carries the correlation id that
# matches responses to requests, and ``Message.batch_index`` positions a
# reply within a shard-executed micro-batch.

#: Parent -> shard: header announcing ``meta["count"]`` coalesced frames for
#: zoo entry ``meta["entry"]``, immediately followed by that many ``"frame"``
#: envelopes sharing the header's correlation id.
SHARD_KIND_BATCH = "batch"
#: Parent -> shard: replicate a published snapshot (``meta["zoo"]`` holds
#: the JSON zoo payload, ``meta["version"]`` the parent's snapshot version).
SHARD_KIND_PUBLISH = "publish"
#: Shard -> parent: acknowledgement that ``meta["version"]`` is installed.
SHARD_KIND_PUBLISHED = "published"
#: Shard -> parent: the worker built its initial snapshot and is serving.
SHARD_KIND_READY = "ready"
#: Every control kind the shard protocol adds on top of the socket kinds.
SHARD_CONTROL_KINDS = (SHARD_KIND_BATCH, SHARD_KIND_PUBLISH,
                       SHARD_KIND_PUBLISHED, SHARD_KIND_READY)

# ----------------------------------------------------------------------
# Cluster node control envelope (multi-node serving tier)
# ----------------------------------------------------------------------
# Replica nodes (:mod:`repro.runtime.node`) speak the shard protocol above
# over TCP — same envelopes, same correlation — plus the heartbeat pair
# below, which the cluster router uses to detect partitioned/wedged nodes
# (a dead TCP peer surfaces as a socket error, but a *partitioned* one just
# goes silent).

#: Router -> node: heartbeat probe; ``frame_id`` carries the correlation id.
NODE_KIND_PING = "ping"
#: Node -> router: heartbeat answer, echoing the probe's correlation id;
#: ``meta`` reports the node's installed snapshot ``version``, served
#: ``frames`` count and ``pid``.
NODE_KIND_PONG = "pong"
#: Every control kind the node protocol adds on top of the shard kinds.
NODE_CONTROL_KINDS = (NODE_KIND_PING, NODE_KIND_PONG)


@dataclass
class Message:
    """One unit of device↔edge communication.

    Attributes
    ----------
    kind:
        Message type: ``"hello"`` (connection handshake: the client announces
        its name and runtime conditions, the server acknowledges with the
        available models and, when a dispatcher is attached, the entry chosen
        for those conditions), ``"frame"`` (intermediate state), ``"result"``
        (classifier output), ``"error"`` (edge-side execution failure,
        carrying the remote traceback in ``meta``), ``"rejected"`` (frame
        shed by admission control — never executed; ``meta`` carries the
        reason and a ``retry_after_ms`` hint), ``"stop"`` (end of stream).
    frame_id:
        Sequence number of the inference frame this message belongs to.
    arrays:
        Named numpy arrays (node features, batch vector, edge index, ...).
    meta:
        Small JSON-serializable metadata (e.g. which segment to execute).
    batch_index:
        Position of this frame inside the micro-batch the edge coalesced it
        into (``None`` for per-frame serving).  Carried on ``"result"`` and
        ``"error"`` replies so a failure isolates to the one offending frame
        of a batch instead of discrediting the whole batch, and so clients
        can observe the realized coalescing.
    wire_format:
        Framing this message was received in (or should be sent in when no
        explicit format is passed to :func:`serialize_message`): ``"zlib"``
        or ``"raw"``.  Servers reply in the format a request arrived in, so
        one listener serves clients of either framing.
    wire_bytes:
        Size of the encoded frame as received from the socket; filled in
        by :func:`recv_message` (0 for locally constructed messages).
    """

    kind: str
    frame_id: int = 0
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    meta: Dict = field(default_factory=dict)
    batch_index: Optional[int] = None
    wire_format: str = WIRE_FORMAT_ZLIB
    wire_bytes: int = 0


def _header_dict(message: Message) -> Dict:
    header = {
        "kind": message.kind,
        "frame_id": message.frame_id,
        "meta": message.meta,
    }
    if message.batch_index is not None:
        header["batch_index"] = int(message.batch_index)
    return header


def serialize_message(message: Message, compress_level: int = 6,
                      wire_format: Optional[str] = None) -> bytes:
    """Encode a message to wire bytes (without the length prefix).

    ``wire_format`` selects the framing; when ``None`` the message's own
    ``wire_format`` attribute decides, so replies naturally mirror the
    framing their request arrived in.  ``compress_level`` only applies to
    the zlib framing.
    """
    wire_format = message.wire_format if wire_format is None else wire_format
    if wire_format == WIRE_FORMAT_ZLIB:
        return _serialize_zlib(message, compress_level)
    if wire_format == WIRE_FORMAT_RAW:
        return _serialize_raw(message)
    raise ValueError(f"unknown wire format {wire_format!r} "
                     f"(expected one of {WIRE_FORMATS})")


def _serialize_zlib(message: Message, compress_level: int) -> bytes:
    buffer = io.BytesIO()
    header = _header_dict(message)
    header["arrays"] = list(message.arrays.keys())
    header_bytes = json.dumps(header).encode("utf-8")
    buffer.write(struct.pack(_LENGTH_FORMAT, len(header_bytes)))
    buffer.write(header_bytes)
    for name in header["arrays"]:
        array_buffer = io.BytesIO()
        np.save(array_buffer, np.ascontiguousarray(message.arrays[name]),
                allow_pickle=False)
        payload = array_buffer.getvalue()
        buffer.write(struct.pack(_LENGTH_FORMAT, len(payload)))
        buffer.write(payload)
    return zlib.compress(buffer.getvalue(), compress_level)


def _serialize_raw(message: Message) -> bytes:
    header = _header_dict(message)
    chunks = []
    specs = []
    for name, array in message.arrays.items():
        array = np.ascontiguousarray(array)
        specs.append([name, array.dtype.str, list(array.shape)])
        # A memoryview, not tobytes(): join below then performs the single
        # unavoidable copy of each payload straight into the frame.
        chunks.append(memoryview(array))
    header["arrays"] = specs
    header_bytes = json.dumps(header).encode("utf-8")
    return b"".join([bytes((_RAW_MAGIC, _RAW_VERSION)),
                     struct.pack(_LENGTH_FORMAT, len(header_bytes)),
                     header_bytes] + chunks)


def deserialize_message(blob: bytes) -> Message:
    """Decode bytes produced by :func:`serialize_message` (either framing).

    The framing is detected from the first byte, so one receive path serves
    zlib and raw peers alike; the decoded message records which framing it
    arrived in (``wire_format``).

    Any malformed input — bad magic, a lying header, truncated payload,
    undecodable compression — raises a clean :class:`ValueError`.  Decoding
    runs on bytes a remote peer controls, so the failure mode must be a
    single well-known exception the caller can map onto "drop this peer",
    never a hang or an arbitrary library error escaping the transport.
    """
    try:
        if blob[:1] == bytes((_RAW_MAGIC,)):
            return _deserialize_raw(blob)
        return _deserialize_zlib(blob)
    except ValueError:
        raise
    except (zlib.error, struct.error, KeyError, IndexError, TypeError,
            EOFError, OSError) as exc:
        raise ValueError(f"undecodable message: {type(exc).__name__}: "
                         f"{exc}") from exc


def _deserialize_zlib(blob: bytes) -> Message:
    raw = zlib.decompress(blob)
    view = io.BytesIO(raw)
    (header_len,) = struct.unpack(_LENGTH_FORMAT, view.read(_LENGTH_SIZE))
    header = json.loads(view.read(header_len).decode("utf-8"))
    arrays: Dict[str, np.ndarray] = {}
    for name in header["arrays"]:
        (size,) = struct.unpack(_LENGTH_FORMAT, view.read(_LENGTH_SIZE))
        arrays[name] = np.load(io.BytesIO(view.read(size)), allow_pickle=False)
    return Message(kind=header["kind"], frame_id=header["frame_id"],
                   arrays=arrays, meta=header["meta"],
                   batch_index=header.get("batch_index"),
                   wire_format=WIRE_FORMAT_ZLIB)


def _deserialize_raw(blob: bytes) -> Message:
    version = blob[1]
    if version != _RAW_VERSION:
        raise ValueError(f"unsupported raw wire-format version {version} "
                         f"(this build speaks version {_RAW_VERSION})")
    offset = 2
    (header_len,) = struct.unpack_from(_LENGTH_FORMAT, blob, offset)
    offset += _LENGTH_SIZE
    if offset + header_len > len(blob):
        raise ValueError(
            f"raw frame header truncated: header length {header_len} "
            f"exceeds the {len(blob) - offset} bytes received after it")
    header = json.loads(blob[offset:offset + header_len].decode("utf-8"))
    offset += header_len
    arrays: Dict[str, np.ndarray] = {}
    for name, dtype_str, shape in header["arrays"]:
        dtype = np.dtype(dtype_str)
        # The header is peer-controlled: every shape/size claim is checked
        # against the bytes actually received before numpy touches them —
        # a lying header must fail as a clean ValueError, and a negative
        # dimension must never reach np.frombuffer (count=-1 means "read
        # everything", silently yielding an array the sender never sent).
        if not all(isinstance(dim, int) and dim >= 0 for dim in shape):
            raise ValueError(f"raw frame header declares invalid shape "
                             f"{shape!r} for array {name!r}")
        # Unbounded Python ints, not np.prod: a hostile shape like
        # [2**32, 2**33] wraps an int64 product to 0/negative, slipping
        # past the size check below into np.frombuffer (where a negative
        # count means "read the whole buffer").
        count = math.prod(shape)
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(blob):
            raise ValueError(
                f"raw frame payload truncated: array {name!r} declares "
                f"{nbytes} bytes but only {len(blob) - offset} remain")
        # Zero-copy: the array is a read-only view over the received bytes.
        arrays[name] = np.frombuffer(blob, dtype=dtype, count=count,
                                     offset=offset).reshape(shape)
        offset += nbytes
    return Message(kind=header["kind"], frame_id=header["frame_id"],
                   arrays=arrays, meta=header["meta"],
                   batch_index=header.get("batch_index"),
                   wire_format=WIRE_FORMAT_RAW)


def send_payload(sock: socket.socket, blob: bytes) -> int:
    """Send an already-serialized message blob; returns bytes sent.

    Lets callers serialize inside their own error handling (serialization
    failures must not be conflated with connection failures) and then ship
    the frame atomically.
    """
    sock.sendall(struct.pack(_LENGTH_FORMAT, len(blob)) + blob)
    return len(blob) + _LENGTH_SIZE


def send_message(sock: socket.socket, message: Message,
                 wire_format: Optional[str] = None) -> int:
    """Send one framed message over a connected socket; returns bytes sent."""
    return send_payload(sock, serialize_message(message,
                                                wire_format=wire_format))


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    """Read exactly ``size`` bytes.

    Returns ``None`` when the peer closed before sending *any* byte (a clean
    end of stream) and raises :class:`ConnectionError` when the stream ends
    part-way through — the two cases must stay distinguishable so a dropped
    frame is never mistaken for an orderly shutdown.
    """
    chunks = []
    received = 0
    while received < size:
        chunk = sock.recv(size - received)
        if not chunk:
            if received == 0:
                return None
            raise ConnectionError(
                f"connection closed mid-frame: received {received} of "
                f"{size} expected bytes")
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket,
                 max_bytes: int = MAX_MESSAGE_BYTES) -> Optional[Message]:
    """Receive one framed message.

    Returns ``None`` on a clean peer close (the stream ended on a frame
    boundary) and raises :class:`ConnectionError` when the stream is
    truncated mid-frame — a length prefix or payload cut short by a dying
    peer must surface as an error instead of silently dropping the frame.
    A length prefix above ``max_bytes`` also raises
    :class:`ConnectionError` *before* any allocation: the prefix is
    peer-controlled and the stream beyond a rejected prefix is
    unparseable anyway.
    """
    prefix = _recv_exact(sock, _LENGTH_SIZE)
    if prefix is None:
        return None
    (length,) = struct.unpack(_LENGTH_FORMAT, prefix)
    if length > max_bytes:
        raise ConnectionError(
            f"length prefix announced {length} bytes, above the "
            f"{max_bytes}-byte message cap — corrupted stream or "
            "misbehaving peer")
    blob = _recv_exact(sock, length)
    if blob is None:
        raise ConnectionError(
            f"connection closed mid-frame: length prefix announced {length} "
            "bytes but no payload followed")
    message = deserialize_message(blob)
    message.wire_bytes = length + _LENGTH_SIZE
    return message


def compressed_size(arrays: Dict[str, np.ndarray], compress_level: int = 6,
                    wire_format: str = WIRE_FORMAT_ZLIB) -> int:
    """Size in bytes of a frame holding ``arrays`` in the given framing.

    Deliberately *not* an independent estimate: the size is measured by
    running the one true serializer (:func:`serialize_message`), so it can
    never drift from what actually goes on the wire — for either framing.
    Useful for validating the simulator's compression-ratio assumption
    against the real wire format and for sizing raw-framing deployments.
    """
    return len(serialize_message(Message(kind=KIND_FRAME, arrays=dict(arrays)),
                                 compress_level, wire_format=wire_format))
