"""Scheduling/QoS layer of the edge server: admission control.

This stage sits between the transport frontends and the execution tier
(:class:`~repro.system.engine.MicroBatcher` / in-process callables /
:class:`~repro.serving.sharding.ShardPool`).  Every frame passes through
:meth:`Scheduler.admit` before it may queue for compute; the scheduler
answers with either an :class:`Admission` (carrying the frame's resolved
priority and absolute expiry) or a :class:`Rejection`, which the engine
turns into a wire-level ``"rejected"`` reply carrying ``retry_after_ms`` —
load is *shed* with an explicit answer instead of absorbed as unbounded
queueing.

Four QoS mechanisms compose, all configured by one frozen
:class:`QosPolicy` (surfaced to deployments as
:class:`repro.serving.QosConfig`):

**Bounded queues** (``max_queue_depth``)
    Frames admitted but not yet executing count against a global bound;
    at the bound, new frames are rejected with reason ``"capacity"``.
    ``None`` (the default) preserves the historical unbounded behavior.

**Deadlines** (``deadline_ms`` frame metadata / ``default_deadline_ms``)
    A frame carrying a relative deadline is stamped with an absolute
    expiry at admission.  Expired frames are *never executed*: the engine
    re-checks the expiry when the frame reaches the front of the queue
    and sheds it with reason ``"deadline"`` — a result that would arrive
    too late to matter should not burn an engine call.

**Priority classes** (``priority`` frame metadata / ``priority_map``)
    Higher priority levels see the *full* queue bound; each level below
    the top sees half the bound of the level above (level ``p`` is
    admitted while the queue holds fewer than ``max_queue_depth >> p``
    frames).  Under saturation, low-priority traffic is shed first while
    high-priority frames still find room.

**Per-client fairness** (``fairness``)
    With the queue bounded, no single client may hold more than its
    share — ``max_queue_depth / active_clients`` — of the queue.  A
    firehose client is rejected with reason ``"fairness"`` once it owns
    its share, leaving headroom for trickle clients; clients count as
    active while they have frames queued or sent traffic within
    ``fairness_window_s``.

The engine owns the *replies*; the scheduler owns the *decisions* and the
shed/delay accounting (:meth:`Scheduler.snapshot` feeds
``EdgeServerStats.frames_shed`` / ``shed_by_reason`` and the queue-delay
percentiles).  Execution tiers deeper in the stack signal shedding
upward with :class:`FrameExpiredError` (deadline passed) and
:class:`BackpressureError` (a full shard ring — shed before the ring,
not after): both are translated into ``rejected`` replies by the engine.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

from .messages import DEADLINE_MS_META_KEY, PRIORITY_META_KEY

#: Wire-visible rejection reasons (``rejected`` reply ``meta["reason"]``).
REJECT_REASON_CAPACITY = "capacity"
REJECT_REASON_FAIRNESS = "fairness"
REJECT_REASON_DEADLINE = "deadline"

#: Queue-delay samples retained for the p50/p99 percentiles — bounded so a
#: long-running server cannot grow the sample buffer without limit.
_DELAY_SAMPLE_LIMIT = 8192


class FrameExpiredError(RuntimeError):
    """A frame's deadline passed before it could execute.

    Raised by execution tiers (e.g. the shard router) that discover the
    expiry after admission; the engine sheds the frame with a clean
    ``rejected`` reply instead of executing it or calling it an error.
    """


class BackpressureError(RuntimeError):
    """An execution tier refused a frame because it is saturated.

    Raised by :class:`~repro.serving.sharding.ShardPool` when a frame
    cannot even *enter* a shard's request ring within the send bound —
    shedding before the ring instead of queueing blindly against it.
    The engine replies ``rejected`` with reason ``"capacity"``.
    """


@dataclass(frozen=True)
class QosPolicy:
    """Frozen admission-control policy of one :class:`Scheduler`.

    Parameters
    ----------
    max_queue_depth:
        Global bound on admitted-but-not-executing frames; ``None``
        (default) keeps queues unbounded — the historical behavior.
    default_deadline_ms:
        Deadline applied to frames that do not carry their own
        ``meta["deadline_ms"]``; ``None`` means no implicit deadline.
    retry_after_ms:
        Hint carried in every ``rejected`` reply: how long a well-behaved
        client should wait before retrying.
    priority_map:
        Maps symbolic ``meta["priority"]`` strings (e.g. ``"batch"``) to
        integer levels.  Level 0 is the highest class (full queue bound);
        each level above 0 halves the bound it is admitted under.
    default_priority:
        Level assigned to frames without a ``priority`` tag.
    fairness:
        Enforce the per-client queue share (only meaningful with a
        bounded queue).
    fairness_window_s:
        How long after its last frame a client still counts as active
        when computing shares.
    """

    max_queue_depth: Optional[int] = None
    default_deadline_ms: Optional[float] = None
    retry_after_ms: float = 50.0
    priority_map: Mapping[str, int] = field(default_factory=dict)
    default_priority: int = 0
    fairness: bool = True
    fairness_window_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1 (or None "
                             "for unbounded)")
        if (self.default_deadline_ms is not None
                and self.default_deadline_ms <= 0):
            raise ValueError("default_deadline_ms must be positive (or None)")
        if self.retry_after_ms < 0:
            raise ValueError("retry_after_ms must be non-negative")
        for name, level in dict(self.priority_map).items():
            if not isinstance(name, str):
                raise ValueError(f"priority_map keys must be strings, got "
                                 f"{name!r}")
            if isinstance(level, bool) or not isinstance(level, int) or level < 0:
                raise ValueError(f"priority_map[{name!r}] must be a "
                                 f"non-negative integer, got {level!r}")
        if (isinstance(self.default_priority, bool)
                or not isinstance(self.default_priority, int)
                or self.default_priority < 0):
            raise ValueError("default_priority must be a non-negative "
                             f"integer, got {self.default_priority!r}")
        if self.fairness_window_s <= 0:
            raise ValueError("fairness_window_s must be positive")

    @property
    def bounded(self) -> bool:
        """True when this policy can actually shed on queue depth."""
        return self.max_queue_depth is not None


@dataclass(frozen=True)
class Admission:
    """A frame may proceed: its resolved priority and absolute expiry."""

    #: ``time.monotonic()`` moment after which the frame must not execute
    #: (``None`` = no deadline).
    expires_at: Optional[float]
    priority: int


@dataclass(frozen=True)
class Rejection:
    """A frame is shed: the wire-visible reason and the retry hint."""

    reason: str
    retry_after_ms: float


@dataclass(frozen=True)
class SchedulerSnapshot:
    """Counters of one :class:`Scheduler` (feeds ``EdgeServerStats``)."""

    frames_shed: int
    shed_by_reason: Dict[str, int]
    queued: int
    queue_delay_p50_s: float
    queue_delay_p99_s: float


def _percentile(samples: Tuple[float, ...], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sorted tuple."""
    if not samples:
        return 0.0
    index = min(len(samples) - 1, int(fraction * len(samples)))
    return samples[index]


class Scheduler:
    """Admission control between the frontends and the execution tier.

    One scheduler guards one :class:`~repro.system.engine.EdgeServer`.
    The engine calls :meth:`admit` for every frame *before* queueing it
    (on the micro-batcher or the direct path), :meth:`release` when the
    frame leaves the queue for execution — or is shed at dispatch — and
    :meth:`record_shed` for sheds the scheduler could not see at admit
    time (dispatch-time deadline expiry, shard backpressure).  All
    methods are thread-safe; decisions take one short critical section.
    """

    def __init__(self, policy: Optional[QosPolicy] = None) -> None:
        self.policy = policy or QosPolicy()
        self._lock = threading.Lock()
        self._queued_total = 0
        self._queued_by_client: "Counter[object]" = Counter()
        #: client -> last admit attempt (monotonic), for the activity window.
        self._last_seen: Dict[object, float] = {}
        self._frames_shed = 0
        self._shed_by_reason: "Counter[str]" = Counter()
        self._delay_samples: "deque[float]" = deque(maxlen=_DELAY_SAMPLE_LIMIT)

    # ------------------------------------------------------------------
    def resolve_priority(self, meta: Mapping) -> int:
        """Priority level of a frame from its metadata (0 = highest)."""
        raw = meta.get(PRIORITY_META_KEY)
        if raw is None:
            return self.policy.default_priority
        if isinstance(raw, str):
            return self.policy.priority_map.get(raw,
                                                self.policy.default_priority)
        if isinstance(raw, bool):
            return self.policy.default_priority
        if isinstance(raw, int):
            return max(0, raw)
        if isinstance(raw, float) and raw.is_integer():
            return max(0, int(raw))
        return self.policy.default_priority

    def admit(self, client: object, meta: Mapping,
              now: Optional[float] = None) -> Union[Admission, Rejection]:
        """Decide one frame: admit (with expiry/priority) or shed.

        ``client`` keys the fairness accounting — the engine passes the
        session id, so every connection is one fairness bucket.  An
        admitted frame MUST later be released exactly once.
        """
        policy = self.policy
        if now is None:
            now = time.monotonic()
        priority = self.resolve_priority(meta)
        deadline_ms = meta.get(DEADLINE_MS_META_KEY, policy.default_deadline_ms)
        expires_at: Optional[float] = None
        if deadline_ms is not None:
            try:
                deadline_ms = float(deadline_ms)
            except (TypeError, ValueError):
                deadline_ms = policy.default_deadline_ms
            if deadline_ms is not None:
                if deadline_ms <= 0:
                    # Already hopeless on arrival: shed before queueing.
                    return self._reject(REJECT_REASON_DEADLINE)
                expires_at = now + deadline_ms / 1000.0
        with self._lock:
            self._last_seen[client] = now
            limit = policy.max_queue_depth
            if limit is not None:
                if policy.fairness:
                    share = max(1, limit // max(1, self._active_clients(now)))
                    if self._queued_by_client[client] >= share:
                        return self._reject_locked(REJECT_REASON_FAIRNESS)
                # Priority scaling: level p is admitted under half the
                # bound of level p-1, so low classes shed first.
                effective = max(1, limit >> min(priority, limit.bit_length()))
                if self._queued_total >= effective:
                    return self._reject_locked(REJECT_REASON_CAPACITY)
            self._queued_total += 1
            self._queued_by_client[client] += 1
        return Admission(expires_at=expires_at, priority=priority)

    def _active_clients(self, now: float) -> int:
        """Clients with queued frames or recent traffic (lock held).

        The sliding window keeps a trickle client's share reserved during
        the gaps between its frames — without it, a firehose would refill
        the whole queue the instant the trickle's last frame dispatched.
        """
        window = self.policy.fairness_window_s
        stale = [client for client, seen in self._last_seen.items()
                 if now - seen > window and not self._queued_by_client[client]]
        for client in stale:
            del self._last_seen[client]
            del self._queued_by_client[client]
        return max(1, len(self._last_seen))

    def release(self, client: object, queue_delay_s: Optional[float] = None
                ) -> None:
        """A previously admitted frame left the queue (executes or sheds)."""
        with self._lock:
            if self._queued_total > 0:
                self._queued_total -= 1
            if self._queued_by_client[client] > 0:
                self._queued_by_client[client] -= 1
            if queue_delay_s is not None:
                self._delay_samples.append(queue_delay_s)

    def expired(self, expires_at: Optional[float],
                now: Optional[float] = None) -> bool:
        """Whether an admission's deadline has passed."""
        if expires_at is None:
            return False
        return (time.monotonic() if now is None else now) > expires_at

    def record_shed(self, reason: str) -> None:
        """Book a shed decided outside :meth:`admit` (dispatch time)."""
        with self._lock:
            self._frames_shed += 1
            self._shed_by_reason[reason] += 1

    def _reject(self, reason: str) -> Rejection:
        with self._lock:
            return self._reject_locked(reason)

    def _reject_locked(self, reason: str) -> Rejection:
        self._frames_shed += 1
        self._shed_by_reason[reason] += 1
        return Rejection(reason=reason,
                         retry_after_ms=self.policy.retry_after_ms)

    # ------------------------------------------------------------------
    def snapshot(self) -> SchedulerSnapshot:
        with self._lock:
            samples = tuple(sorted(self._delay_samples))
            return SchedulerSnapshot(
                frames_shed=self._frames_shed,
                shed_by_reason=dict(self._shed_by_reason),
                queued=self._queued_total,
                queue_delay_p50_s=_percentile(samples, 0.50),
                queue_delay_p99_s=_percentile(samples, 0.99))
