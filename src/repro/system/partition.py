"""Partition-point utilities for architecture-mapping *separation* baselines.

The paper contrasts GCoDE's joint architecture-mapping search with the
conventional approach of taking a fixed architecture and picking the best
split point afterwards (BRANCHY-GNN, "HGNAS + Partition", Fig. 4).  This
module enumerates single-split deployments of a fixed operation sequence and
selects the best one under the simulator — exactly that baseline strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..gnn.operations import OpSpec, OpType
from ..hardware.workload import DataProfile
from .simulator import CoInferenceSimulator, SystemPerformance


@dataclass
class PartitionResult:
    """One evaluated partition point of a fixed architecture."""

    split_index: int
    label: str
    ops: List[OpSpec]
    performance: SystemPerformance


def insert_partition(ops: Sequence[OpSpec], split_index: int) -> List[OpSpec]:
    """Insert a single Communicate after position ``split_index`` (0-based).

    ``split_index = -1`` produces an Edge-Only style deployment (communicate
    before any computation); ``split_index = len(ops) - 1`` transmits only the
    final classifier input.
    """
    ops = list(ops)
    if not -1 <= split_index < len(ops):
        raise ValueError(f"split index {split_index} out of range for {len(ops)} ops")
    return (ops[:split_index + 1]
            + [OpSpec(OpType.COMMUNICATE, "uplink")]
            + ops[split_index + 1:])


def candidate_partitions(ops: Sequence[OpSpec]) -> List[int]:
    """Sensible split indices: after every operation, plus the all-edge split.

    Splitting *between* a Sample and the Aggregate that consumes its graph is
    allowed (the graph structure is simply part of the transmitted payload),
    matching the partition candidates the paper's Fig. 4 explores.
    """
    return list(range(-1, len(ops)))


def evaluate_partitions(ops: Sequence[OpSpec], profile: DataProfile,
                        simulator: CoInferenceSimulator,
                        classifier_hidden: int = 64) -> List[PartitionResult]:
    """Evaluate every candidate partition point with the simulator."""
    results: List[PartitionResult] = []
    base_ops = [op for op in ops if op.op != OpType.COMMUNICATE]
    for split in candidate_partitions(base_ops):
        if split == -1:
            label = "all-edge"
            partitioned = [OpSpec(OpType.COMMUNICATE, "uplink")] + base_ops
        else:
            label = f"after-{base_ops[split].short_name()}"
            partitioned = insert_partition(base_ops, split)
        perf = simulator.evaluate(partitioned, profile, classifier_hidden)
        results.append(PartitionResult(split_index=split, label=label,
                                       ops=partitioned, performance=perf))
    return results


def best_partition(ops: Sequence[OpSpec], profile: DataProfile,
                   simulator: CoInferenceSimulator,
                   objective: str = "latency",
                   classifier_hidden: int = 64) -> PartitionResult:
    """Best single-split deployment under ``objective`` (latency or energy)."""
    results = evaluate_partitions(ops, profile, simulator, classifier_hidden)
    if objective == "latency":
        key: Callable[[PartitionResult], float] = lambda r: r.performance.latency_ms
    elif objective == "energy":
        key = lambda r: r.performance.device_energy_j
    else:
        raise ValueError("objective must be 'latency' or 'energy'")
    return min(results, key=key)
