"""Transport layer of the edge server: connection frontends.

This module owns everything between the kernel and the serving core —
accepting connections, reading length-prefixed frames off the wire,
decoding them into :class:`~repro.system.messages.Message` envelopes and
writing replies back — and knows nothing about scheduling, batching or
model execution.  ``tools/check_layering.py`` pins that boundary in CI:
the transport may import :mod:`repro.system.messages` and the standard
library, never the scheduler or the executor.

The serving core (an :class:`~repro.system.engine.EdgeServer`) plugs in
through three callbacks::

    core.connection_opened(conn)                  -> None
    core.connection_message(conn, message)        -> Optional[work thunk]
    core.connection_closed(conn, error: str|None) -> None

``connection_message`` does only cheap work inline — handshake replies,
statistics booking, admission control — and returns a zero-argument
callable when the frame needs engine compute.  *Where* that callable runs
is the frontend's decision: the threaded frontend executes it on the
connection's own handler thread (one thread per connection, bounded by
``max_workers`` accept slots), the asyncio frontend hands it to a
``max_workers``-wide compute pool so the event loop never blocks on model
execution.  Replies travel through the :class:`Connection` the frontend
handed to the core — its ``send_bytes`` is thread-safe, so batcher and
compute threads reply directly without going back through the frontend.

Two frontends ship today, selectable via ``EdgeServer(frontend=...)`` /
``ServerConfig(frontend=...)``:

``"threaded"`` (default)
    The original thread-per-connection server.  Simple, and fine up to a
    few hundred connections; beyond that, idle connections each pin a
    thread and an accept slot.

``"async"``
    One asyncio event loop multiplexes every connection (thousands of
    mostly-idle ones cost a read callback each, not a thread each);
    compute is handed to a ``max_workers``-wide thread pool.  The
    semantics of ``max_workers`` therefore shift from "concurrent
    connections" to "concurrent engine calls" — idle connections are no
    longer bounded by it.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Optional, Tuple

from .messages import (_LENGTH_FORMAT, _LENGTH_SIZE, KIND_STOP,
                       MAX_MESSAGE_BYTES, deserialize_message,
                       recv_message, send_payload)

#: Frontend identifiers (``EdgeServer(frontend=...)`` / ``ServerConfig``).
FRONTEND_THREADED = "threaded"
FRONTEND_ASYNC = "async"
FRONTENDS = (FRONTEND_THREADED, FRONTEND_ASYNC)


class Connection:
    """One client connection as seen by the serving core.

    The core never touches sockets or event loops directly: it receives
    decoded messages through its callbacks and replies through
    :meth:`send_bytes`, which frames ``blob`` with the wire's length
    prefix and is safe to call from any thread (batcher threads and
    compute workers reply concurrently with the reader).  A write to a
    connection that is already gone raises :class:`OSError` — exactly
    like a plain socket — so the core's reply bookkeeping (book, write,
    roll back on failure) works identically under every frontend.
    """

    peer: str = ""

    def send_bytes(self, blob: bytes) -> int:
        """Frame and send one serialized message; returns bytes queued."""
        raise NotImplementedError

    def close(self) -> None:
        """Tear the connection down (idempotent, thread-safe)."""
        raise NotImplementedError


class _SocketConnection(Connection):
    """Blocking-socket connection of the threaded frontend."""

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self._sock = sock
        #: Serializes concurrent writers (handler thread vs batcher /
        #: compute threads) so frames never interleave on the wire.
        self._send_lock = threading.Lock()
        self.peer = peer

    def send_bytes(self, blob: bytes) -> int:
        with self._send_lock:
            return send_payload(self._sock, blob)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class ThreadedFrontend:
    """Thread-per-connection frontend (the original ``EdgeServer`` server).

    An accept loop holds a worker slot *before* accepting, so connections
    beyond ``max_workers`` genuinely wait in the kernel's listen backlog
    instead of being accepted and left unanswered; each accepted
    connection gets a handler thread that reads frames and runs the
    core's compute thunks inline.
    """

    def __init__(self, core, host: str, port: int, *, max_workers: int,
                 backlog: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._core = core
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        # A short accept timeout lets the accept loop poll the stop flag;
        # closing a listening socket from another thread is not guaranteed
        # to wake a blocked accept().
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()
        self._accept_thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._slots = threading.BoundedSemaphore(max_workers)
        self._lock = threading.Lock()
        self._connections: Dict[Connection, threading.Thread] = {}

    def start(self) -> None:
        self._accept_thread = threading.Thread(target=self._serve, daemon=True)
        self._accept_thread.start()

    def _serve(self) -> None:
        while not self._stopped.is_set():
            # Bounded worker pool: hold a slot *before* accepting, so
            # excess connections wait in the listen backlog.  The short
            # timeouts keep shutdown from wedging on a full pool.
            if not self._slots.acquire(timeout=0.1):
                continue
            handed_off = False
            try:
                accepted = self._accept()
                if accepted is None:
                    return
                sock, addr = accepted
                sock.settimeout(None)
                connection = _SocketConnection(sock, peer="%s:%d" % addr[:2])
                handler = threading.Thread(target=self._handle,
                                           args=(connection,), daemon=True)
                with self._lock:
                    self._connections[connection] = handler
                handler.start()
                handed_off = True  # the handler releases the slot on exit
            finally:
                if not handed_off:
                    self._slots.release()

    def _accept(self) -> Optional[Tuple[socket.socket, Tuple]]:
        while not self._stopped.is_set():
            try:
                return self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                if self._stopped.is_set():
                    return None  # listener closed by stop()
                # Transient accept failure (fd exhaustion, aborted backlog
                # connection): keep the loop alive — a dead accept thread
                # would leave the server half-dead, serving existing
                # connections while silently refusing new ones.
                time.sleep(0.05)
        return None

    def _handle(self, connection: _SocketConnection) -> None:
        self._core.connection_opened(connection)
        error: Optional[str] = None
        try:
            while not self._stopped.is_set():
                try:
                    message = recv_message(connection._sock)
                except Exception as exc:
                    # Truncated, reset, or undecodable stream — all
                    # unrecoverable for a length-prefixed protocol: drop
                    # the connection but keep the server alive.  A read
                    # failing because stop() tore the socket down is the
                    # shutdown path, not a client error.
                    if not self._stopped.is_set():
                        error = f"{type(exc).__name__}: {exc}"
                    break
                if message is None or message.kind == KIND_STOP:
                    break
                try:
                    work = self._core.connection_message(connection, message)
                    if work is not None:
                        work()
                except OSError:
                    break
        finally:
            self._core.connection_closed(connection, error)
            connection.close()
            with self._lock:
                self._connections.pop(connection, None)
            self._slots.release()

    def stop(self) -> None:
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            live = list(self._connections.items())
        for connection, _handler in live:
            connection.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for _connection, handler in live:
            handler.join(timeout=5.0)


class _AsyncConnection(Connection):
    """Event-loop connection of the asyncio frontend.

    ``send_bytes`` is called from compute/batcher threads: it hops the
    framed payload onto the event loop with ``call_soon_threadsafe``, and
    the loop does the actual non-blocking write.  Each payload is one
    ``write()`` call, so concurrent senders never interleave frames.  The
    returned byte count is the queued size — with an event-loop transport
    the write completes asynchronously, so a connection that dies in
    flight may under-report errors compared to the threaded frontend
    (the core's counters stay approximate, never corrupt).
    """

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 writer: asyncio.StreamWriter, peer: str) -> None:
        self._loop = loop
        self._writer = writer
        self._closed = False
        self.peer = peer

    def send_bytes(self, blob: bytes) -> int:
        if self._closed:
            raise OSError("connection is closed")
        payload = struct.pack(_LENGTH_FORMAT, len(blob)) + blob
        try:
            self._loop.call_soon_threadsafe(self._write, payload)
        except RuntimeError as exc:  # loop already shut down
            raise OSError(f"frontend event loop is gone: {exc}")
        return len(payload)

    def _write(self, payload: bytes) -> None:
        if not self._closed and not self._writer.transport.is_closing():
            self._writer.write(payload)

    def mark_closed(self) -> None:
        """Flag writes as dead (called on the loop when the reader exits)."""
        self._closed = True

    def close(self) -> None:
        self._closed = True
        try:
            self._loop.call_soon_threadsafe(self._close_on_loop)
        except RuntimeError:
            pass

    def _close_on_loop(self) -> None:
        if not self._writer.transport.is_closing():
            self._writer.close()


class AsyncFrontend:
    """Asyncio selector frontend: one event loop, many idle connections.

    The loop thread owns every socket: it accepts, reads length-prefixed
    frames with ``readexactly`` and decodes them; connections therefore
    cost a coroutine each instead of a thread each, so thousands of
    mostly-idle clients are cheap.  Compute thunks returned by the core
    are submitted to a ``max_workers``-wide thread pool — the event loop
    never runs model code — and replies re-enter the loop through
    :meth:`_AsyncConnection.send_bytes`.

    Engine guarantees are unchanged: frames are decoded and delivered to
    the core in arrival order per connection, replies are whole-frame
    atomic, and a connection torn down mid-reply surfaces as ``OSError``
    to the replying thread exactly as a closed socket would.
    """

    def __init__(self, core, host: str, port: int, *, max_workers: int,
                 backlog: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._core = core
        # Bind eagerly so host/port are known before start() — callers
        # (and tests) read server.port right after construction, exactly
        # like the threaded frontend.
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(backlog)
        sock.setblocking(False)
        self._sock = sock
        self.host, self.port = sock.getsockname()
        self._executor = ThreadPoolExecutor(max_workers=max_workers,
                                            thread_name_prefix="edge-compute")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stopping = False

    def start(self) -> None:
        self._thread = threading.Thread(target=self._run_loop, daemon=True,
                                        name="edge-frontend-loop")
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError("async frontend failed to start") \
                from self._startup_error

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._serve_connection, sock=self._sock))
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            # stop() parked a loop.stop(); finish an orderly teardown on
            # the loop thread: cancel every live handler coroutine (their
            # finally blocks run connection_closed) and drain them.
            self._server.close()
            pending = [task for task in asyncio.all_tasks(loop)
                       if not task.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.run_until_complete(self._server.wait_closed())
            loop.close()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        loop = self._loop
        assert loop is not None
        peername = writer.get_extra_info("peername") or ("?", 0)
        connection = _AsyncConnection(loop, writer,
                                      peer="%s:%d" % peername[:2])
        self._core.connection_opened(connection)
        error: Optional[str] = None
        try:
            while True:
                try:
                    prefix = await reader.readexactly(_LENGTH_SIZE)
                    (length,) = struct.unpack(_LENGTH_FORMAT, prefix)
                    if length > MAX_MESSAGE_BYTES:
                        # Same cap recv_message enforces: the prefix is
                        # peer-controlled, so an absurd claim must be
                        # rejected before buffering toward it.
                        error = (f"length prefix announced {length} bytes, "
                                 f"above the {MAX_MESSAGE_BYTES}-byte "
                                 "message cap")
                        break
                    blob = await reader.readexactly(length)
                except asyncio.IncompleteReadError as exc:
                    if exc.partial:
                        # The stream ended inside a frame — the async twin
                        # of recv_message's mid-frame ConnectionError.
                        error = ("connection closed mid-frame: received "
                                 f"{len(exc.partial)} partial bytes")
                    break  # empty partial: clean close on a frame boundary
                try:
                    message = deserialize_message(blob)
                except Exception as exc:
                    error = f"undecodable message: {type(exc).__name__}: {exc}"
                    break
                message.wire_bytes = length + _LENGTH_SIZE
                if message.kind == KIND_STOP:
                    break
                try:
                    work = self._core.connection_message(connection, message)
                except OSError:
                    break
                if work is not None:
                    # Model compute must never run on the event loop: hand
                    # it to the bounded pool; the reply re-enters the loop
                    # through connection.send_bytes.
                    try:
                        self._executor.submit(self._run_work, work)
                    except RuntimeError:  # pool shut down: server stopping
                        break
        except (ConnectionError, OSError) as exc:
            if not self._stopping:  # shutdown teardown is not a client error
                error = f"{type(exc).__name__}: {exc}"
        except asyncio.CancelledError:
            pass  # stop() cancelled us; fall through to cleanup
        finally:
            connection.mark_closed()
            self._core.connection_closed(connection, error)
            try:
                writer.close()
            except Exception:
                pass

    @staticmethod
    def _run_work(work: Callable[[], None]) -> None:
        try:
            work()
        except OSError:
            # The core replies inside work() and already tolerates dead
            # connections; a stray OSError here must not kill the pool
            # thread's usefulness for the next frame.
            pass

    def stop(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(loop.stop)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        # cancel_futures needs 3.9+; compute in flight finishes, queued
        # thunks are dropped (their connections are gone anyway).
        self._executor.shutdown(wait=False, cancel_futures=True)
        try:
            self._sock.close()
        except OSError:
            pass


def create_frontend(kind: str, core, host: str, port: int, *,
                    max_workers: int, backlog: int):
    """Build the frontend named ``kind`` (see :data:`FRONTENDS`)."""
    if kind == FRONTEND_THREADED:
        return ThreadedFrontend(core, host, port, max_workers=max_workers,
                                backlog=backlog)
    if kind == FRONTEND_ASYNC:
        return AsyncFrontend(core, host, port, max_workers=max_workers,
                             backlog=backlog)
    raise ValueError(f"unknown frontend {kind!r} "
                     f"(expected one of {FRONTENDS})")
