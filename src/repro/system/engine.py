"""Pipelined co-inference engine over TCP sockets.

This is the deployment component of GCoDE (Sec. 3.6): the device executes its
segment of the architecture, compresses and ships the intermediate state to
the edge, and — instead of blocking on the reply — immediately starts the
next frame.  Sending and receiving run on separate threads with their own
queues, matching the paper's description.

The engine is agnostic to *what* is executed: the device and edge sides are
plain callables (``device_fn(frame) -> (arrays, meta)`` and
``edge_fn(arrays, meta) -> (arrays, meta)``), normally produced by
:func:`repro.core.executor.split_callables`.  In this reproduction both ends
run on localhost, which exercises the full code path (framing, compression,
threading, pipelining) even though the physical link is loopback.

Multi-client serving
--------------------
One :class:`EdgeServer` serves many :class:`DeviceClient` connections
concurrently: an accept loop hands each connection to its own handler thread,
bounded by a worker pool of ``max_workers`` slots.  Every connection is
tracked as a :class:`ServingSession` (frames, bytes, edge service time,
errors) and :meth:`EdgeServer.stats` aggregates the sessions into an
:class:`EdgeServerStats` snapshot — the serving-side counterpart of the
client's :class:`PipelineStats`.

The server can also hold several edge callables at once (``edge_fns``, keyed
by model name) and pick one per request: a frame's metadata may name the
model directly (``meta["model"]``) or carry runtime conditions
(``meta["conditions"]``) that an injected ``selector`` — typically
``RuntimeDispatcher.select_for_meta`` — maps to a zoo entry.  Clients
announce themselves with a ``"hello"`` handshake; when the hello carries
conditions the server answers with the chosen model name so the device can
run the matching device segment.  Edge-side failures travel back to the
offending client as ``"error"`` messages (with the remote traceback) instead
of killing the connection.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
import traceback
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .messages import (Message, recv_message, send_message, send_payload,
                       serialize_message)

ArrayDict = Dict[str, np.ndarray]
DeviceFn = Callable[[object], Tuple[ArrayDict, Dict]]
EdgeFn = Callable[[ArrayDict, Dict], Tuple[ArrayDict, Dict]]
#: Maps frame/hello metadata to the name of the edge callable to run.
SelectorFn = Callable[[Dict], Optional[str]]

#: Model-name bucket used for frames served by the default ``edge_fn``.
DEFAULT_MODEL = "default"

#: Closed sessions retained for per-session inspection; older closed sessions
#: are folded into aggregate counters so a long-running server that accepts
#: one connection per request stays memory-bounded.
SESSION_LOG_LIMIT = 1024


@dataclass
class FrameResult:
    """Outcome of one inference frame processed through the engine."""

    frame_id: int
    arrays: ArrayDict
    meta: Dict
    submitted_at: float
    completed_at: float

    @property
    def latency_s(self) -> float:
        return self.completed_at - self.submitted_at


@dataclass
class PipelineStats:
    """Aggregate statistics of a pipelined co-inference run."""

    num_frames: int
    wall_time_s: float
    mean_latency_s: float
    bytes_sent: int
    bytes_received: int

    @property
    def throughput_fps(self) -> float:
        return self.num_frames / self.wall_time_s if self.wall_time_s > 0 else 0.0


@dataclass
class ServingSession:
    """Edge-side record of one client connection."""

    session_id: int
    peer: str
    client_name: str = ""
    connected_at: float = 0.0
    closed_at: Optional[float] = None
    frames: int = 0
    errors: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    #: Cumulative time spent inside the edge callables for this client.
    service_time_s: float = 0.0
    frames_by_model: "Counter[str]" = field(default_factory=Counter)

    @property
    def active(self) -> bool:
        return self.closed_at is None

    @property
    def duration_s(self) -> float:
        end = self.closed_at if self.closed_at is not None else time.perf_counter()
        return end - self.connected_at

    @property
    def mean_service_time_s(self) -> float:
        return self.service_time_s / self.frames if self.frames else 0.0


@dataclass
class EdgeServerStats:
    """Aggregate serving statistics across all sessions of an edge server."""

    num_sessions: int
    active_sessions: int
    frames_processed: int
    errors: int
    bytes_received: int
    bytes_sent: int
    mean_service_time_s: float
    frames_by_model: Dict[str, int]
    wall_time_s: float
    sessions: List[ServingSession]

    @property
    def throughput_fps(self) -> float:
        """Aggregate frames per second since the server started."""
        return self.frames_processed / self.wall_time_s if self.wall_time_s > 0 else 0.0


class EdgeServer:
    """Edge-side runtime: accepts frames, runs edge callables, returns results.

    Parameters
    ----------
    edge_fn:
        Default edge callable, used for frames that do not name a model.
        Optional when ``edge_fns`` is given (the first entry then serves as
        the default).
    edge_fns:
        Named edge callables for multi-model serving; a frame selects one via
        ``meta["model"]`` or through ``selector``.
    selector:
        Maps frame/hello metadata to a model name (e.g.
        ``RuntimeDispatcher.select_for_meta``).  Consulted when the metadata
        does not name a model explicitly.
    max_workers:
        Upper bound on concurrently served connections; further connections
        queue in the listen backlog until a handler slot frees up.
    session_log_limit:
        How many closed sessions to keep individually inspectable; older
        closed sessions are folded into the aggregate statistics.
    """

    def __init__(self, edge_fn: Optional[EdgeFn] = None, host: str = "127.0.0.1",
                 port: int = 0, *, edge_fns: Optional[Dict[str, EdgeFn]] = None,
                 selector: Optional[SelectorFn] = None, max_workers: int = 8,
                 backlog: int = 32,
                 session_log_limit: int = SESSION_LOG_LIMIT) -> None:
        if edge_fn is None and not edge_fns:
            raise ValueError("EdgeServer needs an edge_fn or a non-empty edge_fns")
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if edge_fn is not None and edge_fns and DEFAULT_MODEL in edge_fns:
            raise ValueError(
                f"edge_fns may not use the reserved name {DEFAULT_MODEL!r} "
                "when an explicit default edge_fn is also given — the entry "
                "would be unreachable")
        if edge_fn is not None:
            self.edge_fn, self._default_name = edge_fn, DEFAULT_MODEL
        else:
            # No explicit default: fall back to the first named entry, and
            # book untagged frames under its real name in the statistics.
            self._default_name, self.edge_fn = next(iter(edge_fns.items()))
        self.edge_fns: Dict[str, EdgeFn] = dict(edge_fns or {})
        self.selector = selector
        self.max_workers = max_workers
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        # A short accept timeout lets the accept loop poll the stop flag;
        # closing a listening socket from another thread is not guaranteed to
        # wake a blocked accept().
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()
        self._accept_thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._slots = threading.BoundedSemaphore(max_workers)
        self._lock = threading.Lock()
        self._sessions: List[ServingSession] = []
        self._session_log_limit = max(1, session_log_limit)
        self._next_session_id = 0
        # Aggregate remainder of sessions evicted from the bounded log.
        self._retired = ServingSession(session_id=-1, peer="<retired>")
        self._retired_count = 0
        self._active_conns: Dict[int, socket.socket] = {}
        self._handlers: Dict[int, threading.Thread] = {}
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> "EdgeServer":
        """Start the accept loop in a background thread."""
        self._started_at = time.perf_counter()
        self._accept_thread = threading.Thread(target=self._serve, daemon=True)
        self._accept_thread.start()
        return self

    def _serve(self) -> None:
        while not self._stopped.is_set():
            # Bounded worker pool: hold a slot *before* accepting, so excess
            # connections genuinely wait in the kernel's listen backlog
            # instead of being accepted and left unanswered.  The short
            # timeouts keep shutdown from wedging on a full pool.
            if not self._slots.acquire(timeout=0.1):
                continue
            handed_off = False
            try:
                accepted = self._accept()
                if accepted is None:
                    return
                conn, addr = accepted
                conn.settimeout(None)
                session = ServingSession(
                    session_id=self._next_session_id, peer="%s:%d" % addr[:2],
                    connected_at=time.perf_counter())
                self._next_session_id += 1
                handler = threading.Thread(target=self._handle,
                                           args=(conn, session), daemon=True)
                with self._lock:
                    self._sessions.append(session)
                    self._active_conns[session.session_id] = conn
                    self._handlers[session.session_id] = handler
                handler.start()
                handed_off = True  # the handler releases the slot on exit
            finally:
                if not handed_off:
                    self._slots.release()

    def _accept(self) -> Optional[Tuple[socket.socket, Tuple]]:
        while not self._stopped.is_set():
            try:
                return self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                if self._stopped.is_set():
                    return None  # listener closed by stop()
                # Transient accept failure (fd exhaustion, aborted backlog
                # connection): keep the loop alive — a dead accept thread
                # would leave the server half-dead, serving existing
                # connections while silently refusing new ones.
                time.sleep(0.05)
        return None

    # ------------------------------------------------------------------
    def _resolve(self, meta: Dict) -> Tuple[str, EdgeFn]:
        """Pick the edge callable for a frame from its metadata."""
        name = meta.get("model")
        if (name is None and "conditions" in meta
                and self.selector is not None and self.edge_fns):
            # Per-frame dispatch only makes sense for frames that announce
            # conditions; anything else goes straight to the default.
            name = self.selector(meta)
        if name is None or name == self._default_name:
            return self._default_name, self.edge_fn
        if name not in self.edge_fns:
            raise KeyError(f"no edge model named {name!r} "
                           f"(available: {self._model_names()})")
        return name, self.edge_fns[name]

    def _model_names(self) -> List[str]:
        """Every name a frame's ``meta["model"]`` may resolve to."""
        return sorted(set(self.edge_fns) | {self._default_name})

    def _handle_hello(self, conn: socket.socket, session: ServingSession,
                      message: Message) -> None:
        ack_meta: Dict = {"server": f"{self.host}:{self.port}",
                          "models": self._model_names(),
                          "session_id": session.session_id}
        dispatch_failed = False
        if ("conditions" in message.meta and self.selector is not None
                and self.edge_fns):
            # The client announced its runtime conditions: dispatch once per
            # connection and tell the device which entry to run.  A failing
            # or misconfigured dispatch must surface in the acknowledgement,
            # not hang the client waiting for one.
            try:
                name = self.selector(message.meta)
                if name is not None and name not in self.edge_fns:
                    raise KeyError(f"dispatcher selected unknown model {name!r} "
                                   f"(available: {sorted(self.edge_fns)})")
                ack_meta["model"] = name
            except Exception as exc:
                dispatch_failed = True
                ack_meta["error"] = f"{type(exc).__name__}: {exc}"
                ack_meta["traceback"] = traceback.format_exc()
        sent = send_message(conn, Message(kind="hello", meta=ack_meta))
        with self._lock:
            session.client_name = str(message.meta.get("client", ""))
            session.bytes_sent += sent
            if dispatch_failed:
                session.errors += 1

    def _handle_frame(self, conn: socket.socket, session: ServingSession,
                      message: Message) -> None:
        try:
            # Serialization of the reply stays inside the guard: an edge_fn
            # returning non-JSON-serializable metadata must come back as an
            # "error" message, not kill the handler.  Only the actual socket
            # write (connection-level failure) is left to the handler loop.
            name, edge_fn = self._resolve(message.meta)
            started = time.perf_counter()
            arrays, meta = edge_fn(message.arrays, message.meta)
            elapsed = time.perf_counter() - started
            blob = serialize_message(Message(kind="result",
                                             frame_id=message.frame_id,
                                             arrays=arrays, meta=meta))
        except Exception as exc:  # propagate to the client, keep serving
            with self._lock:
                # Count the failure before attempting the reply, so a dead
                # connection cannot make the error vanish from the stats.
                session.errors += 1
            sent = send_message(conn, Message(
                kind="error", frame_id=message.frame_id,
                meta={"error": f"{type(exc).__name__}: {exc}",
                      "traceback": traceback.format_exc()}))
            with self._lock:
                session.bytes_sent += sent
            return
        sent = send_payload(conn, blob)
        # All session-counter mutations happen under the server lock so
        # stats()/sessions() copies are consistent snapshots; a frame counts
        # as served only once its result is on the wire.
        with self._lock:
            session.bytes_sent += sent
            session.service_time_s += elapsed
            session.frames += 1
            session.frames_by_model[name] += 1

    def _handle(self, conn: socket.socket, session: ServingSession) -> None:
        try:
            with conn:
                while not self._stopped.is_set():
                    try:
                        message = recv_message(conn)
                    except Exception:
                        # Truncated, reset, or undecodable stream — all
                        # unrecoverable for a length-prefixed protocol: drop
                        # the connection but keep the server alive.
                        with self._lock:
                            session.errors += 1
                        break
                    if message is None or message.kind == "stop":
                        break
                    with self._lock:
                        session.bytes_received += message.wire_bytes
                    try:
                        if message.kind == "hello":
                            self._handle_hello(conn, session, message)
                        elif message.kind == "frame":
                            self._handle_frame(conn, session, message)
                        # Unknown kinds are ignored: forward compatibility.
                    except OSError:
                        break
        finally:
            session.closed_at = time.perf_counter()
            with self._lock:
                self._active_conns.pop(session.session_id, None)
                self._handlers.pop(session.session_id, None)
                self._evict_old_sessions()
            self._slots.release()

    def _evict_old_sessions(self) -> None:
        """Fold the oldest closed sessions into the aggregate (lock held)."""
        while len(self._sessions) > self._session_log_limit:
            evicted = next((s for s in self._sessions if not s.active), None)
            if evicted is None:
                break
            self._sessions.remove(evicted)
            self._retired_count += 1
            retired = self._retired
            retired.frames += evicted.frames
            retired.errors += evicted.errors
            retired.bytes_received += evicted.bytes_received
            retired.bytes_sent += evicted.bytes_sent
            retired.service_time_s += evicted.service_time_s
            retired.frames_by_model.update(evicted.frames_by_model)

    # ------------------------------------------------------------------
    @staticmethod
    def _copy_session(session: ServingSession) -> ServingSession:
        return replace(session, frames_by_model=Counter(session.frames_by_model))

    @property
    def frames_processed(self) -> int:
        """Total frames served across every connection so far."""
        with self._lock:
            return (self._retired.frames
                    + sum(session.frames for session in self._sessions))

    def sessions(self) -> List[ServingSession]:
        """Copies of the retained sessions (most recent last).

        At most ``session_log_limit`` closed sessions are retained; older
        ones live on only in the aggregate counters of :meth:`stats`.
        """
        with self._lock:
            return [self._copy_session(s) for s in self._sessions]

    def stats(self) -> EdgeServerStats:
        """Aggregate serving statistics across all sessions ever served.

        The returned object is a true snapshot: the per-session entries are
        copies, safe to iterate while serving continues.
        """
        with self._lock:
            sessions = [self._copy_session(s) for s in self._sessions]
            retired = self._retired
            num_sessions = self._retired_count + len(sessions)
            frames = retired.frames + sum(s.frames for s in sessions)
            service = retired.service_time_s + sum(s.service_time_s for s in sessions)
            errors = retired.errors + sum(s.errors for s in sessions)
            bytes_in = retired.bytes_received + sum(s.bytes_received for s in sessions)
            bytes_out = retired.bytes_sent + sum(s.bytes_sent for s in sessions)
            by_model: "Counter[str]" = Counter(retired.frames_by_model)
            for session in sessions:
                by_model.update(session.frames_by_model)
        # The wall clock freezes at stop() so post-shutdown snapshots keep
        # reporting the throughput actually achieved while serving.
        end = self._stopped_at if self._stopped_at is not None else time.perf_counter()
        wall = end - self._started_at if self._started_at is not None else 0.0
        return EdgeServerStats(
            num_sessions=num_sessions,
            active_sessions=sum(s.active for s in sessions),
            frames_processed=frames,
            errors=errors,
            bytes_received=bytes_in,
            bytes_sent=bytes_out,
            mean_service_time_s=service / frames if frames else 0.0,
            frames_by_model=dict(by_model),
            wall_time_s=wall,
            sessions=sessions)

    def stop(self) -> None:
        """Stop accepting, close live connections and release the listener."""
        if self._stopped_at is None:
            self._stopped_at = time.perf_counter()
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            live = list(self._active_conns.values())
            handlers = list(self._handlers.values())
        for conn in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for handler in handlers:
            handler.join(timeout=5.0)


class DeviceClient:
    """Device-side runtime: executes the device segment and pipelines frames.

    The client owns two threads — a sender draining the outbound queue and a
    receiver filling the result queue — so device computation of frame
    ``t+1`` overlaps with the transfer and edge computation of frame ``t``.

    On connect the client sends a ``"hello"`` handshake carrying its name
    and, when given, its :class:`~repro.core.dispatcher.RuntimeConditions`
    as a plain dict; a dispatching server answers with the zoo entry chosen
    for those conditions (see :meth:`handshake` / :attr:`assigned_model`).
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0,
                 client_name: str = "", conditions: Optional[Dict] = None,
                 model: Optional[str] = None) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        # The timeout only guards connection establishment; receives must
        # block indefinitely or an idle-but-healthy connection would be
        # misreported as disconnected by the receiver loop.
        self._sock.settimeout(None)
        self.client_name = client_name
        self._conditions = dict(conditions) if conditions else None
        self._model = model
        self._send_queue: "queue.Queue[Optional[Message]]" = queue.Queue()
        self._results: "queue.Queue[Message]" = queue.Queue()
        self._hello_meta: Optional[Dict] = None
        self._hello_event = threading.Event()
        self._disconnect_reason: Optional[str] = None
        #: Connection-global frame counter: wire frame ids never repeat, so
        #: leftovers of a run aborted by an edge error are recognizably stale
        #: and cannot be mistaken for results of a later run_pipeline call.
        self._next_frame_id = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self._sender = threading.Thread(target=self._send_loop, daemon=True)
        self._receiver = threading.Thread(target=self._recv_loop, daemon=True)
        self._sender.start()
        self._receiver.start()
        hello_meta: Dict = {"client": client_name}
        if self._conditions is not None:
            hello_meta["conditions"] = self._conditions
        self._send_queue.put(Message(kind="hello", meta=hello_meta))

    # ------------------------------------------------------------------
    def _send_loop(self) -> None:
        while True:
            message = self._send_queue.get()
            if message is None:
                break
            try:
                self.bytes_sent += send_message(self._sock, message)
            except OSError:
                # The receiver loop surfaces the lost connection to waiting
                # callers; the sender just stops draining the queue.
                break
            except Exception as exc:
                # Un-encodable outgoing metadata (e.g. non-JSON values in a
                # frame's meta) would otherwise kill this thread silently and
                # leave run_pipeline waiting out its entire timeout.
                self._disconnect("failed to serialize an outgoing message: "
                                 "%s: %s" % (type(exc).__name__, exc))
                break
        try:
            send_message(self._sock, Message(kind="stop"))
        except OSError:
            pass

    def _recv_loop(self) -> None:
        while True:
            try:
                message = recv_message(self._sock)
            except OSError as exc:
                self._disconnect("%s: %s" % (type(exc).__name__, exc))
                break
            except Exception as exc:
                # A frame that fails to decode means the stream is desynced
                # or corrupted — unrecoverable for a length-prefixed protocol.
                self._disconnect("malformed message from the edge server: "
                                 "%s: %s" % (type(exc).__name__, exc))
                break
            if message is None:
                self._disconnect("peer closed the connection")
                break
            self.bytes_received += message.wire_bytes
            if message.kind == "hello":
                self._hello_meta = message.meta
                self._hello_event.set()
                continue
            self._results.put(message)

    def _disconnect(self, reason: str) -> None:
        """Surface a lost connection to both handshake() and run_pipeline().

        Without the sentinel and the event, either would sleep out its full
        timeout and raise an uninformative TimeoutError.
        """
        self._disconnect_reason = reason
        self._results.put(Message(kind="disconnect", meta={"error": reason}))
        self._hello_event.set()

    # ------------------------------------------------------------------
    def handshake(self, timeout_s: float = 10.0) -> Dict:
        """Server metadata from the hello acknowledgement (blocks until it arrives).

        Raises :class:`RuntimeError` when the server reports that dispatching
        for the announced conditions failed.
        """
        if not self._hello_event.wait(timeout=timeout_s):
            raise TimeoutError("edge server did not acknowledge the hello handshake")
        if self._hello_meta is None:
            raise ConnectionError(
                "connection to the edge server was lost before the hello "
                f"acknowledgement: {self._disconnect_reason or 'unknown'}")
        meta = dict(self._hello_meta)
        if "error" in meta:
            raise RuntimeError(
                f"edge server could not dispatch for the announced conditions: "
                f"{meta['error']}\n--- remote traceback ---\n"
                f"{meta.get('traceback', '')}")
        return meta

    @property
    def assigned_model(self) -> Optional[str]:
        """Zoo entry the server's dispatcher chose for this client, if any."""
        return self.handshake().get("model")

    # ------------------------------------------------------------------
    def run_pipeline(self, frames: Sequence[object], device_fn: DeviceFn,
                     timeout_s: float = 60.0) -> Tuple[List[FrameResult], PipelineStats]:
        """Process ``frames`` through the device segment, the link and the edge.

        Returns per-frame results plus aggregate pipeline statistics.  An
        edge-side failure surfaces as a :class:`RuntimeError` carrying the
        remote traceback.
        """
        if self._disconnect_reason is not None:
            raise ConnectionError(
                "connection to the edge server was already lost: "
                f"{self._disconnect_reason}")
        model = self._model
        if model is None and self._conditions is not None:
            # The server dispatched a zoo entry for our conditions; tag the
            # frames so per-request resolution matches the handshake.
            model = self.handshake(timeout_s=timeout_s).get("model")
        submitted: Dict[int, float] = {}
        base_id = self._next_frame_id
        self._next_frame_id += len(frames)
        # Byte counters are per-connection; report this run's traffic only.
        sent_before, received_before = self.bytes_sent, self.bytes_received
        start = time.perf_counter()
        for offset, frame in enumerate(frames):
            # Latency is measured from the moment the frame enters the device
            # segment, so device compute counts toward the frame latency.
            submitted[base_id + offset] = time.perf_counter()
            arrays, meta = device_fn(frame)
            meta = dict(meta)
            if model is not None:
                meta.setdefault("model", model)
            elif self._conditions is not None:
                # Only un-dispatched frames need the conditions on the wire
                # (per-frame dispatch); a resolved model short-circuits them.
                meta.setdefault("conditions", self._conditions)
            self._send_queue.put(Message(kind="frame", frame_id=base_id + offset,
                                         arrays=arrays, meta=meta))
        results: List[FrameResult] = []
        # timeout_s bounds the wait for results (as it always has; device
        # compute above is not counted against it) and, separately, the
        # handshake wait — each phase gets at most timeout_s, not their sum.
        deadline = time.monotonic() + timeout_s
        while len(results) < len(frames):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("co-inference pipeline timed out waiting for results")
            try:
                message = self._results.get(timeout=remaining)
            except queue.Empty:
                continue  # deadline expired: the check above raises TimeoutError
            if message.kind == "disconnect":
                raise ConnectionError(
                    "connection to the edge server was lost with "
                    f"{len(frames) - len(results)} frame(s) outstanding: "
                    f"{message.meta.get('error', 'peer closed')}")
            if message.frame_id not in submitted:
                continue  # stale leftover of an earlier, aborted run
            if message.kind == "error":
                detail = message.meta.get("error", "unknown edge failure")
                remote_tb = message.meta.get("traceback", "")
                raise RuntimeError(
                    f"edge execution failed for frame "
                    f"{message.frame_id - base_id}: {detail}\n"
                    f"--- remote traceback ---\n{remote_tb}")
            results.append(FrameResult(
                frame_id=message.frame_id - base_id, arrays=message.arrays,
                meta=message.meta, submitted_at=submitted[message.frame_id],
                completed_at=time.perf_counter()))
        wall = time.perf_counter() - start
        results.sort(key=lambda r: r.frame_id)
        stats = PipelineStats(
            num_frames=len(frames), wall_time_s=wall,
            mean_latency_s=float(np.mean([r.latency_s for r in results])) if results else 0.0,
            bytes_sent=self.bytes_sent - sent_before,
            bytes_received=self.bytes_received - received_before)
        return results, stats

    def close(self) -> None:
        """Flush the stop marker and close the connection."""
        self._send_queue.put(None)
        self._sender.join(timeout=5.0)
        try:
            # Both halves: SHUT_WR flushes the stop marker to the server,
            # and shutting the read half wakes a receiver blocked in recv
            # against an unresponsive server (the socket has no read timeout).
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._receiver.join(timeout=5.0)
        self._sock.close()


def run_co_inference(frames: Sequence[object], device_fn: DeviceFn, edge_fn: EdgeFn,
                     timeout_s: float = 60.0) -> Tuple[List[FrameResult], PipelineStats]:
    """Convenience wrapper: spin up a loopback edge server, pipeline all frames.

    This is the one-call entry point used by the examples and tests; the edge
    server and device client are torn down before returning.
    """
    server = EdgeServer(edge_fn).start()
    client = DeviceClient(server.host, server.port)
    try:
        return client.run_pipeline(frames, device_fn, timeout_s=timeout_s)
    finally:
        client.close()
        server.stop()
