"""Pipelined co-inference engine over TCP sockets.

This is the deployment component of GCoDE (Sec. 3.6): the device executes its
segment of the architecture, compresses and ships the intermediate state to
the edge, and — instead of blocking on the reply — immediately starts the
next frame.  Sending and receiving run on separate threads with their own
queues, matching the paper's description.

The engine is agnostic to *what* is executed: the device and edge sides are
plain callables (``device_fn(frame) -> (arrays, meta)`` and
``edge_fn(arrays, meta) -> (arrays, meta)``), normally produced by
:func:`repro.core.executor.split_callables`.  In this reproduction both ends
run on localhost, which exercises the full code path (framing, compression,
threading, pipelining) even though the physical link is loopback.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .messages import Message, recv_message, send_message

ArrayDict = Dict[str, np.ndarray]
DeviceFn = Callable[[object], Tuple[ArrayDict, Dict]]
EdgeFn = Callable[[ArrayDict, Dict], Tuple[ArrayDict, Dict]]


@dataclass
class FrameResult:
    """Outcome of one inference frame processed through the engine."""

    frame_id: int
    arrays: ArrayDict
    meta: Dict
    submitted_at: float
    completed_at: float

    @property
    def latency_s(self) -> float:
        return self.completed_at - self.submitted_at


@dataclass
class PipelineStats:
    """Aggregate statistics of a pipelined co-inference run."""

    num_frames: int
    wall_time_s: float
    mean_latency_s: float
    bytes_sent: int
    bytes_received: int

    @property
    def throughput_fps(self) -> float:
        return self.num_frames / self.wall_time_s if self.wall_time_s > 0 else 0.0


class EdgeServer:
    """Edge-side runtime: accepts frames, runs ``edge_fn``, returns results."""

    def __init__(self, edge_fn: EdgeFn, host: str = "127.0.0.1", port: int = 0) -> None:
        self.edge_fn = edge_fn
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1)
        self.host, self.port = self._listener.getsockname()
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self.frames_processed = 0

    # ------------------------------------------------------------------
    def start(self) -> "EdgeServer":
        """Start serving in a background thread."""
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        return self

    def _serve(self) -> None:
        try:
            conn, _ = self._listener.accept()
        except OSError:
            return
        with conn:
            while not self._stopped.is_set():
                message = recv_message(conn)
                if message is None or message.kind == "stop":
                    break
                arrays, meta = self.edge_fn(message.arrays, message.meta)
                self.frames_processed += 1
                send_message(conn, Message(kind="result", frame_id=message.frame_id,
                                           arrays=arrays, meta=meta))
        self._listener.close()

    def stop(self) -> None:
        """Stop the server and release the listening socket."""
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)


class DeviceClient:
    """Device-side runtime: executes the device segment and pipelines frames.

    The client owns two threads — a sender draining the outbound queue and a
    receiver filling the result queue — so device computation of frame
    ``t+1`` overlaps with the transfer and edge computation of frame ``t``.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._send_queue: "queue.Queue[Optional[Message]]" = queue.Queue()
        self._results: "queue.Queue[Message]" = queue.Queue()
        self.bytes_sent = 0
        self.bytes_received = 0
        self._sender = threading.Thread(target=self._send_loop, daemon=True)
        self._receiver = threading.Thread(target=self._recv_loop, daemon=True)
        self._sender.start()
        self._receiver.start()

    # ------------------------------------------------------------------
    def _send_loop(self) -> None:
        while True:
            message = self._send_queue.get()
            if message is None:
                break
            self.bytes_sent += send_message(self._sock, message)
        try:
            send_message(self._sock, Message(kind="stop"))
        except OSError:
            pass

    def _recv_loop(self) -> None:
        while True:
            try:
                message = recv_message(self._sock)
            except OSError:
                break
            if message is None:
                break
            self.bytes_received += message.wire_bytes
            self._results.put(message)

    # ------------------------------------------------------------------
    def run_pipeline(self, frames: Sequence[object], device_fn: DeviceFn,
                     timeout_s: float = 60.0) -> Tuple[List[FrameResult], PipelineStats]:
        """Process ``frames`` through the device segment, the link and the edge.

        Returns per-frame results plus aggregate pipeline statistics.
        """
        submitted: Dict[int, float] = {}
        start = time.perf_counter()
        for frame_id, frame in enumerate(frames):
            arrays, meta = device_fn(frame)
            submitted[frame_id] = time.perf_counter()
            self._send_queue.put(Message(kind="frame", frame_id=frame_id,
                                         arrays=arrays, meta=meta))
        results: List[FrameResult] = []
        deadline = time.monotonic() + timeout_s
        while len(results) < len(frames):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("co-inference pipeline timed out waiting for results")
            message = self._results.get(timeout=remaining)
            results.append(FrameResult(
                frame_id=message.frame_id, arrays=message.arrays, meta=message.meta,
                submitted_at=submitted[message.frame_id],
                completed_at=time.perf_counter()))
        wall = time.perf_counter() - start
        results.sort(key=lambda r: r.frame_id)
        stats = PipelineStats(
            num_frames=len(frames), wall_time_s=wall,
            mean_latency_s=float(np.mean([r.latency_s for r in results])) if results else 0.0,
            bytes_sent=self.bytes_sent, bytes_received=self.bytes_received)
        return results, stats

    def close(self) -> None:
        """Flush the stop marker and close the connection."""
        self._send_queue.put(None)
        self._sender.join(timeout=5.0)
        try:
            self._sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        self._receiver.join(timeout=5.0)
        self._sock.close()


def run_co_inference(frames: Sequence[object], device_fn: DeviceFn, edge_fn: EdgeFn,
                     timeout_s: float = 60.0) -> Tuple[List[FrameResult], PipelineStats]:
    """Convenience wrapper: spin up a loopback edge server, pipeline all frames.

    This is the one-call entry point used by the examples and tests; the edge
    server and device client are torn down before returning.
    """
    server = EdgeServer(edge_fn).start()
    client = DeviceClient(server.host, server.port)
    try:
        return client.run_pipeline(frames, device_fn, timeout_s=timeout_s)
    finally:
        client.close()
        server.stop()
