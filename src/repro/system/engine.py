"""Pipelined co-inference engine over TCP sockets.

This is the deployment component of GCoDE (Sec. 3.6): the device executes its
segment of the architecture, compresses and ships the intermediate state to
the edge, and — instead of blocking on the reply — immediately starts the
next frame.  Sending and receiving run on separate threads with their own
queues, matching the paper's description.

The engine is agnostic to *what* is executed: the device and edge sides are
plain callables (``device_fn(frame) -> (arrays, meta)`` and
``edge_fn(arrays, meta) -> (arrays, meta)``), normally produced by
:func:`repro.core.executor.split_callables` — which by default hands back
compiled inference plans (:mod:`repro.runtime`) whose per-entry buffer
arenas persist across requests for the lifetime of the serving table.  In
this reproduction both ends run on localhost, which exercises the full code
path (framing, compression, threading, pipelining) even though the physical
link is loopback.

Two wire-level knobs live on :class:`DeviceClient`: ``wire_format`` switches
a connection from the default zlib-compressed framing to the zero-copy raw
framing (the server always replies in the framing a request arrived in),
and ``wire_dtype`` down-casts outgoing float arrays (e.g. to ``float32``,
halving frame bytes).  See ``docs/serving.md`` for the trade-offs.

Multi-client serving
--------------------
One :class:`EdgeServer` serves many :class:`DeviceClient` connections
concurrently: an accept loop hands each connection to its own handler thread,
bounded by a worker pool of ``max_workers`` slots.  Every connection is
tracked as a :class:`ServingSession` (frames, bytes, edge service time,
errors) and :meth:`EdgeServer.stats` aggregates the sessions into an
:class:`EdgeServerStats` snapshot — the serving-side counterpart of the
client's :class:`PipelineStats`.

The server can also hold several edge callables at once (``edge_fns``, keyed
by model name) and pick one per request: a frame's metadata may name the
model directly (``meta["model"]``) or carry runtime conditions
(``meta["conditions"]``) that an injected ``selector`` — typically
``RuntimeDispatcher.select_for_meta`` — maps to a zoo entry.  Clients
announce themselves with a ``"hello"`` handshake; when the hello carries
conditions the server answers with the chosen model name so the device can
run the matching device segment.  Edge-side failures travel back to the
offending client as ``"error"`` messages (with the remote traceback) instead
of killing the connection.

Cross-client micro-batching
---------------------------
With ``max_batch_size > 1`` the server stops executing one engine call per
frame: handler threads only *enqueue* incoming frames, and a
:class:`MicroBatcher` coalesces whatever arrived within ``max_wait_ms`` (up
to ``max_batch_size`` frames, strictly per zoo entry — batches never mix
models) into a single call of the entry's batched edge callable
(``batch_fns``, typically :func:`repro.core.executor.batched_edge_fn`).
Results are scattered back to the waiting connections with the realized
``batch_index`` stamped on each reply.  A failing batched call falls back to
per-frame execution so an error isolates to the one offending frame; entries
without a batched callable are likewise served per frame.  The batcher's
realized batch-size distribution and queueing delay are part of
:class:`EdgeServerStats`, whose ``mean_service_time_s`` then reports the
*amortized* per-frame engine time.

Layering: frontends and admission control
-----------------------------------------
Since the transport/scheduling split, this module is the serving *core*
only.  Connection accept/read/write and message framing live in
:mod:`repro.system.transport` behind a pluggable frontend
(``EdgeServer(frontend="threaded"|"async")``): the threaded frontend keeps
the historical thread-per-connection server, the asyncio frontend
multiplexes thousands of mostly-idle connections on one event loop and
hands compute to a bounded thread pool.  The core's behavior — routing,
batching, statistics, hot reload — is identical under both.

Between the frontends and execution sits the admission-control stage of
:mod:`repro.system.scheduler`: every frame passes ``Scheduler.admit``
before it may queue, so a saturated server *sheds* load with an explicit
wire-level ``"rejected"`` reply (reason + ``retry_after_ms``) instead of
queueing without bound; per-frame deadlines (``meta["deadline_ms"]``) are
honored by never executing expired frames, priority classes shed
low-priority traffic first, and per-client fairness keeps one firehose
client from starving the rest.  Clients surface rejections as
:class:`RequestRejectedError` (or count them, ``on_rejected="drop"``).
"""

from __future__ import annotations

import heapq
import queue
import socket
import sys
import threading
import time
import traceback
from collections import Counter
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import (TYPE_CHECKING, Callable, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

import numpy as np

if TYPE_CHECKING:  # import-free at runtime: engine must not drag in the
    # shard runtime (repro.serving builds on this module, not vice versa).
    from ..runtime.node import NodeStats
    from ..runtime.shard import ShardStats
    from ..serving.config import RetryPolicy

from .messages import (_LENGTH_SIZE as PAYLOAD_PREFIX_BYTES,
                       DEADLINE_MS_META_KEY, KIND_ERROR, KIND_FRAME,
                       KIND_HELLO, KIND_REJECTED, KIND_RESULT,
                       KIND_STOP, Message, PRIORITY_META_KEY,
                       REJECT_REASON_META_KEY, RETRY_AFTER_MS_META_KEY,
                       WIRE_FORMAT_ZLIB, WIRE_FORMATS, recv_message,
                       send_message, send_payload, serialize_message)
from .scheduler import (REJECT_REASON_CAPACITY, REJECT_REASON_DEADLINE,
                        BackpressureError, FrameExpiredError, QosPolicy,
                        Rejection, Scheduler)
from .transport import FRONTEND_THREADED, Connection, create_frontend

ArrayDict = Dict[str, np.ndarray]
DeviceFn = Callable[[object], Tuple[ArrayDict, Dict]]
EdgeFn = Callable[[ArrayDict, Dict], Tuple[ArrayDict, Dict]]
#: Edge callable executing a whole micro-batch of frames in one engine call.
BatchedEdgeFn = Callable[[Sequence[Tuple[ArrayDict, Dict]]],
                         List[Tuple[ArrayDict, Dict]]]
#: Maps frame/hello metadata to the name of the edge callable to run.
SelectorFn = Callable[[Dict], Optional[str]]

#: Model-name bucket used for frames served by the default ``edge_fn``.
DEFAULT_MODEL = "default"

#: Client-local sentinel kind the receive thread enqueues when the
#: connection drops; never serialized, so it lives here rather than with
#: the wire kinds of :mod:`repro.system.messages`.
_KIND_DISCONNECT = "disconnect"

#: Closed sessions retained for per-session inspection; older closed sessions
#: are folded into aggregate counters so a long-running server that accepts
#: one connection per request stays memory-bounded.
SESSION_LOG_LIMIT = 1024


@dataclass(frozen=True)
class ServingTable:
    """Immutable model-routing state of an :class:`EdgeServer`.

    Everything a frame's resolution touches — the default callable, the
    named edge/batched callables and the selector — lives in one frozen
    value that each request reads exactly once.  Hot reload
    (:meth:`EdgeServer.install_table`) swaps the whole table atomically, so
    no frame can ever observe a half-updated routing state.
    """

    default_name: str
    default_fn: EdgeFn
    edge_fns: Dict[str, EdgeFn]
    batch_fns: Dict[str, BatchedEdgeFn]
    selector: Optional[SelectorFn]

    def model_names(self) -> List[str]:
        """Every name a frame's ``meta["model"]`` may resolve to."""
        return sorted(set(self.edge_fns) | {self.default_name})


def _make_serving_table(edge_fn: Optional[EdgeFn],
                        edge_fns: Optional[Dict[str, EdgeFn]],
                        selector: Optional[SelectorFn],
                        batch_fns: Optional[Dict[str, BatchedEdgeFn]]
                        ) -> ServingTable:
    """Validate and freeze one serving table (construction and hot reload)."""
    if edge_fn is None and not edge_fns:
        raise ValueError("a serving table needs an edge_fn or a non-empty "
                         "edge_fns")
    if edge_fn is not None and edge_fns and DEFAULT_MODEL in edge_fns:
        raise ValueError(
            f"edge_fns may not use the reserved name {DEFAULT_MODEL!r} "
            "when an explicit default edge_fn is also given — the entry "
            "would be unreachable")
    if edge_fn is not None:
        default_name, default_fn = DEFAULT_MODEL, edge_fn
    else:
        # No explicit default: fall back to the first named entry, and
        # book untagged frames under its real name in the statistics.
        default_name, default_fn = next(iter(edge_fns.items()))
    edge_fns = dict(edge_fns or {})
    batch_fns = dict(batch_fns or {})
    unknown = set(batch_fns) - set(edge_fns) - {default_name}
    if unknown:
        raise ValueError(
            f"batch_fns name entries with no per-frame edge callable: "
            f"{sorted(unknown)} — a typo here would silently fall back "
            "to per-frame serving")
    return ServingTable(default_name=default_name, default_fn=default_fn,
                        edge_fns=edge_fns, batch_fns=batch_fns,
                        selector=selector)


@dataclass
class FrameResult:
    """Outcome of one inference frame processed through the engine."""

    frame_id: int
    arrays: ArrayDict
    meta: Dict
    submitted_at: float
    completed_at: float
    #: Position inside the micro-batch the edge coalesced this frame into;
    #: ``None`` when the frame was served per frame (batching off).
    batch_index: Optional[int] = None

    @property
    def latency_s(self) -> float:
        return self.completed_at - self.submitted_at


@dataclass
class PipelineStats:
    """Aggregate statistics of a pipelined co-inference run."""

    num_frames: int
    wall_time_s: float
    mean_latency_s: float
    bytes_sent: int
    bytes_received: int
    #: Frames the server shed with a ``rejected`` reply instead of
    #: executing (only non-zero for clients built with
    #: ``on_rejected="drop"`` — the default raises instead).
    frames_rejected: int = 0
    #: Frames that needed at least one re-submission before completing
    #: (only non-zero with a :class:`~repro.serving.RetryPolicy`).
    frames_retried: int = 0
    #: Retry-attempt histogram: ``{n: frames that needed exactly n
    #: re-submissions}`` for ``n >= 1`` — frames served on the first
    #: attempt are not recorded, so an empty dict means a clean run.
    retry_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def throughput_fps(self) -> float:
        return self.num_frames / self.wall_time_s if self.wall_time_s > 0 else 0.0


class RequestRejectedError(RuntimeError):
    """The edge server shed a frame instead of executing it.

    Raised by :meth:`DeviceClient.run_pipeline` (and therefore
    :meth:`repro.serving.Client.run`) when a frame comes back as a
    ``"rejected"`` reply — the server's admission control refused it
    (queue bound, fairness share, or an already-expired deadline).  The
    typed fields let callers implement informed backoff instead of
    pattern-matching an error string.
    """

    def __init__(self, frame_id: int, reason: str,
                 retry_after_ms: float) -> None:
        super().__init__(
            f"edge server rejected frame {frame_id} ({reason}); "
            f"retry after {retry_after_ms:.0f} ms")
        #: Frame index relative to the rejected run.
        self.frame_id = frame_id
        #: Wire-visible shed reason: ``"capacity"``/``"fairness"``/``"deadline"``.
        self.reason = reason
        #: Server's backoff hint in milliseconds.
        self.retry_after_ms = retry_after_ms


@dataclass
class ServingSession:
    """Edge-side record of one client connection."""

    session_id: int
    peer: str
    client_name: str = ""
    connected_at: float = 0.0
    closed_at: Optional[float] = None
    frames: int = 0
    errors: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    #: Cumulative time spent inside the edge callables for this client.
    service_time_s: float = 0.0
    frames_by_model: "Counter[str]" = field(default_factory=Counter)
    #: True once the session was folded into the server's aggregate counters
    #: (bounded session log).  Late replies from batcher threads must then
    #: book against the aggregate instead — this object no longer feeds
    #: statistics.
    evicted: bool = False

    @property
    def active(self) -> bool:
        return self.closed_at is None

    @property
    def duration_s(self) -> float:
        end = self.closed_at if self.closed_at is not None else time.perf_counter()
        return end - self.connected_at

    @property
    def mean_service_time_s(self) -> float:
        return self.service_time_s / self.frames if self.frames else 0.0


@dataclass
class EdgeServerStats:
    """Aggregate serving statistics across all sessions of an edge server."""

    num_sessions: int
    active_sessions: int
    frames_processed: int
    errors: int
    bytes_received: int
    bytes_sent: int
    #: Mean engine time booked per frame.  Under micro-batching this is the
    #: *amortized* time — each frame of a coalesced batch is charged an equal
    #: share of the single batched engine call.
    mean_service_time_s: float
    frames_by_model: Dict[str, int]
    wall_time_s: float
    sessions: List[ServingSession]
    #: Micro-batching: engine calls dispatched by the batcher, the realized
    #: batch-size distribution (size -> count), the mean realized batch size
    #: and the mean time a frame queued before dispatch.  All zero / empty
    #: when batching is off (``max_batch_size=1``).
    batches_dispatched: int = 0
    mean_batch_size: float = 0.0
    batch_size_histogram: Dict[int, int] = field(default_factory=dict)
    mean_queue_delay_s: float = 0.0
    #: Frames of coalesced multi-frame batches that had to be re-executed
    #: per frame because their batched engine call failed.  Non-zero means
    #: the batched path is degrading; the histogram above still records the
    #: *attempted* coalescing.
    batch_fallback_frames: int = 0
    #: Queue health of the micro-batcher: frames currently sitting in entry
    #: queues awaiting dispatch, and the highest depth ever observed.  A
    #: peak persistently near ``max_batch_size × active clients`` (and a
    #: growing ``mean_queue_delay_s``) is the saturation signal — the
    #: engine, not the wire, is the bottleneck.  Both zero with batching
    #: off.
    queue_depth: int = 0
    queue_depth_peak: int = 0
    #: Load shedding (QoS): frames answered with a ``rejected`` reply
    #: instead of being executed, broken down by reason (``"capacity"`` /
    #: ``"fairness"`` / ``"deadline"``).  Zero with the default unbounded,
    #: deadline-free policy.
    frames_shed: int = 0
    shed_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Queue-delay distribution (time from arrival to execution start)
    #: over the most recent frames of *both* the batched and the direct
    #: path — the tail (`p99`) is what a shedding policy bounds, which a
    #: mean can hide.
    queue_delay_p50_s: float = 0.0
    queue_delay_p99_s: float = 0.0
    #: Which transport frontend served these sessions (``"threaded"`` or
    #: ``"async"``).
    frontend: str = FRONTEND_THREADED
    #: Process-parallel serving: per-shard counters of the attached shard
    #: pool (empty when serving in process).  ``num_shards`` counts the
    #: configured shards; a shard with ``alive=False`` crashed and is being
    #: routed around.
    num_shards: int = 0
    shards: List["ShardStats"] = field(default_factory=list)
    #: Multi-node cluster serving: per-node counters of the attached
    #: cluster pool (empty when not clustered).  ``num_nodes`` counts the
    #: configured nodes; a node with ``alive=False`` died (or partitioned)
    #: and is being routed around until a reconnect re-syncs it.
    num_nodes: int = 0
    nodes: List["NodeStats"] = field(default_factory=list)

    @property
    def throughput_fps(self) -> float:
        """Aggregate frames per second since the server started."""
        return self.frames_processed / self.wall_time_s if self.wall_time_s > 0 else 0.0


@dataclass
class _PendingRequest:
    """One frame waiting for (batched) edge execution.

    Holds everything a batcher/compute thread needs to reply without going
    back through the frontend: the connection (whose ``send_bytes`` is
    thread-safe), the session record for statistics, and the admission
    outcome (absolute expiry + priority) the scheduler stamped on it.

    ``conn`` is normally a :class:`~repro.system.transport.Connection`;
    a bare socket plus the legacy ``send_lock`` is still accepted so
    pre-frontend callers keep working.
    """

    conn: object
    session: ServingSession
    message: Message
    enqueued_at: float
    send_lock: Optional[threading.Lock] = None
    #: ``time.monotonic()`` moment after which the frame must not execute
    #: (``None`` = no deadline); stamped at admission.
    expires_at: Optional[float] = None
    priority: int = 0


class MicroBatcher:
    """Coalesces concurrent edge requests into batched engine calls.

    One collector thread per zoo entry (created lazily on first traffic for
    that entry) drains a per-entry queue: it waits at most ``max_wait_ms``
    from the arrival of the batch's first frame — or until ``max_batch_size``
    frames are pending — then hands the batch to ``dispatch`` in one call.
    Per-entry queues mean a batch never mixes zoo entries, so each batched
    engine call resumes exactly one architecture.

    The batcher records the realized batch-size distribution and the
    per-frame queueing delay; :meth:`EdgeServer.stats` folds the snapshot
    into :class:`EdgeServerStats`.
    """

    def __init__(self, dispatch: Callable[[str, List[_PendingRequest]], bool],
                 max_batch_size: int, max_wait_ms: float) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self._dispatch = dispatch
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self._queues: Dict[str, "queue.Queue[_PendingRequest]"] = {}
        self._threads: Dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        self._stopped = threading.Event()
        self._batches = 0
        self._frames = 0
        self._size_histogram: "Counter[int]" = Counter()
        self._queue_delay_total_s = 0.0
        self._fallback_frames = 0
        #: Frames enqueued but not yet handed to dispatch, and the highest
        #: value that counter ever reached — the operator-facing saturation
        #: signal (surfaced as ``EdgeServerStats.queue_depth``/``_peak``).
        self._queue_depth = 0
        self._queue_depth_peak = 0

    # ------------------------------------------------------------------
    def submit(self, name: str, request: _PendingRequest) -> bool:
        """Enqueue a frame for entry ``name``; False when already stopped."""
        with self._lock:
            if self._stopped.is_set():
                return False
            self._queue_depth += 1
            if self._queue_depth > self._queue_depth_peak:
                self._queue_depth_peak = self._queue_depth
            entry_queue = self._queues.get(name)
            if entry_queue is None:
                entry_queue = queue.Queue()
                self._queues[name] = entry_queue
                collector = threading.Thread(target=self._run,
                                             args=(name, entry_queue),
                                             daemon=True)
                self._threads[name] = collector
                collector.start()
        entry_queue.put(request)
        return True

    def _collect(self, entry_queue: "queue.Queue[_PendingRequest]",
                 first: _PendingRequest) -> List[_PendingRequest]:
        """Gather a batch: whatever arrives before the first frame's deadline.

        The deadline is anchored at the *arrival* of the batch's first frame,
        so a frame never waits longer than ``max_wait_ms`` in the queue even
        when the collector was busy dispatching the previous batch — in that
        case everything already pending is drained without further waiting.
        """
        batch = [first]
        deadline = first.enqueued_at + self.max_wait_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            try:
                if remaining <= 0:
                    batch.append(entry_queue.get_nowait())
                else:
                    batch.append(entry_queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _run(self, name: str, entry_queue: "queue.Queue[_PendingRequest]") -> None:
        while not self._stopped.is_set():
            try:
                first = entry_queue.get(timeout=0.1)
            except queue.Empty:
                continue
            batch = self._collect(entry_queue, first)
            dispatched_at = time.monotonic()
            with self._lock:
                self._batches += 1
                self._frames += len(batch)
                self._queue_depth -= len(batch)
                self._size_histogram[len(batch)] += 1
                self._queue_delay_total_s += sum(
                    dispatched_at - request.enqueued_at for request in batch)
            try:
                executed_batched = self._dispatch(name, batch)
            except Exception:
                # Per-request failures are replied to inside dispatch; an
                # unexpected error here must not kill the collector thread,
                # or the entry would silently stop being served.
                continue
            if not executed_batched:
                # The coalesced batch had to be re-run per frame (its
                # batched callable failed); without this counter a fully
                # broken batched path would still report a healthy-looking
                # batch-size histogram.
                with self._lock:
                    self._fallback_frames += len(batch)

    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[int, int, Dict[int, int], float, int, int, int]:
        """``(batches, frames, size_histogram, total_queue_delay_s,
        fallback_frames, queue_depth, queue_depth_peak)``."""
        with self._lock:
            return (self._batches, self._frames, dict(self._size_histogram),
                    self._queue_delay_total_s, self._fallback_frames,
                    self._queue_depth, self._queue_depth_peak)

    def stop(self) -> None:
        """Stop the collector threads; pending requests are abandoned."""
        self._stopped.set()
        with self._lock:
            collectors = list(self._threads.values())
        for collector in collectors:
            collector.join(timeout=5.0)


class EdgeServer:
    """Edge-side runtime: accepts frames, runs edge callables, returns results.

    Parameters
    ----------
    edge_fn:
        Default edge callable, used for frames that do not name a model.
        Optional when ``edge_fns`` is given (the first entry then serves as
        the default).
    edge_fns:
        Named edge callables for multi-model serving; a frame selects one via
        ``meta["model"]`` or through ``selector``.
    selector:
        Maps frame/hello metadata to a model name (e.g.
        ``RuntimeDispatcher.select_for_meta``).  Consulted when the metadata
        does not name a model explicitly.
    batch_fns:
        Batched edge callables for micro-batching, keyed like ``edge_fns``
        (the default entry's batched callable goes under its model name —
        ``"default"`` for an anonymous ``edge_fn``).  Typically produced by
        :func:`repro.core.executor.zoo_serving_callables`.  Entries without a
        batched callable are served per frame even when batching is on.
    max_batch_size:
        Upper bound on frames coalesced into one batched engine call.  The
        default of 1 disables micro-batching entirely (per-frame serving,
        no batcher threads).
    max_wait_ms:
        How long the batcher may hold the first frame of a batch while
        waiting for more traffic to coalesce with.
    max_workers:
        Compute-concurrency bound.  Under the threaded frontend this is
        the historical "concurrently served connections" limit (further
        connections queue in the listen backlog until a handler slot
        frees up); under the asyncio frontend it sizes the compute thread
        pool — idle connections are no longer bounded by it.
    frontend:
        Transport frontend serving the socket (see
        :mod:`repro.system.transport`): ``"threaded"`` (default, one
        handler thread per connection) or ``"async"`` (one asyncio event
        loop multiplexing all connections, compute on a bounded pool).
        Core semantics — routing, batching, statistics, hot reload — are
        identical under both.
    qos:
        Admission-control policy (:class:`~repro.system.scheduler.QosPolicy`)
        guarding the queues: bounded depth with load shedding, per-frame
        deadlines, priority classes, per-client fairness.  ``None`` keeps
        the historical behavior (unbounded queues, no deadlines) — but
        frames carrying ``meta["deadline_ms"]`` are honored even then.
    session_log_limit:
        How many closed sessions to keep individually inspectable; older
        closed sessions are folded into the aggregate statistics.
    shard_stats:
        Optional provider of per-shard counters (typically
        ``ShardPool.stats`` of :mod:`repro.serving.sharding`) folded into
        :meth:`stats` when this server routes frames to a process-parallel
        shard pool instead of executing them in process.
    node_stats:
        Optional provider of per-node counters (typically
        ``ClusterPool.stats`` of :mod:`repro.serving.cluster`) folded into
        :meth:`stats` when this server routes frames to a fleet of replica
        nodes instead of executing them in process.
    """

    def __init__(self, edge_fn: Optional[EdgeFn] = None, host: str = "127.0.0.1",
                 port: int = 0, *, edge_fns: Optional[Dict[str, EdgeFn]] = None,
                 selector: Optional[SelectorFn] = None,
                 batch_fns: Optional[Dict[str, BatchedEdgeFn]] = None,
                 max_batch_size: int = 1, max_wait_ms: float = 2.0,
                 max_workers: int = 8, backlog: int = 32,
                 frontend: str = FRONTEND_THREADED,
                 qos: Optional[QosPolicy] = None,
                 session_log_limit: int = SESSION_LOG_LIMIT,
                 shard_stats: Optional[Callable[[], List["ShardStats"]]] = None,
                 node_stats: Optional[Callable[[], List["NodeStats"]]] = None
                 ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        # All model routing lives in one immutable table; requests read it
        # exactly once, and install_table() swaps it atomically (hot reload).
        self._table = _make_serving_table(edge_fn, edge_fns, selector,
                                          batch_fns)
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self._batcher: Optional[MicroBatcher] = None
        if max_batch_size > 1:
            self._batcher = MicroBatcher(self._dispatch_batch,
                                         max_batch_size=max_batch_size,
                                         max_wait_ms=max_wait_ms)
        self.max_workers = max_workers
        # Admission control sits between the transport and the execution
        # tiers: every frame passes Scheduler.admit() before it is queued or
        # executed, whatever frontend delivered it.
        self._scheduler = Scheduler(qos)
        # The frontend owns the socket: accept/read/framing/write live in
        # repro.system.transport, this class only sees decoded Messages via
        # the callbacks below.  The listener binds in the frontend
        # constructor, so host/port are final before start().
        self.frontend = frontend
        self._frontend = create_frontend(frontend, self, host, port,
                                         max_workers=max_workers,
                                         backlog=backlog)
        self.host, self.port = self._frontend.host, self._frontend.port
        self._lock = threading.Lock()
        self._sessions: List[ServingSession] = []
        self._session_log_limit = max(1, session_log_limit)
        self._next_session_id = 0
        # Aggregate remainder of sessions evicted from the bounded log.
        self._retired = ServingSession(session_id=-1, peer="<retired>")
        self._retired_count = 0
        #: Live transport connections mapped to their sessions; entries are
        #: added by connection_opened() and removed by connection_closed().
        self._conn_sessions: Dict[Connection, ServingSession] = {}
        #: When serving through a process-parallel shard pool, the pool's
        #: per-shard counter snapshot — folded into :meth:`stats` so the
        #: socket-level and per-core views live in one place.  The server
        #: itself stays shard-agnostic: its edge/batched callables already
        #: route to the shards.
        self._shard_stats = shard_stats
        #: Same idea for the multi-node cluster tier: the router's
        #: per-node counter snapshot, provided by the cluster pool.
        self._node_stats = node_stats
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Serving table: read-mostly routing state, hot-swappable.
    # ------------------------------------------------------------------
    @property
    def table(self) -> ServingTable:
        """The currently installed serving table (immutable snapshot)."""
        return self._table

    @property
    def edge_fn(self) -> EdgeFn:
        """Default edge callable of the current table."""
        return self._table.default_fn

    @property
    def edge_fns(self) -> Mapping[str, EdgeFn]:
        """Named edge callables of the current table (read-only view).

        A read-only mapping, not a mutable dict: writing to it (the
        pre-facade way of registering a model at runtime) would silently
        edit a throwaway copy — use :meth:`install_table` instead.
        """
        return MappingProxyType(self._table.edge_fns)

    @property
    def batch_fns(self) -> Mapping[str, BatchedEdgeFn]:
        """Named batched callables of the current table (read-only view)."""
        return MappingProxyType(self._table.batch_fns)

    @property
    def selector(self) -> Optional[SelectorFn]:
        return self._table.selector

    @property
    def _default_name(self) -> str:
        return self._table.default_name

    def install_table(self, edge_fn: Optional[EdgeFn] = None, *,
                      edge_fns: Optional[Dict[str, EdgeFn]] = None,
                      selector: Optional[SelectorFn] = None,
                      batch_fns: Optional[Dict[str, BatchedEdgeFn]] = None
                      ) -> None:
        """Atomically replace the serving table (hot reload).

        The new table is validated exactly like the constructor arguments;
        on a validation error the old table stays installed untouched.  The
        swap is a single reference assignment, and every request reads the
        table exactly once, so a frame is always served — resolution,
        execution and statistics booking — by *one* table: either wholly the
        old one or wholly the new one, never a mixture.  Frames already
        queued in the micro-batcher resolve their callable at dispatch time,
        i.e. from the table installed when their batch executes.
        """
        self._table = _make_serving_table(edge_fn, edge_fns, selector,
                                          batch_fns)

    # ------------------------------------------------------------------
    def start(self) -> "EdgeServer":
        """Start serving (frontend accept loop / event loop in background)."""
        self._started_at = time.perf_counter()
        self._frontend.start()
        return self

    # ------------------------------------------------------------------
    # FrontendCore callbacks: the transport layer delivers connection
    # lifecycle events and decoded messages here.  These run on frontend
    # threads (handler threads or the event-loop thread) and must stay
    # cheap — compute is returned as a thunk for the frontend to place.
    # ------------------------------------------------------------------
    def connection_opened(self, conn: Connection) -> None:
        """A frontend accepted ``conn``; register its session."""
        with self._lock:
            session = ServingSession(session_id=self._next_session_id,
                                     peer=conn.peer,
                                     connected_at=time.perf_counter())
            self._next_session_id += 1
            self._sessions.append(session)
            self._conn_sessions[conn] = session

    def connection_message(self, conn: Connection,
                           message: Message) -> Optional[Callable[[], None]]:
        """A frontend decoded ``message`` on ``conn``.

        Returns ``None`` when the message was fully handled inline (hello
        acknowledgements, admission rejections, batcher enqueues) or a
        zero-argument thunk the frontend must run on a compute slot (the
        direct execution path) — keeping model execution off the event
        loop under the async frontend.
        """
        with self._lock:
            session = self._conn_sessions.get(conn)
            if session is None:
                return None  # closed concurrently; the frame has no home
            session.bytes_received += message.wire_bytes
        if message.kind == KIND_HELLO:
            self._handle_hello(conn, session, message)
            return None
        if message.kind == KIND_FRAME:
            return self._handle_frame(conn, session, message)
        # Unknown kinds are ignored: forward compatibility.
        return None

    def connection_closed(self, conn: Connection,
                          error: Optional[BaseException]) -> None:
        """``conn`` is gone (clean close, decode failure, or I/O error)."""
        with self._lock:
            session = self._conn_sessions.pop(conn, None)
            if session is None:
                return
            if error is not None:
                session.errors += 1
            session.closed_at = time.perf_counter()
            self._evict_old_sessions()

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(meta: Dict, table: ServingTable) -> Tuple[str, EdgeFn]:
        """Pick the edge callable for a frame from its metadata.

        ``table`` is the one serving-table snapshot the whole frame uses —
        callers read ``self._table`` once and pass it down, so a concurrent
        :meth:`install_table` can never hand a frame a half-swapped view.
        """
        name = meta.get("model")
        if (name is None and "conditions" in meta
                and table.selector is not None and table.edge_fns):
            # Per-frame dispatch only makes sense for frames that announce
            # conditions; anything else goes straight to the default.
            name = table.selector(meta)
        if name is None or name == table.default_name:
            return table.default_name, table.default_fn
        if name not in table.edge_fns:
            raise KeyError(f"no edge model named {name!r} "
                           f"(available: {table.model_names()})")
        return name, table.edge_fns[name]

    def _handle_hello(self, conn: Connection, session: ServingSession,
                      message: Message) -> None:
        table = self._table
        ack_meta: Dict = {"server": f"{self.host}:{self.port}",
                          "models": table.model_names(),
                          "session_id": session.session_id}
        dispatch_failed = False
        if ("conditions" in message.meta and table.selector is not None
                and table.edge_fns):
            # The client announced its runtime conditions: dispatch once per
            # connection and tell the device which entry to run.  A failing
            # or misconfigured dispatch must surface in the acknowledgement,
            # not hang the client waiting for one.
            try:
                name = table.selector(message.meta)
                if name is not None and name not in table.edge_fns:
                    raise KeyError(f"dispatcher selected unknown model {name!r} "
                                   f"(available: {sorted(table.edge_fns)})")
                ack_meta["model"] = name
            except Exception as exc:
                dispatch_failed = True
                ack_meta["error"] = f"{type(exc).__name__}: {exc}"
                ack_meta["traceback"] = traceback.format_exc()
        # Reply in the framing the hello arrived in: a raw-framing client
        # gets raw replies, a zlib client zlib ones, from one listener.
        sent = conn.send_bytes(serialize_message(
            Message(kind=KIND_HELLO, meta=ack_meta,
                    wire_format=message.wire_format)))
        with self._lock:
            session.client_name = str(message.meta.get("client", ""))
            session.bytes_sent += sent
            if dispatch_failed:
                session.errors += 1

    def _handle_frame(self, conn: Connection, session: ServingSession,
                      message: Message) -> Optional[Callable[[], None]]:
        """Admit, route and enqueue one frame; return the compute thunk.

        Runs on the frontend's delivery thread and must not execute model
        code itself: the direct path comes back as a thunk (run inline by
        the threaded frontend, on the compute pool by the async one), the
        batched path hands the frame to a collector thread, and rejected
        frames are answered right here with a ``"rejected"`` reply.
        """
        request = _PendingRequest(conn=conn, session=session, message=message,
                                  enqueued_at=time.monotonic())
        table = self._table
        try:
            name, edge_fn = self._resolve(message.meta, table)
        except Exception:  # unknown model / selector failure: per-frame error
            self._reply_error(request)
            return None
        # Admission control: shed *before* any queue or engine sees the
        # frame.  A Rejection is answered immediately — the client learns
        # within a round-trip instead of timing out.
        decision = self._scheduler.admit(session.session_id, message.meta)
        if isinstance(decision, Rejection):
            self._reply_rejected(request, decision.reason,
                                 decision.retry_after_ms)
            return None
        request.expires_at = decision.expires_at
        request.priority = decision.priority
        if self._batcher is not None and name in table.batch_fns:
            # Entries without a batched callable stay on the direct path
            # below: funnelling them through a per-entry collector thread
            # would serialize their (possibly thread-safe) edge callables
            # and add up to max_wait_ms of queueing with nothing to batch.
            if not self._batcher.submit(name, request):
                # Batcher already stopped: the server is shutting down and
                # this connection is about to be torn down; drop the frame
                # (and its admission ticket).
                self._scheduler.release(session.session_id)
            return None

        def run_frame() -> None:
            self._execute_direct(request, name, edge_fn)

        return run_frame

    def _execute_direct(self, request: _PendingRequest, name: str,
                        edge_fn: EdgeFn) -> None:
        """Run one un-batched frame on a compute slot and reply."""
        now = time.monotonic()
        self._scheduler.release(request.session.session_id,
                                queue_delay_s=now - request.enqueued_at)
        if self._scheduler.expired(request.expires_at, now):
            # The deadline lapsed while the frame waited for a compute slot;
            # executing it would waste engine time on an answer the device
            # has already given up on.
            self._scheduler.record_shed(REJECT_REASON_DEADLINE)
            self._reply_rejected(request, REJECT_REASON_DEADLINE,
                                 self._scheduler.policy.retry_after_ms)
            return
        try:
            started = time.perf_counter()
            arrays, meta = edge_fn(request.message.arrays,
                                   request.message.meta)
            elapsed = time.perf_counter() - started
        except FrameExpiredError:
            self._scheduler.record_shed(REJECT_REASON_DEADLINE)
            self._reply_rejected(request, REJECT_REASON_DEADLINE,
                                 self._scheduler.policy.retry_after_ms)
            return
        except BackpressureError:
            # The execution tier (e.g. a saturated shard ring) pushed back
            # before accepting the frame; surface it as a clean rejection.
            self._scheduler.record_shed(REJECT_REASON_CAPACITY)
            self._reply_rejected(request, REJECT_REASON_CAPACITY,
                                 self._scheduler.policy.retry_after_ms)
            return
        except Exception:  # propagate to the client, keep serving
            self._reply_error(request)
            return
        self._reply_result(request, name, arrays, meta, elapsed)

    def _dispatch_batch(self, name: str, requests: List[_PendingRequest]) -> bool:
        """Execute one micro-batch for zoo entry ``name`` and reply per frame.

        Called by the :class:`MicroBatcher` collector threads.  When the
        entry has a batched callable and more than one frame coalesced, the
        whole batch runs in a single engine call and each frame is charged an
        equal share of the elapsed time; otherwise — including when the
        batched call fails — frames run per frame, so an error isolates to
        the one request that caused it instead of failing the whole batch.

        Returns ``False`` when a multi-frame batch had to fall back to
        per-frame execution (its batched call failed), so the batcher can
        expose the degradation in its statistics.

        The serving table is read once for the whole batch, so every frame
        of the batch is served by exactly one table even when
        :meth:`install_table` swaps it concurrently.
        """
        now = time.monotonic()
        live: List[_PendingRequest] = []
        for request in requests:
            # The admission ticket is held for the queueing stage only; the
            # dispatch itself is bounded by the batcher's own concurrency.
            self._scheduler.release(request.session.session_id,
                                    queue_delay_s=now - request.enqueued_at)
            if self._scheduler.expired(request.expires_at, now):
                # Deadline lapsed in the micro-batching queue: never execute
                # expired work, answer with a rejection instead.
                self._scheduler.record_shed(REJECT_REASON_DEADLINE)
                self._reply_rejected(request, REJECT_REASON_DEADLINE,
                                     self._scheduler.policy.retry_after_ms)
            else:
                live.append(request)
        if not live:
            return True
        requests = live
        table = self._table
        batch_fn = table.batch_fns.get(name)
        if batch_fn is not None and len(requests) > 1:
            started = time.perf_counter()
            try:
                results = list(batch_fn([(request.message.arrays,
                                          request.message.meta)
                                         for request in requests]))
                if len(results) != len(requests):
                    raise RuntimeError(
                        f"batched edge callable for {name!r} returned "
                        f"{len(results)} results for {len(requests)} requests")
                # Unpack every element *before* the first reply goes out: a
                # malformed result discovered mid-loop would strand the rest
                # of the batch with no reply at all (their clients would sit
                # out the full pipeline timeout instead of getting the
                # per-frame error the fallback below produces).
                results = [(arrays, meta) for arrays, meta in results]
            except Exception:
                pass  # fall through to the per-frame fallback below
            else:
                share = (time.perf_counter() - started) / len(requests)
                for index, (request, (arrays, meta)) in enumerate(
                        zip(requests, results)):
                    self._reply_result(request, name, arrays, meta, share,
                                       batch_index=index)
                return True
        edge_fn = (table.default_fn if name == table.default_name
                   else table.edge_fns.get(name))
        if edge_fn is None:
            # The entry vanished between enqueue and dispatch (a hot reload
            # shrank the table); each frame gets a clean per-frame error
            # instead of the whole batch dying unanswered.
            for index, request in enumerate(requests):
                try:
                    raise KeyError(f"no edge model named {name!r} "
                                   f"(available: {table.model_names()})")
                except KeyError:
                    self._reply_error(request, batch_index=index)
            return True
        for index, request in enumerate(requests):
            try:
                started = time.perf_counter()
                arrays, meta = edge_fn(request.message.arrays,
                                       request.message.meta)
                elapsed = time.perf_counter() - started
            except FrameExpiredError:
                self._scheduler.record_shed(REJECT_REASON_DEADLINE)
                self._reply_rejected(request, REJECT_REASON_DEADLINE,
                                     self._scheduler.policy.retry_after_ms,
                                     batch_index=index)
            except BackpressureError:
                self._scheduler.record_shed(REJECT_REASON_CAPACITY)
                self._reply_rejected(request, REJECT_REASON_CAPACITY,
                                     self._scheduler.policy.retry_after_ms,
                                     batch_index=index)
            except Exception:
                self._reply_error(request, batch_index=index)
            else:
                self._reply_result(request, name, arrays, meta, elapsed,
                                   batch_index=index)
        # Per-frame execution was the intended path only for single-frame
        # batches and entries without a batched callable; a multi-frame
        # batch landing here means its batched call failed.
        return not (batch_fn is not None and len(requests) > 1)

    def _send_frame(self, request: _PendingRequest, blob: bytes) -> int:
        """Write one framed reply for ``request``; returns wire bytes.

        Replies normally go through the transport :class:`Connection`
        (whose ``send_bytes`` is thread-safe).  Requests built directly on
        a raw socket — the pre-frontend construction some tests and
        embedders use — keep the historical per-request ``send_lock`` +
        :func:`send_payload` path.
        """
        conn = request.conn
        if isinstance(conn, Connection):
            return conn.send_bytes(blob)
        lock = request.send_lock if request.send_lock is not None \
            else threading.Lock()
        with lock:
            return send_payload(conn, blob)

    def _reply_rejected(self, request: _PendingRequest, reason: str,
                        retry_after_ms: float,
                        batch_index: Optional[int] = None) -> None:
        """Answer a shed frame with a wire-level ``"rejected"`` message.

        The reply carries the shed reason and a retry hint so the device
        can back off deliberately instead of discovering the loss through
        its pipeline timeout.  Shed counting lives in the scheduler (the
        admission path books rejections itself; dispatch-time sheds call
        :meth:`Scheduler.record_shed`), so this method only speaks wire.
        """
        try:
            blob = serialize_message(Message(
                kind=KIND_REJECTED, frame_id=request.message.frame_id,
                meta={REJECT_REASON_META_KEY: reason,
                      RETRY_AFTER_MS_META_KEY: float(retry_after_ms)},
                batch_index=batch_index,
                wire_format=request.message.wire_format))
            sent = self._send_frame(request, blob)
        except OSError:
            return  # client already gone; nothing to roll back
        with self._lock:
            self._stats_target(request).bytes_sent += sent

    def _reply_result(self, request: _PendingRequest, name: str,
                      arrays: ArrayDict, meta: Dict, service_time_s: float,
                      batch_index: Optional[int] = None) -> None:
        try:
            # Serialization stays guarded: an edge callable returning
            # non-JSON-serializable metadata must come back as an "error"
            # message, not kill the replying thread.
            blob = serialize_message(Message(
                kind=KIND_RESULT, frame_id=request.message.frame_id,
                arrays=arrays, meta=meta, batch_index=batch_index,
                wire_format=request.message.wire_format))
        except Exception:
            self._reply_error(request, batch_index=batch_index)
            return
        # All session-counter mutations happen under the server lock so
        # stats()/sessions() copies are consistent snapshots.  The frame is
        # booked *before* the socket write (and rolled back should the write
        # fail): the moment a client holds the result, the server's counters
        # must already include it — counting after the write let a stats()
        # call race ahead of the last increment.
        with self._lock:
            session = self._stats_target(request)
            session.bytes_sent += len(blob) + PAYLOAD_PREFIX_BYTES
            session.service_time_s += service_time_s
            session.frames += 1
            session.frames_by_model[name] += 1
        try:
            self._send_frame(request, blob)
        except OSError:
            # The client vanished between execution and reply; its handler
            # (or stop()) tears the connection down.  Un-book the frame that
            # never made it onto the wire (re-resolving the target: the
            # session — booked counts included — may have been folded into
            # the aggregate in between).
            with self._lock:
                session = self._stats_target(request)
                session.bytes_sent -= len(blob) + PAYLOAD_PREFIX_BYTES
                session.service_time_s -= service_time_s
                session.frames -= 1
                session.frames_by_model[name] -= 1
                session.errors += 1

    def _stats_target(self, request: _PendingRequest) -> ServingSession:
        """Where this request's counters live now (server lock held).

        Batcher threads may reply after the bounded session log evicted the
        request's session; its counts then live in the retired aggregate.
        """
        return self._retired if request.session.evicted else request.session

    def _reply_error(self, request: _PendingRequest,
                     batch_index: Optional[int] = None) -> None:
        """Reply with the currently handled exception (callers sit in except)."""
        exc = sys.exc_info()[1]
        with self._lock:
            # Count the failure before attempting the reply, so a dead
            # connection cannot make the error vanish from the stats.
            self._stats_target(request).errors += 1
        try:
            sent = self._send_frame(request, serialize_message(Message(
                kind=KIND_ERROR, frame_id=request.message.frame_id,
                # Worker-crash errors (ShardCrashedError, NodeCrashedError —
                # both ConnectionError subclasses) mean the frame was never
                # (completely) executed; frame execution is pure, so clients
                # with a RetryPolicy may safely re-submit.  Model-level
                # failures are deterministic and must not be retried.
                meta={"error": f"{type(exc).__name__}: {exc}",
                      "traceback": traceback.format_exc(),
                      "retryable": isinstance(exc, ConnectionError)},
                batch_index=batch_index,
                wire_format=request.message.wire_format)))
        except OSError:
            return
        with self._lock:
            self._stats_target(request).bytes_sent += sent

    def _evict_old_sessions(self) -> None:
        """Fold the oldest closed sessions into the aggregate (lock held)."""
        while len(self._sessions) > self._session_log_limit:
            session = next((s for s in self._sessions if not s.active), None)
            if session is None:
                break
            self._sessions.remove(session)
            self._retired_count += 1
            retired = self._retired
            retired.frames += session.frames
            retired.errors += session.errors
            retired.bytes_received += session.bytes_received
            retired.bytes_sent += session.bytes_sent
            retired.service_time_s += session.service_time_s
            retired.frames_by_model.update(session.frames_by_model)
            # In-flight batcher replies for this session must hit the
            # aggregate from now on, or their frames would vanish from (or,
            # on a rollback, be double-subtracted out of) the statistics.
            session.evicted = True

    # ------------------------------------------------------------------
    @staticmethod
    def _copy_session(session: ServingSession) -> ServingSession:
        return replace(session, frames_by_model=Counter(session.frames_by_model))

    @property
    def frames_processed(self) -> int:
        """Total frames served across every connection so far."""
        with self._lock:
            return (self._retired.frames
                    + sum(session.frames for session in self._sessions))

    def sessions(self) -> List[ServingSession]:
        """Copies of the retained sessions (most recent last).

        At most ``session_log_limit`` closed sessions are retained; older
        ones live on only in the aggregate counters of :meth:`stats`.
        """
        with self._lock:
            return [self._copy_session(s) for s in self._sessions]

    def stats(self) -> EdgeServerStats:
        """Aggregate serving statistics across all sessions ever served.

        The returned object is a true snapshot: the per-session entries are
        copies, safe to iterate while serving continues.
        """
        with self._lock:
            sessions = [self._copy_session(s) for s in self._sessions]
            retired = self._retired
            num_sessions = self._retired_count + len(sessions)
            frames = retired.frames + sum(s.frames for s in sessions)
            service = retired.service_time_s + sum(s.service_time_s for s in sessions)
            errors = retired.errors + sum(s.errors for s in sessions)
            bytes_in = retired.bytes_received + sum(s.bytes_received for s in sessions)
            bytes_out = retired.bytes_sent + sum(s.bytes_sent for s in sessions)
            by_model: "Counter[str]" = Counter(retired.frames_by_model)
            for session in sessions:
                by_model.update(session.frames_by_model)
        # The wall clock freezes at stop() so post-shutdown snapshots keep
        # reporting the throughput actually achieved while serving.
        end = self._stopped_at if self._stopped_at is not None else time.perf_counter()
        wall = end - self._started_at if self._started_at is not None else 0.0
        (batches, batched_frames, size_histogram, delay_total, fallback,
         queue_depth, queue_depth_peak) = (
            self._batcher.snapshot() if self._batcher is not None
            else (0, 0, {}, 0.0, 0, 0, 0))
        shards: List["ShardStats"] = (list(self._shard_stats())
                                      if self._shard_stats is not None else [])
        nodes: List["NodeStats"] = (list(self._node_stats())
                                    if self._node_stats is not None else [])
        sched = self._scheduler.snapshot()
        return EdgeServerStats(
            num_sessions=num_sessions,
            active_sessions=sum(s.active for s in sessions),
            frames_processed=frames,
            errors=errors,
            bytes_received=bytes_in,
            bytes_sent=bytes_out,
            mean_service_time_s=service / frames if frames else 0.0,
            frames_by_model=dict(by_model),
            wall_time_s=wall,
            sessions=sessions,
            batches_dispatched=batches,
            mean_batch_size=batched_frames / batches if batches else 0.0,
            batch_size_histogram=size_histogram,
            mean_queue_delay_s=delay_total / batched_frames if batched_frames else 0.0,
            batch_fallback_frames=fallback,
            queue_depth=queue_depth,
            queue_depth_peak=queue_depth_peak,
            frames_shed=sched.frames_shed,
            shed_by_reason=dict(sched.shed_by_reason),
            queue_delay_p50_s=sched.queue_delay_p50_s,
            queue_delay_p99_s=sched.queue_delay_p99_s,
            frontend=self.frontend,
            num_shards=len(shards),
            shards=shards,
            num_nodes=len(nodes),
            nodes=nodes)

    @property
    def scheduler(self) -> Scheduler:
        """The admission-control scheduler guarding this server's queues."""
        return self._scheduler

    def stop(self) -> None:
        """Stop accepting, close live connections and release the listener."""
        if self._stopped_at is None:
            self._stopped_at = time.perf_counter()
        # Transport first (no new frames can arrive), batcher second (the
        # queued tail drains through _dispatch_batch as before).
        self._frontend.stop()
        if self._batcher is not None:
            self._batcher.stop()


class DeviceClient:
    """Device-side runtime: executes the device segment and pipelines frames.

    The client owns two threads — a sender draining the outbound queue and a
    receiver filling the result queue — so device computation of frame
    ``t+1`` overlaps with the transfer and edge computation of frame ``t``.

    On connect the client sends a ``"hello"`` handshake carrying its name
    and, when given, its :class:`~repro.core.dispatcher.RuntimeConditions`
    as a plain dict; a dispatching server answers with the zoo entry chosen
    for those conditions (see :meth:`handshake` / :attr:`assigned_model`).

    Wire knobs
    ----------
    ``wire_format`` selects the framing every outgoing message uses:
    ``"zlib"`` (default, paper-faithful compressed frames) or ``"raw"``
    (zero-copy framing — no compression pass, arrays reconstructed by the
    peer directly over the received bytes).  The server replies in whatever
    framing a request arrived in, so the knob is purely client-side.
    ``wire_dtype`` (e.g. ``np.float32``) down-casts outgoing float arrays
    before they are framed, halving frame sizes at reduced precision; when
    the device callable already emits that dtype (a compiled plan with
    ``dtype=np.float32``) the cast is a no-op.

    QoS knobs
    ---------
    ``deadline_ms`` stamps every outgoing frame with a freshness budget: a
    QoS-enabled server sheds the frame (with a ``"rejected"`` reply)
    instead of executing it once the budget lapses.  ``priority`` tags
    frames with a priority class (``0`` highest; or a name from the
    server's ``priority_map``).  ``on_rejected`` picks how rejections
    surface from :meth:`run_pipeline`: ``"raise"`` (default) raises
    :class:`RequestRejectedError`, ``"drop"`` silently counts the frame in
    :attr:`PipelineStats.frames_rejected` — the natural mode for live
    streams where a stale frame is best replaced by the next one.

    Resilience
    ----------
    ``retry_policy`` (a :class:`repro.serving.RetryPolicy`, duck-typed here
    to keep this module import-free of the serving layer) turns transient
    failures into bounded, jittered-backoff re-submissions inside
    :meth:`run_pipeline`:

    * a ``"rejected"`` reply is retried after
      ``max(policy backoff, server retry_after_ms)`` — the server's hint
      is a floor, never ignored;
    * an ``"error"`` reply the server marked ``retryable`` (a worker
      crashed mid-frame: ``ShardCrashedError`` / ``NodeCrashedError``) is
      re-submitted, because frame execution is *pure* — device and edge
      callables are deterministic functions of the frame payload with no
      hidden state, so re-executing a frame that never produced a result
      is observably identical to executing it once (pinned by
      ``tests/test_serving_retry.py``);
    * retries are deadline-aware: with ``deadline_ms`` set, no retry is
      scheduled that would land past the frame's freshness budget — the
      frame fails with its original typed error instead.

    Retries apply only under ``on_rejected="raise"``; ``"drop"`` keeps
    its shed-and-move-on semantics untouched.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0,
                 client_name: str = "", conditions: Optional[Dict] = None,
                 model: Optional[str] = None,
                 wire_format: str = WIRE_FORMAT_ZLIB,
                 wire_dtype=None,
                 deadline_ms: Optional[float] = None,
                 priority: Optional[object] = None,
                 on_rejected: str = "raise",
                 retry_policy: Optional["RetryPolicy"] = None) -> None:
        if wire_format not in WIRE_FORMATS:
            raise ValueError(f"unknown wire format {wire_format!r} "
                             f"(expected one of {WIRE_FORMATS})")
        if on_rejected not in ("raise", "drop"):
            raise ValueError(f"on_rejected must be 'raise' or 'drop', "
                             f"got {on_rejected!r}")
        if deadline_ms is not None and not deadline_ms > 0:
            raise ValueError(f"deadline_ms must be positive, got {deadline_ms}")
        if retry_policy is not None and not hasattr(retry_policy, "delay_ms"):
            raise TypeError(
                f"retry_policy must expose RetryPolicy's interface "
                f"(max_retries/delay_ms/...), got {type(retry_policy).__name__}")
        self.deadline_ms = deadline_ms
        self.priority = priority
        self.on_rejected = on_rejected
        self.retry_policy = retry_policy
        self.wire_format = wire_format
        self._wire_dtype = None if wire_dtype is None else np.dtype(wire_dtype)
        if (self._wire_dtype is not None
                and not np.issubdtype(self._wire_dtype, np.floating)):
            raise ValueError(
                f"wire_dtype must be a floating dtype, got {self._wire_dtype}")
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        # The timeout only guards connection establishment; receives must
        # block indefinitely or an idle-but-healthy connection would be
        # misreported as disconnected by the receiver loop.
        self._sock.settimeout(None)
        self.client_name = client_name
        self._conditions = dict(conditions) if conditions else None
        self._model = model
        self._send_queue: "queue.Queue[Optional[Message]]" = queue.Queue()
        self._results: "queue.Queue[Message]" = queue.Queue()
        self._hello_meta: Optional[Dict] = None
        self._hello_event = threading.Event()
        self._disconnect_reason: Optional[str] = None
        #: Connection-global frame counter: wire frame ids never repeat, so
        #: leftovers of a run aborted by an edge error are recognizably stale
        #: and cannot be mistaken for results of a later run_pipeline call.
        self._next_frame_id = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self._sender = threading.Thread(target=self._send_loop, daemon=True)
        self._receiver = threading.Thread(target=self._recv_loop, daemon=True)
        self._sender.start()
        self._receiver.start()
        hello_meta: Dict = {"client": client_name}
        if self._conditions is not None:
            hello_meta["conditions"] = self._conditions
        self._send_queue.put(Message(kind=KIND_HELLO, meta=hello_meta,
                                     wire_format=self.wire_format))

    # ------------------------------------------------------------------
    def _send_loop(self) -> None:
        while True:
            message = self._send_queue.get()
            if message is None:
                break
            try:
                self.bytes_sent += send_message(self._sock, message)
            except OSError:
                # The receiver loop surfaces the lost connection to waiting
                # callers; the sender just stops draining the queue.
                break
            except Exception as exc:
                # Un-encodable outgoing metadata (e.g. non-JSON values in a
                # frame's meta) would otherwise kill this thread silently and
                # leave run_pipeline waiting out its entire timeout.
                self._disconnect("failed to serialize an outgoing message: "
                                 "%s: %s" % (type(exc).__name__, exc))
                break
        try:
            send_message(self._sock, Message(kind=KIND_STOP,
                                             wire_format=self.wire_format))
        except OSError:
            pass

    def _recv_loop(self) -> None:
        while True:
            try:
                message = recv_message(self._sock)
            except OSError as exc:
                self._disconnect("%s: %s" % (type(exc).__name__, exc))
                break
            except Exception as exc:
                # A frame that fails to decode means the stream is desynced
                # or corrupted — unrecoverable for a length-prefixed protocol.
                self._disconnect("malformed message from the edge server: "
                                 "%s: %s" % (type(exc).__name__, exc))
                break
            if message is None:
                self._disconnect("peer closed the connection")
                break
            self.bytes_received += message.wire_bytes
            if message.kind == KIND_HELLO:
                self._hello_meta = message.meta
                self._hello_event.set()
                continue
            self._results.put(message)

    def _disconnect(self, reason: str) -> None:
        """Surface a lost connection to both handshake() and run_pipeline().

        Without the sentinel and the event, either would sleep out its full
        timeout and raise an uninformative TimeoutError.
        """
        self._disconnect_reason = reason
        self._results.put(Message(kind=_KIND_DISCONNECT, meta={"error": reason}))
        self._hello_event.set()

    # ------------------------------------------------------------------
    def handshake(self, timeout_s: float = 10.0) -> Dict:
        """Server metadata from the hello acknowledgement (blocks until it arrives).

        Raises :class:`RuntimeError` when the server reports that dispatching
        for the announced conditions failed.
        """
        if not self._hello_event.wait(timeout=timeout_s):
            raise TimeoutError("edge server did not acknowledge the hello handshake")
        if self._hello_meta is None:
            raise ConnectionError(
                "connection to the edge server was lost before the hello "
                f"acknowledgement: {self._disconnect_reason or 'unknown'}")
        meta = dict(self._hello_meta)
        if "error" in meta:
            raise RuntimeError(
                f"edge server could not dispatch for the announced conditions: "
                f"{meta['error']}\n--- remote traceback ---\n"
                f"{meta.get('traceback', '')}")
        return meta

    @property
    def assigned_model(self) -> Optional[str]:
        """Zoo entry the server's dispatcher chose for this client, if any."""
        return self.handshake().get("model")

    def _cast_for_wire(self, arrays: ArrayDict) -> ArrayDict:
        """Down-cast float arrays to ``wire_dtype`` before framing.

        Integer arrays (batch vectors, edge indices) keep their dtype; float
        arrays already in the target dtype pass through untouched.
        """
        cast: ArrayDict = {}
        for name, array in arrays.items():
            array = np.asarray(array)
            if (np.issubdtype(array.dtype, np.floating)
                    and array.dtype != self._wire_dtype):
                array = array.astype(self._wire_dtype)
            cast[name] = array
        return cast

    # ------------------------------------------------------------------
    def run_pipeline(self, frames: Sequence[object], device_fn: DeviceFn,
                     timeout_s: float = 60.0) -> Tuple[List[FrameResult], PipelineStats]:
        """Process ``frames`` through the device segment, the link and the edge.

        Returns per-frame results plus aggregate pipeline statistics.  An
        edge-side failure surfaces as a :class:`RuntimeError` carrying the
        remote traceback.
        """
        if self._disconnect_reason is not None:
            raise ConnectionError(
                "connection to the edge server was already lost: "
                f"{self._disconnect_reason}")
        model = self._model
        if model is None and self._conditions is not None:
            # The server dispatched a zoo entry for our conditions; tag the
            # frames so per-request resolution matches the handshake.
            model = self.handshake(timeout_s=timeout_s).get("model")
        submitted: Dict[int, float] = {}
        base_id = self._next_frame_id
        self._next_frame_id += len(frames)
        policy = self.retry_policy
        # Retries only under on_rejected="raise": "drop" keeps its
        # shed-and-move-on semantics (a stale live-stream frame is best
        # replaced by the next one, not replayed).
        retrying = (policy is not None and policy.enabled
                    and self.on_rejected == "raise")
        #: frame_id -> ready-to-send Message, kept only while a retry may
        #: still need to re-submit it (re-serialization is pure).
        payloads: Dict[int, Message] = {}
        #: frame_id -> re-submissions performed so far (absent means 0).
        attempts: Dict[int, int] = {}
        #: Min-heap of (due_monotonic, frame_id) re-submissions waiting out
        #: their backoff delay.  frame_ids are unique, so heap ties never
        #: compare beyond the second element.
        due: List[Tuple[float, int]] = []
        # Byte counters are per-connection; report this run's traffic only.
        sent_before, received_before = self.bytes_sent, self.bytes_received
        start = time.perf_counter()
        for offset, frame in enumerate(frames):
            # Latency is measured from the moment the frame enters the device
            # segment, so device compute counts toward the frame latency.
            submitted[base_id + offset] = time.perf_counter()
            arrays, meta = device_fn(frame)
            if self._wire_dtype is not None:
                arrays = self._cast_for_wire(arrays)
            meta = dict(meta)
            if model is not None:
                meta.setdefault("model", model)
            elif self._conditions is not None:
                # Only un-dispatched frames need the conditions on the wire
                # (per-frame dispatch); a resolved model short-circuits them.
                meta.setdefault("conditions", self._conditions)
            if self.deadline_ms is not None:
                meta.setdefault(DEADLINE_MS_META_KEY, self.deadline_ms)
            if self.priority is not None:
                meta.setdefault(PRIORITY_META_KEY, self.priority)
            message = Message(kind=KIND_FRAME, frame_id=base_id + offset,
                              arrays=arrays, meta=meta,
                              wire_format=self.wire_format)
            if retrying:
                payloads[base_id + offset] = message
            self._send_queue.put(message)

        def schedule_retry(frame_id: int, floor_ms: float) -> bool:
            """Queue a re-submission of ``frame_id``; False = budget spent.

            The delay honors the server's ``retry_after_ms`` as a floor and
            the frame's ``deadline_ms`` as a ceiling: a retry that would
            land after the freshness budget lapsed could only be shed again
            (reason ``"deadline"``), so the frame fails *now* with the
            error that exhausted its budget.
            """
            attempt = attempts.get(frame_id, 0) + 1
            if attempt > policy.max_retries:
                return False
            delay_s = policy.delay_ms(attempt, floor_ms=floor_ms) / 1e3
            now = time.monotonic()
            if now + delay_s >= deadline:
                return False  # would outlive the pipeline timeout
            if self.deadline_ms is not None:
                elapsed_ms = (time.perf_counter()
                              - submitted[frame_id]) * 1e3
                if elapsed_ms + delay_s * 1e3 > self.deadline_ms:
                    return False  # would outlive the frame's deadline
            attempts[frame_id] = attempt
            heapq.heappush(due, (now + delay_s, frame_id))
            return True

        results: List[FrameResult] = []
        rejected = 0
        # timeout_s bounds the wait for results (as it always has; device
        # compute above is not counted against it) and, separately, the
        # handshake wait — each phase gets at most timeout_s, not their sum.
        deadline = time.monotonic() + timeout_s
        while len(results) + rejected < len(frames):
            now = time.monotonic()
            while due and due[0][0] <= now:
                _, frame_id = heapq.heappop(due)
                self._send_queue.put(payloads[frame_id])
            remaining = deadline - now
            if remaining <= 0:
                raise TimeoutError("co-inference pipeline timed out waiting for results")
            if due:
                # Wake up for the next due re-submission even if no reply
                # arrives in the meantime.
                remaining = min(remaining, max(due[0][0] - now, 0.0))
            try:
                message = self._results.get(timeout=remaining)
            except queue.Empty:
                continue  # re-check the deadline and the due re-submissions
            if message.kind == _KIND_DISCONNECT:
                raise ConnectionError(
                    "connection to the edge server was lost with "
                    f"{len(frames) - len(results) - rejected} frame(s) "
                    f"outstanding: {message.meta.get('error', 'peer closed')}")
            if message.frame_id not in submitted:
                continue  # stale leftover of an earlier, aborted run
            if message.kind == KIND_ERROR:
                detail = message.meta.get("error", "unknown edge failure")
                remote_tb = message.meta.get("traceback", "")
                if (retrying and policy.retry_connection_errors
                        and message.meta.get("retryable")
                        and schedule_retry(message.frame_id, floor_ms=0.0)):
                    # A worker died mid-frame; execution is pure, so the
                    # re-submission is observably identical to a first run.
                    continue
                raise RuntimeError(
                    f"edge execution failed for frame "
                    f"{message.frame_id - base_id}: {detail}\n"
                    f"--- remote traceback ---\n{remote_tb}")
            if message.kind == KIND_REJECTED:
                # The server shed the frame (queue full, deadline lapsed,
                # fairness): a deliberate, typed signal — not an error.
                reason = str(message.meta.get(REJECT_REASON_META_KEY,
                                              "capacity"))
                retry = float(message.meta.get(RETRY_AFTER_MS_META_KEY, 0.0))
                if self.on_rejected == "raise":
                    if retrying and schedule_retry(message.frame_id,
                                                   floor_ms=retry):
                        continue
                    # Budget exhausted: the original typed error, not a
                    # retry-specific wrapper — callers keep matching on
                    # RequestRejectedError exactly as without a policy.
                    raise RequestRejectedError(message.frame_id - base_id,
                                               reason, retry)
                rejected += 1
                continue
            payloads.pop(message.frame_id, None)
            results.append(FrameResult(
                frame_id=message.frame_id - base_id, arrays=message.arrays,
                meta=message.meta, submitted_at=submitted[message.frame_id],
                completed_at=time.perf_counter(),
                batch_index=message.batch_index))
        wall = time.perf_counter() - start
        results.sort(key=lambda r: r.frame_id)
        histogram = Counter(attempts.values())
        stats = PipelineStats(
            num_frames=len(frames), wall_time_s=wall,
            mean_latency_s=float(np.mean([r.latency_s for r in results])) if results else 0.0,
            bytes_sent=self.bytes_sent - sent_before,
            bytes_received=self.bytes_received - received_before,
            frames_rejected=rejected,
            frames_retried=len(attempts),
            retry_histogram=dict(histogram))
        return results, stats

    def close(self) -> None:
        """Flush the stop marker and close the connection."""
        self._send_queue.put(None)
        self._sender.join(timeout=5.0)
        try:
            # Both halves: SHUT_WR flushes the stop marker to the server,
            # and shutting the read half wakes a receiver blocked in recv
            # against an unresponsive server (the socket has no read timeout).
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._receiver.join(timeout=5.0)
        self._sock.close()


def run_co_inference(frames: Sequence[object], device_fn: DeviceFn, edge_fn: EdgeFn,
                     timeout_s: float = 60.0) -> Tuple[List[FrameResult], PipelineStats]:
    """Convenience wrapper: spin up a loopback edge server, pipeline all frames.

    This is the one-call entry point used by the examples and tests; the edge
    server and device client are torn down before returning.
    """
    server = EdgeServer(edge_fn).start()
    client = DeviceClient(server.host, server.port)
    try:
        return client.run_pipeline(frames, device_fn, timeout_s=timeout_s)
    finally:
        client.close()
        server.stop()
