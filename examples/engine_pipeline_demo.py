"""Pipelined co-inference engine demo: sequential vs pipelined throughput.

Shows the deployment half of GCoDE in isolation.  A split architecture is
served over the socket engine (device and edge both on localhost) twice:

* sequentially — each frame waits for the previous result, and
* pipelined — the device keeps producing frames while earlier frames are in
  flight or on the edge (the engine's normal mode),

then compares the achieved throughput, runs the same split over the real
socket engine (asyncio frontend, QoS admission control with a per-frame
deadline), and reports how large the compressed intermediate frames were on
the wire versus the simulator's transfer-size model.

Run with:  python examples/engine_pipeline_demo.py
"""

from __future__ import annotations

import time

from repro.core import Architecture, ArchitectureModel
from repro.serving import build_callables
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40, stratified_split
from repro.graph.data import Batch
from repro.hardware import DataProfile, JETSON_TX2, INTEL_I7, LINK_40MBPS, trace_workloads
from repro.system import (CoInferenceSimulator, QosPolicy, SystemConfig,
                          compressed_size, run_co_inference, EdgeServer,
                          DeviceClient)


def build_split_model(profile: DataProfile) -> ArchitectureModel:
    """A representative searched-style design: KNN+Aggregate on the device,
    Combine and pooling on the edge."""
    architecture = Architecture(ops=(
        OpSpec(OpType.SAMPLE, "knn", k=9),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMBINE, 32),
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.COMBINE, 64),
        OpSpec(OpType.GLOBAL_POOL, "max||mean"),
    ), name="demo-split")
    return ArchitectureModel(architecture, in_dim=profile.feature_dim,
                             num_classes=profile.num_classes, seed=0)


def main() -> None:
    profile = DataProfile.modelnet40(num_points=256, num_classes=10)
    dataset = SyntheticModelNet40(num_points=256, samples_per_class=4,
                                  num_classes=10, seed=0)
    split = stratified_split(dataset.generate(), 0.5, 0.25, seed=0)
    held_out = split.val + split.test
    frames = [Batch.from_graphs([graph]) for graph in held_out[:12]]
    model = build_split_model(profile)
    serving = build_callables(model)
    device_fn, edge_fn = serving.device_fn, serving.edge_fn

    # ------------------------------------------------- sequential execution
    start = time.perf_counter()
    for frame in frames:
        arrays, meta = device_fn(frame)
        edge_fn(arrays, meta)
    sequential_s = time.perf_counter() - start
    print(f"sequential execution : {len(frames) / sequential_s:6.1f} fps "
          f"({sequential_s * 1000 / len(frames):.1f} ms per frame)")

    # -------------------------------------------------- pipelined execution
    results, stats = run_co_inference(frames, device_fn, edge_fn)
    print(f"pipelined engine     : {stats.throughput_fps:6.1f} fps "
          f"(mean frame latency {stats.mean_latency_s * 1000:.1f} ms, "
          f"{stats.bytes_sent / 1024:.1f} KiB sent)")
    speedup = (len(frames) / sequential_s) and stats.throughput_fps / (len(frames) / sequential_s)
    print(f"pipeline speedup     : {speedup:.2f}x on localhost "
          f"(gains grow with real link + edge latency)")

    # -------------------- the same split over the socket engine, with QoS
    # The asyncio frontend multiplexes every connection on one event loop;
    # the QoS policy bounds the admission queue, and the client stamps each
    # frame with a deadline — expired or shed frames come back as clean
    # ``rejected`` replies (counted, not raised, under ``on_rejected="drop"``).
    server = EdgeServer(serving.edge_fn, frontend="async",
                        qos=QosPolicy(max_queue_depth=32)).start()
    try:
        client = DeviceClient(server.host, server.port,
                              client_name="pipeline-demo",
                              deadline_ms=2_000.0, on_rejected="drop")
        try:
            wire_results, wire_stats = client.run_pipeline(frames, device_fn)
        finally:
            client.close()
        server_stats = server.stats()
    finally:
        server.stop()
    print(f"socket engine (TCP)  : {wire_stats.throughput_fps:6.1f} fps via the "
          f"{server_stats.frontend} frontend "
          f"({len(wire_results)} served, {wire_stats.frames_rejected} shed "
          f"under a 2000 ms deadline)")

    # ------------------------------------------ wire size vs simulator model
    arrays, meta = device_fn(frames[0])
    wire_bytes = compressed_size(arrays)
    workloads = trace_workloads(model.architecture.ops, profile)
    comm_index = next(i for i, op in enumerate(model.architecture.ops)
                      if op.op == OpType.COMMUNICATE)
    modelled = LINK_40MBPS.compressed_bytes(workloads[comm_index - 1].output_bytes)
    print(f"\nintermediate frame size: {wire_bytes / 1024:.1f} KiB on the wire "
          f"vs {modelled / 1024:.1f} KiB in the transfer model")

    simulator = CoInferenceSimulator(SystemConfig(JETSON_TX2, INTEL_I7, LINK_40MBPS))
    perf = simulator.evaluate(model.architecture.ops, profile)
    print(f"simulated on TX2 -> i7 @ 40 Mbps: {perf.latency_ms:.1f} ms latency, "
          f"{perf.pipelined_fps:.1f} fps pipelined, "
          f"{perf.device_energy_j:.3f} J per inference on the device")

    correct = sum(int(result.arrays['logits'].argmax()) == frame.y[0]
                  for result, frame in zip(results, frames))
    print(f"\n(untrained demo model classified {correct}/{len(frames)} frames "
          f"correctly — train it via examples/quickstart.py)")


if __name__ == "__main__":
    main()
