"""Quickstart: search, deploy and dispatch a GNN for one device-edge system.

This walks through the full GCoDE workflow on a small synthetic point-cloud
task so it finishes in about a minute on a laptop:

1. generate a synthetic ModelNet-style dataset;
2. pre-train the one-shot supernet over the co-inference design space;
3. run the constraint-based random search for the Jetson TX2 ⇌ Intel i7
   system at 40 Mbps under latency/energy constraints;
4. inspect the architecture zoo and the simulated system performance;
5. train the best design from scratch and serve it through the pipelined
   socket co-inference engine (device and edge both on localhost).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import GCoDE, GCoDEConfig, SearchConstraints, TrainingConfig
from repro.graph import SyntheticModelNet40, stratified_split
from repro.graph.data import Batch
from repro.hardware import DataProfile, INTEL_I7, JETSON_TX2, LINK_40MBPS
from repro.system import run_co_inference


def main() -> None:
    # ------------------------------------------------------------------ data
    dataset = SyntheticModelNet40(num_points=64, samples_per_class=8,
                                  num_classes=10, seed=0)
    split = stratified_split(dataset.generate(), 0.6, 0.2, seed=0)
    print(f"dataset: {dataset.describe()}")
    print(f"splits:  train={len(split.train)} val={len(split.val)} "
          f"test={len(split.test)}")

    # The latency/energy models use the paper-scale profile (1024 points) so
    # the numbers are comparable with the paper, while accuracy is measured
    # on the smaller synthetic clouds generated above.
    profile = DataProfile.modelnet40(num_points=1024, num_classes=10)

    # ------------------------------------------------------- GCoDE session
    gcode = GCoDE(profile=profile, device=JETSON_TX2, edge=INTEL_I7,
                  link=LINK_40MBPS,
                  config=GCoDEConfig(num_layers=8, supernet_hidden=64, seed=0))
    print("\npre-training the one-shot supernet ...")
    losses = gcode.prepare(split.train, split.val, supernet_epochs=2, batch_size=8)
    print(f"supernet loss per epoch: {[round(l, 3) for l in losses]}")

    # -------------------------------------------------------------- search
    constraints = SearchConstraints(latency_ms=120.0, energy_j=1.0,
                                    tradeoff_lambda=0.5)
    print("\nsearching the co-inference design space (LUT cost estimation) ...")
    result = gcode.search(constraints, max_trials=200, tuning_trials=5,
                          keep_top=5, evaluator="cost")
    print(f"trials: {result.num_trials}, constraint rejections: "
          f"{result.num_constraint_violations}")
    print("\narchitecture zoo:")
    for entry in gcode.zoo:
        tags = f" [{', '.join(entry.tags)}]" if entry.tags else ""
        print(f"  {entry.name:<10} acc={entry.accuracy:.3f} "
              f"latency={entry.latency_ms:7.1f} ms "
              f"energy={entry.device_energy_j:.3f} J{tags}")

    best = gcode.zoo.best("latency")
    print(f"\nbest-latency design ({best.name}):")
    for line in best.architecture.describe():
        print(f"  {line}")
    performance = gcode.evaluate_architecture(best.architecture)
    print(f"simulated on {gcode.system.name}: "
          f"{performance.latency_ms:.1f} ms end-to-end, "
          f"{performance.device_energy_j:.3f} J on-device, "
          f"{performance.pipelined_fps:.1f} fps pipelined")

    # ------------------------------------------------------------ deployment
    print("\ntraining the selected architecture from scratch ...")
    model, training = gcode.deploy(best, split.train, split.val,
                                   training=TrainingConfig(epochs=5, batch_size=8,
                                                           lr=5e-3, seed=0))
    print(f"deployed model validation accuracy: {training.val_accuracy:.3f} "
          f"(balanced {training.val_balanced_accuracy:.3f})")

    print("\nserving 8 frames through the pipelined co-inference engine ...")
    device_fn, edge_fn = gcode.engine_callables(model)
    frames = [Batch.from_graphs([graph]) for graph in split.test[:8]]
    results, stats = run_co_inference(frames, device_fn, edge_fn)
    predictions = [int(r.arrays["logits"].argmax()) for r in results]
    print(f"engine throughput: {stats.throughput_fps:.1f} fps "
          f"({stats.bytes_sent / 1024:.1f} KiB uplink)")
    print(f"predictions for the first frames: {predictions}")

    # ---------------------------------------------------------- dispatching
    dispatcher = gcode.dispatcher()
    from repro.core import RuntimeConditions
    tight = dispatcher.select(RuntimeConditions(latency_budget_ms=best.latency_ms))
    print(f"\ndispatcher under a tight latency budget picks: {tight.name}")


if __name__ == "__main__":
    main()
