"""Training and evaluating the GIN system-latency predictor.

Builds the performance-awareness stack of GCoDE in isolation:

1. sample and label co-inference architectures for a target system,
2. construct the enhanced node features (one-hot ‖ z-scored LUT latency),
3. train the 3-layer GIN predictor with the MAPE loss,
4. report within-error-bound accuracy and relative-latency ranking accuracy,
   and compare against the one-hot feature ablation and the training-free
   LUT cost estimator (the paper's Fig. 9 / Fig. 10b evaluation).

Run with:  python examples/latency_predictor.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (CostEstimator, DesignSpace, FeatureBuilder,
                        LatencyPredictor, PredictorTrainer, error_bound_accuracy,
                        generate_predictor_dataset, ranking_accuracy,
                        split_samples)
from repro.core.predictor.gin_predictor import PredictorSample
from repro.evaluation import format_table
from repro.hardware import (DataProfile, JETSON_TX2, INTEL_I7, LINK_40MBPS,
                            build_latency_lut)
from repro.system import CoInferenceSimulator, SystemConfig


def main() -> None:
    profile = DataProfile.modelnet40(num_points=1024, num_classes=10)
    space = DesignSpace(num_layers=8, profile=profile,
                        combine_widths=(16, 32, 64, 128), k_choices=(9, 20))
    simulator = CoInferenceSimulator(SystemConfig(JETSON_TX2, INTEL_I7,
                                                  LINK_40MBPS))
    device_lut = build_latency_lut(JETSON_TX2, profile)
    edge_lut = build_latency_lut(INTEL_I7, profile)
    enhanced = FeatureBuilder(device_lut, edge_lut, LINK_40MBPS, profile,
                              mode="enhanced")
    one_hot = FeatureBuilder(device_lut, edge_lut, LINK_40MBPS, profile,
                             mode="one-hot")

    print("sampling and labelling 200 co-inference architectures ...")
    samples = generate_predictor_dataset(space, simulator, enhanced,
                                         num_samples=200, noise_std=0.02, seed=0)
    train, val = split_samples(samples, 0.7, seed=0)
    measured = np.array([s.latency_ms for s in val])
    print(f"train/val: {len(train)}/{len(val)}, "
          f"latency range {measured.min():.1f} - {measured.max():.1f} ms")

    def retarget(sample_list, builder):
        return [PredictorSample(s.architecture, *builder.build(s.architecture),
                                s.latency_ms) for s in sample_list]

    rows = []

    print("training GIN + enhanced features (paper configuration) ...")
    gin = LatencyPredictor(enhanced.feature_dim, hidden_dim=64, num_layers=3,
                           layer_type="gin", seed=0)
    trainer = PredictorTrainer(gin, lr=2e-3)
    trainer.fit(train, epochs=20, seed=0, verbose=False)
    predictions = trainer.predict_many(val)
    rows.append(["GIN + enhanced",
                 error_bound_accuracy(predictions, measured, 0.05) * 100,
                 error_bound_accuracy(predictions, measured, 0.10) * 100,
                 ranking_accuracy(predictions, measured) * 100])

    print("training GIN + one-hot features (HGNAS-style ablation) ...")
    gin_oh = LatencyPredictor(one_hot.feature_dim, hidden_dim=64, num_layers=3,
                              layer_type="gin", seed=0)
    trainer_oh = PredictorTrainer(gin_oh, lr=2e-3)
    trainer_oh.fit(retarget(train, one_hot), epochs=20, seed=0)
    predictions_oh = trainer_oh.predict_many(retarget(val, one_hot))
    rows.append(["GIN + one-hot",
                 error_bound_accuracy(predictions_oh, measured, 0.05) * 100,
                 error_bound_accuracy(predictions_oh, measured, 0.10) * 100,
                 ranking_accuracy(predictions_oh, measured) * 100])

    print("evaluating the training-free LUT cost estimator ...")
    estimator = CostEstimator(device_lut, edge_lut, LINK_40MBPS, profile)
    lut_predictions = np.array([estimator.estimate_latency_ms(s.architecture)
                                for s in val])
    rows.append(["LUT cost estimation",
                 error_bound_accuracy(lut_predictions, measured, 0.05) * 100,
                 error_bound_accuracy(lut_predictions, measured, 0.10) * 100,
                 ranking_accuracy(lut_predictions, measured) * 100])

    print()
    print(format_table(["method", "within ±5% (%)", "within ±10% (%)",
                        "ranking acc (%)"], rows,
                       title="System performance awareness on TX2 -> i7 @ 40 Mbps"))

    example = val[0]
    print(f"\nexample architecture ({example.latency_ms:.1f} ms measured, "
          f"{trainer.predict(example):.1f} ms predicted):")
    for line in example.architecture.describe():
        print(f"  {line}")


if __name__ == "__main__":
    main()
