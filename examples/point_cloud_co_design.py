"""Point-cloud co-design across heterogeneous systems (ModelNet40 scenario).

Reproduces, at example scale, the workflow behind the paper's Table 2: the
same application (point-cloud classification) deployed on four different
device-edge pairings.  For every system the script

* evaluates the manually designed DGCNN in Device-Only and Edge-Only mode,
* evaluates the best *fixed* partition point of DGCNN (the
  architecture-mapping separation strategy), and
* runs GCoDE's joint architecture-mapping search,

then prints the comparison, showing how the searched design adapts to each
system's hardware sensitivities (KNN moved off GPUs, Aggregate moved off the
i7, everything off the Pi).

Run with:  python examples/point_cloud_co_design.py
"""

from __future__ import annotations

from repro.baselines import dgcnn_architecture
from repro.core import (AccuracyCache, ConstraintRandomSearch, CostEstimator,
                        CostEstimatorEvaluator, DesignSpace, RandomSearchConfig,
                        SearchConstraints, SuperNet)
from repro.evaluation import format_table, speedup
from repro.graph import SyntheticModelNet40, stratified_split
from repro.hardware import (DataProfile, INTEL_I7, JETSON_TX2, LINK_40MBPS,
                            NVIDIA_1060, RASPBERRY_PI_4B)
from repro.system import CoInferenceSimulator, SystemConfig, best_partition

SYSTEMS = [
    (JETSON_TX2, NVIDIA_1060, "TX2 -> 1060"),
    (JETSON_TX2, INTEL_I7, "TX2 -> i7"),
    (RASPBERRY_PI_4B, NVIDIA_1060, "Pi -> 1060"),
    (RASPBERRY_PI_4B, INTEL_I7, "Pi -> i7"),
]


def main() -> None:
    profile = DataProfile.modelnet40(num_points=1024, num_classes=10)
    dataset = SyntheticModelNet40(num_points=64, samples_per_class=8,
                                  num_classes=10, seed=0)
    split = stratified_split(dataset.generate(), 0.6, 0.2, seed=0)

    space = DesignSpace(num_layers=8, profile=profile,
                        combine_widths=(16, 32, 64, 128), k_choices=(9, 20))
    print("pre-training the shared supernet (accuracy oracle) ...")
    supernet = SuperNet(space, in_dim=3, num_classes=10, hidden_dim=64, seed=0)
    supernet.pretrain(split.train, epochs=2, batch_size=8, lr=2e-3)
    accuracy = AccuracyCache(supernet, split.val)

    dgcnn = dgcnn_architecture()
    rows = []
    designs = {}
    for device, edge, label in SYSTEMS:
        simulator = CoInferenceSimulator(SystemConfig(device, edge, LINK_40MBPS))
        device_only = simulator.evaluate_device_only(dgcnn.ops, profile,
                                                     dgcnn.classifier_hidden)
        edge_only = simulator.evaluate_edge_only(dgcnn.ops, profile,
                                                 dgcnn.classifier_hidden)
        partitioned = best_partition(dgcnn.ops, profile, simulator,
                                     classifier_hidden=dgcnn.classifier_hidden)

        estimator = CostEstimator.for_system(device, edge, LINK_40MBPS, profile)
        search = ConstraintRandomSearch(
            space, accuracy,
            CostEstimatorEvaluator(estimator, simulator, profile),
            SearchConstraints(tradeoff_lambda=0.5),
            RandomSearchConfig(max_trials=150, tuning_trials=5, keep_top=5, seed=0))
        result = search.run()
        best = result.top_k(1, "latency")[0]
        designs[label] = best

        rows.extend([
            [label, "DGCNN (device-only)", device_only.latency_ms,
             device_only.device_energy_j, 1.0],
            [label, "DGCNN (edge-only)", edge_only.latency_ms,
             edge_only.device_energy_j,
             speedup(device_only.latency_ms, edge_only.latency_ms)],
            [label, "DGCNN (best partition)", partitioned.performance.latency_ms,
             partitioned.performance.device_energy_j,
             speedup(device_only.latency_ms, partitioned.performance.latency_ms)],
            [label, "GCoDE (co-design)", best.latency_ms, best.device_energy_j,
             speedup(device_only.latency_ms, best.latency_ms)],
        ])

    print()
    print(format_table(["system", "method", "latency_ms", "device_energy_J",
                        "speedup_x"], rows,
                       title="ModelNet40 co-design comparison (40 Mbps uplink)"))

    print("\nsearched designs (operation placement per system):")
    for label, best in designs.items():
        print(f"\n[{label}]  {best.latency_ms:.1f} ms, "
              f"{best.device_energy_j:.3f} J, accuracy proxy {best.accuracy:.3f}")
        for line in best.architecture.describe():
            print(f"  {line}")


if __name__ == "__main__":
    main()
