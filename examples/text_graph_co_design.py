"""Text-graph (MR scenario) co-design with runtime dispatching.

The MR workload is the opposite regime from point clouds: tiny graphs
(~17 word nodes) with wide 300-dimensional features, where the Combine
operations dominate on CPUs.  This example

1. searches a co-inference design for the Jetson TX2 ⇌ Intel i7 system,
2. compares it against the PNAS-style accuracy-only baseline with and
   without an after-the-fact partition, and
3. demonstrates the runtime dispatcher switching between zoo entries as the
   latency budget and the measured uplink quality change.

Run with:  python examples/text_graph_co_design.py
"""

from __future__ import annotations

from repro.baselines import pnas_architecture, pnas_with_partition
from repro.core import (GCoDE, GCoDEConfig, RuntimeConditions, SearchConstraints)
from repro.evaluation import format_table
from repro.graph import SyntheticMR, stratified_split
from repro.hardware import DataProfile, INTEL_I7, JETSON_TX2, LINK_40MBPS


def main() -> None:
    profile = DataProfile.mr(num_words=17, feature_dim=300)
    dataset = SyntheticMR(num_documents=120, feature_dim=300, mean_nodes=17, seed=0)
    split = stratified_split(dataset.generate(), 0.6, 0.2, seed=0)
    print(f"dataset: {dataset.describe()}")

    gcode = GCoDE(profile=profile, device=JETSON_TX2, edge=INTEL_I7,
                  link=LINK_40MBPS,
                  config=GCoDEConfig(num_layers=6, combine_widths=(16, 32, 64),
                                     k_choices=(9,), supernet_hidden=64, seed=0))
    print("pre-training the supernet on the word graphs ...")
    gcode.prepare(split.train, split.val, supernet_epochs=2, batch_size=8)

    print("searching (latency-constrained, energy-constrained) ...")
    gcode.search(SearchConstraints(latency_ms=20.0, energy_j=0.2,
                                   tradeoff_lambda=0.5),
                 max_trials=200, tuning_trials=5, keep_top=5)

    # -------------------------------------------------------------- baselines
    pnas = pnas_architecture()
    pnas_perf = gcode.evaluate_architecture(pnas)
    pnas_split = pnas_with_partition(pnas, gcode.simulator, profile)
    pnas_split_perf = gcode.evaluate_architecture(pnas_split)
    best = gcode.zoo.best("latency")

    rows = [
        ["PNAS (device-only)", pnas_perf.latency_ms, pnas_perf.device_energy_j],
        ["PNAS + partition", pnas_split_perf.latency_ms,
         pnas_split_perf.device_energy_j],
        ["GCoDE (co-design)", best.latency_ms, best.device_energy_j],
    ]
    print()
    print(format_table(["method", "latency_ms", "device_energy_J"], rows,
                       title="MR co-inference on TX2 -> i7 (40 Mbps)"))

    print("\nGCoDE design for the MR workload:")
    for line in best.architecture.describe():
        print(f"  {line}")

    # ------------------------------------------------------------- dispatching
    dispatcher = gcode.dispatcher()
    scenarios = [
        ("normal operation", RuntimeConditions(latency_budget_ms=50.0)),
        ("strict real-time budget", RuntimeConditions(latency_budget_ms=best.latency_ms * 1.05)),
        ("battery saver", RuntimeConditions(energy_budget_j=0.05)),
        ("degraded wireless link", RuntimeConditions(latency_budget_ms=50.0,
                                                     bandwidth_factor=0.25)),
    ]
    print("\nruntime dispatcher decisions:")
    for label, conditions in scenarios:
        entry = dispatcher.select(conditions)
        print(f"  {label:<26} -> {entry.name} "
              f"(acc={entry.accuracy:.3f}, {entry.latency_ms:.1f} ms, "
              f"{entry.device_energy_j:.3f} J)")


if __name__ == "__main__":
    main()
