"""Multi-client edge serving demo: one edge server, many devices, one zoo.

Shows the serving half of GCoDE at deployment scale in miniature, built
entirely through the :mod:`repro.serving` facade:

* :func:`repro.serving.serve` publishes a small zoo to a
  :class:`~repro.serving.ModelRepository` and starts a lifecycle-managed
  :class:`~repro.serving.ServingApp` (edge server + micro-batcher +
  dispatcher) in one call,
* each client announces its own runtime conditions (tight latency budget,
  loose budget, constrained energy) in the hello handshake and the
  dispatcher picks the matching zoo entry per client, so one server
  concurrently serves different architectures to different devices,
* ``app.client(...)`` returns repository-bound clients whose ``run()``
  executes the device segment of the dispatched entry automatically,
* frames from all clients interleave on the edge, where the micro-batcher
  coalesces concurrent requests of the same entry into single batched
  engine calls (``BatchingConfig``),
* the server runs the **asyncio frontend** (one event loop multiplexing
  every connection) behind a ``QosConfig`` admission policy — bounded
  queue, implicit per-frame deadlines, and a priority map that clients
  tag into via ``ClientConfig(priority=...)`` — so saturation is shed
  with ``rejected`` replies instead of absorbed as unbounded queueing, and
* per-session, aggregate, batching and QoS statistics are reported at the
  end.

Run with:  python examples/multi_client_serving.py
"""

from __future__ import annotations

import threading

from repro.core import Architecture, ArchitectureZoo, ZooEntry
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40, stratified_split
from repro.graph.data import Batch
from repro.hardware import DataProfile
from repro.serving import (BatchingConfig, ClientConfig, QosConfig,
                           ServerConfig, ServingConfig, serve)

FRAMES_PER_CLIENT = 8


def build_zoo() -> ArchitectureZoo:
    """A miniature deployment zoo: accurate / balanced / frugal designs."""

    def arch(name: str, k: int, width: int) -> Architecture:
        return Architecture(ops=(
            OpSpec(OpType.SAMPLE, "knn", k=k),
            OpSpec(OpType.AGGREGATE, "max"),
            OpSpec(OpType.COMMUNICATE, "uplink"),
            OpSpec(OpType.COMBINE, width),
            OpSpec(OpType.GLOBAL_POOL, "max||mean"),
        ), name=name)

    # Metrics are representative searched-zoo numbers (see the search
    # benchmarks); the dispatcher only compares them against the budgets.
    return ArchitectureZoo([
        ZooEntry("accurate", arch("accurate", k=9, width=64), 0.95, 80.0, 0.8),
        ZooEntry("balanced", arch("balanced", k=6, width=32), 0.92, 40.0, 0.4),
        ZooEntry("frugal", arch("frugal", k=4, width=16), 0.88, 30.0, 0.1),
    ])


def main() -> None:
    profile = DataProfile.modelnet40(num_points=128, num_classes=10)
    dataset = SyntheticModelNet40(num_points=128, samples_per_class=4,
                                  num_classes=10, seed=0)
    split = stratified_split(dataset.generate(), 0.5, 0.25, seed=0)
    held_out = split.val + split.test
    frames = [Batch.from_graphs([graph]) for graph in held_out[:FRAMES_PER_CLIENT]]

    config = ServingConfig(
        server=ServerConfig(frontend="async"),
        batching=BatchingConfig(max_batch_size=4, max_wait_ms=5.0),
        qos=QosConfig(max_queue_depth=64, default_deadline_ms=5_000.0,
                      priority_map={"interactive": 0, "bulk": 1}))
    app = serve(build_zoo(), config, in_dim=profile.feature_dim,
                num_classes=profile.num_classes)

    # Each profile: the conditions announced in the hello handshake (drives
    # the dispatcher) plus the client's own QoS stance (drives admission).
    interactive = ClientConfig(priority="interactive", on_rejected="drop")
    bulk = ClientConfig(priority="bulk", on_rejected="drop")
    client_profiles = [
        ("latency-critical", {"latency_budget_ms": 35.0}, interactive),
        ("best-effort", {"latency_budget_ms": 200.0}, bulk),
        ("battery-saver", {"latency_budget_ms": 200.0, "energy_budget_j": 0.2},
         bulk),
        ("degraded-link", {"latency_budget_ms": 60.0, "bandwidth_factor": 0.5},
         interactive),
    ]

    report_lock = threading.Lock()

    def run_client(name: str, conditions: dict,
                   client_config: ClientConfig) -> None:
        with app.client(name=name, conditions=conditions,
                        config=client_config) as client:
            assigned = client.assigned_model
            results, stats = client.run(frames)
            with report_lock:
                print(f"{name:17s} -> served by {assigned!r:11s} "
                      f"{stats.throughput_fps:6.1f} fps, "
                      f"mean latency {stats.mean_latency_s * 1000:6.1f} ms, "
                      f"{len(results)} frames ok, "
                      f"{stats.frames_rejected} shed")

    with app:
        print(f"edge server listening on {app.host}:{app.port} with "
              f"{len(app.repository.names())} zoo entries: "
              f"{', '.join(sorted(app.repository.names()))} "
              f"(micro-batching up to {config.batching.max_batch_size} frames)\n")
        threads = [threading.Thread(target=run_client,
                                    args=(name, conditions, client_config))
                   for name, conditions, client_config in client_profiles]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = app.stats()
        dispatch_history = app.repository.snapshot().dispatcher.history

    print(f"\nedge aggregate: {stats.frames_processed} frames over "
          f"{stats.num_sessions} sessions, {stats.throughput_fps:.1f} fps, "
          f"{stats.bytes_received / 1024:.1f} KiB in / "
          f"{stats.bytes_sent / 1024:.1f} KiB out, "
          f"mean edge service {stats.mean_service_time_s * 1000:.2f} ms, "
          f"{stats.errors} errors")
    print(f"micro-batching: {stats.batches_dispatched} engine calls, "
          f"mean realized batch {stats.mean_batch_size:.2f}, "
          f"sizes {dict(sorted(stats.batch_size_histogram.items()))}, "
          f"mean queue delay {stats.mean_queue_delay_s * 1000:.2f} ms")
    print(f"qos ({stats.frontend} frontend): {stats.frames_shed} frames shed "
          f"{dict(sorted(stats.shed_by_reason.items()))}, "
          f"admission queue delay p50 {stats.queue_delay_p50_s * 1000:.2f} ms / "
          f"p99 {stats.queue_delay_p99_s * 1000:.2f} ms")
    print("frames by model:", dict(sorted(stats.frames_by_model.items())))
    print("dispatch history:", dispatch_history)
    for session in stats.sessions:
        print(f"  session {session.session_id} ({session.client_name}): "
              f"{session.frames} frames, "
              f"{session.mean_service_time_s * 1000:.2f} ms mean service, "
              f"{session.bytes_received / 1024:.1f} KiB received")


if __name__ == "__main__":
    main()
