"""Tests for the synthetic ModelNet40 / MR datasets and the split utility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (SyntheticModelNet40, SyntheticMR, stratified_split)


class TestSyntheticModelNet40:
    def test_shapes_and_labels(self):
        dataset = SyntheticModelNet40(num_points=64, samples_per_class=3,
                                      num_classes=6, seed=0)
        graphs = dataset.generate()
        assert len(graphs) == 18
        for graph in graphs:
            assert graph.x.shape == (64, 3)
            assert graph.pos is not None and graph.pos.shape == (64, 3)
            assert 0 <= graph.y < 6

    def test_clouds_are_normalized_to_unit_sphere(self):
        dataset = SyntheticModelNet40(num_points=64, samples_per_class=2,
                                      num_classes=4, seed=1)
        for graph in dataset.generate():
            radii = np.linalg.norm(graph.x - graph.x.mean(axis=0), axis=1)
            assert radii.max() <= 1.0 + 1e-6

    def test_generation_is_deterministic_for_seed(self):
        a = SyntheticModelNet40(num_points=32, samples_per_class=2,
                                num_classes=3, seed=7).generate()
        b = SyntheticModelNet40(num_points=32, samples_per_class=2,
                                num_classes=3, seed=7).generate()
        np.testing.assert_allclose(a[0].x, b[0].x)

    def test_different_seeds_differ(self):
        a = SyntheticModelNet40(num_points=32, samples_per_class=1,
                                num_classes=3, seed=1).generate()
        b = SyntheticModelNet40(num_points=32, samples_per_class=1,
                                num_classes=3, seed=2).generate()
        assert not np.allclose(a[0].x, b[0].x)

    def test_classes_are_geometrically_separable(self):
        """Mean pairwise-distance signatures should differ across classes."""
        dataset = SyntheticModelNet40(num_points=128, samples_per_class=4,
                                      num_classes=4, seed=0)
        graphs = dataset.generate()
        signatures = {}
        for graph in graphs:
            spread = float(np.linalg.norm(graph.x, axis=1).std())
            signatures.setdefault(graph.y, []).append(spread)
        means = [np.mean(values) for values in signatures.values()]
        assert np.std(means) > 1e-3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SyntheticModelNet40(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticModelNet40(num_points=4)

    def test_describe_reports_metadata(self):
        meta = SyntheticModelNet40(num_points=64, num_classes=10).describe()
        assert meta["num_classes"] == 10 and meta["feature_dim"] == 3


class TestSyntheticMR:
    def test_shapes_and_labels(self):
        dataset = SyntheticMR(num_documents=20, feature_dim=48, mean_nodes=10, seed=0)
        graphs = dataset.generate()
        assert len(graphs) == 20
        labels = {graph.y for graph in graphs}
        assert labels == {0, 1}
        for graph in graphs:
            assert graph.x.shape[1] == 48
            assert graph.edge_index is not None and graph.edge_index.shape[0] == 2

    def test_word_graphs_are_small(self):
        dataset = SyntheticMR(num_documents=30, mean_nodes=17, seed=0)
        sizes = [graph.num_nodes for graph in dataset.generate()]
        assert 8 <= np.mean(sizes) <= 30

    def test_window_edges_are_symmetric_neighbourhoods(self):
        dataset = SyntheticMR(num_documents=4, mean_nodes=8, window=2, seed=0)
        graph = dataset.generate()[0]
        edge_set = {(int(s), int(t)) for s, t in graph.edge_index.T}
        assert all((t, s) in edge_set for s, t in edge_set)

    def test_classes_have_different_feature_statistics(self):
        dataset = SyntheticMR(num_documents=60, feature_dim=64,
                              class_separation=3.0, seed=0)
        graphs = dataset.generate()
        means = {0: [], 1: []}
        for graph in graphs:
            means[graph.y].append(graph.x.mean(axis=0))
        centroid_distance = np.linalg.norm(np.mean(means[0], axis=0)
                                           - np.mean(means[1], axis=0))
        assert centroid_distance > 0.1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SyntheticMR(num_documents=1)
        with pytest.raises(ValueError):
            SyntheticMR(mean_nodes=2)


class TestStratifiedSplit:
    def test_partitions_are_disjoint_and_cover(self):
        dataset = SyntheticMR(num_documents=40, feature_dim=16, seed=0)
        graphs = dataset.generate()
        split = stratified_split(graphs, 0.5, 0.25, seed=0)
        total = sum(split.sizes())
        assert total == len(graphs)
        ids = [id(g) for part in (split.train, split.val, split.test) for g in part]
        assert len(set(ids)) == total

    def test_every_class_in_train(self):
        dataset = SyntheticModelNet40(num_points=16, samples_per_class=3,
                                      num_classes=5, seed=0)
        split = stratified_split(dataset.generate(), 0.6, 0.2, seed=0)
        train_classes = {g.y for g in split.train}
        assert train_classes == set(range(5))

    def test_fraction_validation(self):
        graphs = SyntheticMR(num_documents=10, feature_dim=8, seed=0).generate()
        with pytest.raises(ValueError):
            stratified_split(graphs, 0.0, 0.2)
        with pytest.raises(ValueError):
            stratified_split(graphs, 0.8, 0.4)
